"""The phase-pipeline engine — pluggable orchestration of the cycle.

The paper stresses that "further modules … can be integrated in the
future with minimal effort" (Fig. 4).  This module generalises that
promise from Phase V to the whole cycle: a revolution is a sequence of
:class:`Phase` objects held in an ordered :class:`PhaseRegistry`
(mirroring the use-case :class:`~repro.core.registry.ModuleRegistry`),
executed by :class:`PhasePipeline` over a shared :class:`CycleContext`.
Deployments insert, replace, or drop phases — a validation phase
between extraction and persistence, say — without touching the engine
or :class:`~repro.core.cycle.KnowledgeCycle`.

Every transition is observable: :class:`PhaseObserver` callbacks fire
on phase start/retry/finish/error with wall time and artifact counts,
so a revolution is traceable end to end.  :class:`TimingObserver` and
:class:`LoggingObserver` are the built-in consumers.

Failures are data, not aborts: each phase runs under a
:class:`FailurePolicy` — retry under a deterministic
:class:`~repro.core.resilience.RetryPolicy`, then either quarantine the
revolution into :attr:`CycleResult.failures` (``on_exhausted="skip"``)
or propagate (``"abort"``, the default).  A ``timeout_s`` budget marks
overrunning phases with :class:`~repro.util.errors.DeadlineError`.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.core.knowledge import IO500Knowledge, Knowledge
from repro.core.resilience import Deadline, RetryPolicy
from repro.util.errors import PipelineError

if TYPE_CHECKING:  # pragma: no cover - imports for type checkers only
    from repro.core.explorer.io500_viewer import IO500Viewer
    from repro.core.explorer.viewer import KnowledgeViewer
    from repro.core.persistence.backend import PersistenceBackend
    from repro.core.persistence.io500_repo import IO500Repository
    from repro.core.persistence.repository import KnowledgeRepository
    from repro.core.registry import ModuleRegistry
    from repro.iostack.stack import Testbed

__all__ = [
    "CycleResult",
    "CycleContext",
    "Phase",
    "PhaseFailure",
    "FailurePolicy",
    "PhaseRegistry",
    "PhaseObserver",
    "PhaseTiming",
    "TimingObserver",
    "LoggingObserver",
    "PhasePipeline",
]


@dataclass(frozen=True, slots=True)
class PhaseFailure:
    """One quarantined phase failure (the revolution survived it)."""

    phase: str
    attempts: int
    error: str
    elapsed_s: float
    exception: BaseException | None = None

    def __str__(self) -> str:
        return (
            f"phase {self.phase!r} failed after {self.attempts} attempt(s) "
            f"in {self.elapsed_s:.3f}s: {self.error}"
        )


@dataclass(frozen=True, slots=True)
class FailurePolicy:
    """How :class:`PhasePipeline` treats one phase's failures.

    ``retry=None`` fails on the first error; otherwise errors the
    policy's predicate accepts are retried with its deterministic
    backoff.  Once attempts are exhausted (or the error is permanent),
    ``on_exhausted`` picks between ``"abort"`` (propagate, killing the
    run — the historical behaviour) and ``"skip"`` (quarantine the
    revolution into :attr:`CycleResult.failures` and return, so later
    revolutions still run).  ``timeout_s`` is a per-phase wall-time
    budget: a :class:`~repro.core.resilience.Deadline` is published at
    ``context.artifacts["deadline"]`` for cooperative checks, and an
    overrunning phase is failed post-hoc with ``DeadlineError``.
    """

    retry: RetryPolicy | None = None
    on_exhausted: str = "abort"
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.on_exhausted not in ("abort", "skip"):
            raise PipelineError(
                f"on_exhausted must be 'abort' or 'skip', got {self.on_exhausted!r}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise PipelineError(f"timeout_s must be positive, got {self.timeout_s}")

    @property
    def max_attempts(self) -> int:
        """Total attempts this policy allows for one phase."""
        return self.retry.max_attempts if self.retry is not None else 1


@dataclass(slots=True)
class CycleResult:
    """Everything one revolution of the cycle produced."""

    knowledge: list[Knowledge] = field(default_factory=list)
    io500_knowledge: list[IO500Knowledge] = field(default_factory=list)
    knowledge_ids: list[int] = field(default_factory=list)
    iofh_ids: list[int] = field(default_factory=list)
    usage_results: dict[str, object] = field(default_factory=dict)
    analysis_report: str = ""
    failures: list[PhaseFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the revolution completed without quarantined failures."""
        return not self.failures

    @property
    def all_knowledge(self) -> list[Knowledge | IO500Knowledge]:
        """Benchmark and IO500 knowledge together."""
        return [*self.knowledge, *self.io500_knowledge]


@dataclass(slots=True)
class CycleContext:
    """Shared state one revolution's phases read and write.

    The engine never interprets these fields; each phase takes what it
    needs and leaves its products for downstream phases.  Custom phases
    can stash arbitrary extras in :attr:`artifacts`.
    """

    testbed: "Testbed"
    workspace: Path
    backend: "PersistenceBackend"
    repository: "KnowledgeRepository"
    io500_repository: "IO500Repository"
    modules: "ModuleRegistry"
    viewer: "KnowledgeViewer"
    io500_viewer: "IO500Viewer"
    jube_xml: str = ""
    benchmark: object | None = None
    extracted: list[Knowledge | IO500Knowledge] = field(default_factory=list)
    result: CycleResult = field(default_factory=CycleResult)
    artifacts: dict[str, object] = field(default_factory=dict)


@runtime_checkable
class Phase(Protocol):
    """One pluggable stage of a revolution.

    ``run`` mutates the context and returns the number of artifacts the
    phase produced (or ``None`` when counting makes no sense); the
    count is reported to observers.
    """

    name: str

    def run(self, context: CycleContext) -> int | None:  # pragma: no cover - protocol
        """Execute the phase over the shared context."""
        ...


class PhaseRegistry:
    """Ordered, named collection of phases.

    Mirrors :class:`~repro.core.registry.ModuleRegistry`, but order
    matters: phases execute in registration order, and ``before`` /
    ``after`` anchors position an insertion relative to an existing
    phase.
    """

    def __init__(self, phases: Iterable[Phase] = ()) -> None:
        self._phases: list[Phase] = []
        for phase in phases:
            self.register(phase)

    def _index(self, name: str) -> int:
        for i, phase in enumerate(self._phases):
            if phase.name == name:
                return i
        raise PipelineError(f"no phase {name!r} registered; registered: {self.names()}")

    def register(
        self, phase: Phase, *, before: str | None = None, after: str | None = None
    ) -> None:
        """Add a phase; names must be unique.

        With ``before``/``after`` (mutually exclusive) the phase is
        inserted relative to the named existing phase; otherwise it is
        appended.
        """
        if not getattr(phase, "name", ""):
            raise PipelineError(f"phase {phase!r} has no name")
        if phase.name in self.names():
            raise PipelineError(f"phase {phase.name!r} already registered")
        if before is not None and after is not None:
            raise PipelineError("register() takes before= or after=, not both")
        if before is not None:
            self._phases.insert(self._index(before), phase)
        elif after is not None:
            self._phases.insert(self._index(after) + 1, phase)
        else:
            self._phases.append(phase)

    def replace(self, name: str, phase: Phase) -> Phase:
        """Swap the named phase for another in place; returns the old one."""
        if not getattr(phase, "name", ""):
            raise PipelineError(f"phase {phase!r} has no name")
        i = self._index(name)
        if phase.name != name and phase.name in self.names():
            raise PipelineError(f"phase {phase.name!r} already registered")
        old, self._phases[i] = self._phases[i], phase
        return old

    def unregister(self, name: str) -> Phase:
        """Remove and return the named phase."""
        return self._phases.pop(self._index(name))

    def get(self, name: str) -> Phase:
        """Look up one phase by name."""
        return self._phases[self._index(name)]

    def names(self) -> list[str]:
        """Phase names in execution order."""
        return [phase.name for phase in self._phases]

    def __iter__(self) -> Iterator[Phase]:
        return iter(list(self._phases))

    def __len__(self) -> int:
        return len(self._phases)

    def __contains__(self, name: object) -> bool:
        return any(phase.name == name for phase in self._phases)


class PhaseObserver:
    """Callbacks fired around every phase of a revolution.

    Subclass and override what you need; the defaults are no-ops, so an
    observer only pays for what it watches.
    """

    def on_phase_start(self, phase: Phase, context: CycleContext) -> None:
        """A phase is about to run (fires once, before the first attempt)."""

    def on_phase_retry(
        self,
        phase: Phase,
        context: CycleContext,
        attempt: int,
        error: BaseException,
        delay_s: float,
    ) -> None:
        """Attempt ``attempt`` (1-based) failed; a retry follows after ``delay_s``."""

    def on_phase_finish(
        self, phase: Phase, context: CycleContext, duration_s: float, artifacts: int
    ) -> None:
        """A phase completed; ``artifacts`` is its reported product count."""

    def on_phase_error(
        self, phase: Phase, context: CycleContext, duration_s: float, error: BaseException
    ) -> None:
        """A phase failed for good (all attempts spent); fires before the
        failure policy decides between quarantine and propagation."""


@dataclass(frozen=True, slots=True)
class PhaseTiming:
    """One observed phase execution."""

    phase: str
    duration_s: float
    artifacts: int
    error: str | None = None
    attempts: int = 1


class TimingObserver(PhaseObserver):
    """Records wall time, artifact and attempt counts per phase executed."""

    def __init__(self) -> None:
        self.timings: list[PhaseTiming] = []
        self._retries = 0

    def on_phase_start(self, phase: Phase, context: CycleContext) -> None:
        """Reset the per-phase retry counter."""
        self._retries = 0

    def on_phase_retry(
        self,
        phase: Phase,
        context: CycleContext,
        attempt: int,
        error: BaseException,
        delay_s: float,
    ) -> None:
        """Count one retry of the current phase."""
        self._retries += 1

    def on_phase_finish(
        self, phase: Phase, context: CycleContext, duration_s: float, artifacts: int
    ) -> None:
        """Record one completed phase."""
        self.timings.append(
            PhaseTiming(phase.name, duration_s, artifacts, attempts=self._retries + 1)
        )

    def on_phase_error(
        self, phase: Phase, context: CycleContext, duration_s: float, error: BaseException
    ) -> None:
        """Record one failed phase with its exception."""
        self.timings.append(
            PhaseTiming(
                phase.name, duration_s, 0, error=repr(error), attempts=self._retries + 1
            )
        )

    @property
    def durations(self) -> dict[str, float]:
        """Phase name → total wall seconds across all observed revolutions."""
        out: dict[str, float] = {}
        for t in self.timings:
            out[t.phase] = out.get(t.phase, 0.0) + t.duration_s
        return out

    def reset(self) -> None:
        """Forget everything observed so far."""
        self.timings.clear()


class LoggingObserver(PhaseObserver):
    """Emits one log line per phase transition on ``repro.pipeline``."""

    def __init__(self, logger: logging.Logger | None = None) -> None:
        self.logger = logger or logging.getLogger("repro.pipeline")

    def on_phase_start(self, phase: Phase, context: CycleContext) -> None:
        """Log the phase start at DEBUG."""
        self.logger.debug("phase %s: start", phase.name)

    def on_phase_retry(
        self,
        phase: Phase,
        context: CycleContext,
        attempt: int,
        error: BaseException,
        delay_s: float,
    ) -> None:
        """Log the failed attempt and upcoming retry at WARNING."""
        self.logger.warning(
            "phase %s: attempt %d failed (%s); retrying in %.3fs",
            phase.name, attempt, error, delay_s,
        )

    def on_phase_finish(
        self, phase: Phase, context: CycleContext, duration_s: float, artifacts: int
    ) -> None:
        """Log the completion, duration and artifact count at INFO."""
        self.logger.info(
            "phase %s: done in %.3fs (%d artifact(s))", phase.name, duration_s, artifacts
        )

    def on_phase_error(
        self, phase: Phase, context: CycleContext, duration_s: float, error: BaseException
    ) -> None:
        """Log the failure at ERROR."""
        self.logger.error("phase %s: failed after %.3fs: %s", phase.name, duration_s, error)


class PhasePipeline:
    """Executes the registered phases, in order, over one context.

    ``policies`` maps phase names to :class:`FailurePolicy` overrides;
    ``default_policy`` applies to every unmapped phase (the default —
    no retry, abort on error — is the historical fail-stop behaviour).
    ``sleep`` is the backoff sleeper, injectable so tests and the
    simulated cycle never block on real wall time.
    """

    def __init__(
        self,
        registry: PhaseRegistry,
        observers: Sequence[PhaseObserver] = (),
        policies: Mapping[str, FailurePolicy] | None = None,
        default_policy: FailurePolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if len(registry) == 0:
            raise PipelineError("cannot build a pipeline from an empty phase registry")
        self.registry = registry
        self.observers = list(observers)
        self.policies = dict(policies or {})
        self.default_policy = default_policy or FailurePolicy()
        self._sleep = sleep
        for name in self.policies:
            if name not in registry:
                raise PipelineError(
                    f"failure policy names unknown phase {name!r}; "
                    f"registered: {registry.names()}"
                )

    def policy_for(self, phase: Phase) -> FailurePolicy:
        """The failure policy governing one phase."""
        return self.policies.get(phase.name, self.default_policy)

    def run(self, context: CycleContext) -> CycleResult:
        """Run every phase over ``context``; returns ``context.result``.

        Each phase executes under its :class:`FailurePolicy`: transient
        errors are retried with deterministic backoff (observers see
        ``on_phase_retry``); a phase that fails for good either aborts
        the revolution (exception propagates after ``on_phase_error``
        fired) or quarantines it — the failure is recorded in
        ``context.result.failures``, the remaining phases are skipped,
        and the partial result returns.  Either way the context stays
        exactly as the failed phase left it, so partial artifacts
        remain inspectable.
        """
        for phase in self.registry:
            policy = self.policy_for(phase)
            # Salt the jitter stream by phase name (unless the policy
            # already carries a call-site salt), so phases sharing one
            # default-seeded policy template never sleep in lock-step.
            retry_policy = policy.retry
            if retry_policy is not None and not retry_policy.salt:
                retry_policy = retry_policy.with_salt(f"phase:{phase.name}")
            for observer in self.observers:
                observer.on_phase_start(phase, context)
            attempt = 1
            phase_started = time.perf_counter()
            while True:
                deadline = Deadline(policy.timeout_s)
                context.artifacts["deadline"] = deadline
                started = time.perf_counter()
                try:
                    produced = phase.run(context)
                    deadline.check(f"phase {phase.name!r}")
                except BaseException as exc:
                    if (
                        retry_policy is not None
                        and attempt < retry_policy.max_attempts
                        and retry_policy.is_retryable(exc)
                    ):
                        delay = retry_policy.delay_s(attempt)
                        for observer in self.observers:
                            observer.on_phase_retry(phase, context, attempt, exc, delay)
                        self._sleep(delay)
                        attempt += 1
                        continue
                    elapsed = time.perf_counter() - phase_started
                    for observer in self.observers:
                        observer.on_phase_error(phase, context, elapsed, exc)
                    if policy.on_exhausted == "skip":
                        context.result.failures.append(
                            PhaseFailure(
                                phase=phase.name,
                                attempts=attempt,
                                error=repr(exc),
                                elapsed_s=elapsed,
                                exception=exc,
                            )
                        )
                        return context.result
                    raise
                elapsed = time.perf_counter() - started
                count = int(produced) if produced is not None else 0
                for observer in self.observers:
                    observer.on_phase_finish(phase, context, elapsed, count)
                break
        return context.result
