"""Frequency-domain detection of periodic I/O phases.

"Capturing Periodic I/O Using Frequency Techniques" (Tarraf et al.,
PAPERS.md) shows that HPC applications' checkpoint/burst behaviour is
visible as a dominant line in the spectrum of the aggregate throughput
signal.  This module reproduces that pipeline on the repo's own
substrate: a regularly-sampled throughput series (one value per
:class:`~repro.core.usage.online.OnlineMonitor` window) goes through

1. **DFT** — the real FFT of the mean-removed signal nominates
   candidate frequencies (local spectral maxima with at least
   ``min_cycles`` full cycles inside the window);
2. **autocorrelation refinement** — each candidate period is snapped to
   the nearest autocorrelation maximum, recovering sub-bin resolution
   (the DFT's frequency grid is coarse for long periods; the
   autocorrelation lag grid is exactly one window);
3. **confidence scoring** — the normalized autocorrelation at the
   refined lag (≈ 1 for a truly periodic signal, ≈ 0 for white noise)
   is damped by the candidate's share of spectral power, so a narrow
   noise spike cannot fake a confident detection.

The result is interpretable and actionable, in the spirit of
SNIPPETS.md Snippet 1: each :class:`PeriodDetection` carries the
period, both evidence channels, and a single confidence number the
recommendation path can threshold.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.util.errors import ScenarioError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.metrics import MetricsRegistry

__all__ = ["PeriodDetection", "detect_periods", "detect_from_series"]


@dataclass(frozen=True, slots=True)
class PeriodDetection:
    """One detected periodic phase in a throughput series."""

    period_s: float
    frequency_hz: float
    confidence: float  # in [0, 1]
    power_fraction: float  # candidate's share of non-DC spectral power
    autocorr: float  # normalized autocorrelation at the refined lag
    n_windows: int

    @property
    def description(self) -> str:
        """Human-readable one-liner."""
        return (
            f"period {self.period_s:.2f}s ({self.frequency_hz:.3f} Hz), "
            f"confidence {self.confidence:.2f} "
            f"(power {self.power_fraction:.0%}, autocorr {self.autocorr:.2f})"
        )


def _autocorrelation(x: np.ndarray) -> np.ndarray:
    """Biased normalized autocorrelation via the Wiener–Khinchin route."""
    n = len(x)
    padded = np.zeros(2 * n)
    padded[:n] = x
    spectrum = np.abs(np.fft.rfft(padded)) ** 2
    ac = np.fft.irfft(spectrum)[:n]
    if ac[0] <= 0:
        return np.zeros(n)
    return ac / ac[0]


def detect_periods(
    values: Sequence[float] | np.ndarray,
    interval_s: float = 1.0,
    *,
    max_periods: int = 3,
    min_cycles: int = 3,
    min_confidence: float = 0.0,
    metrics: "MetricsRegistry | None" = None,
) -> list[PeriodDetection]:
    """Detect periodic phases in a regularly-sampled throughput series.

    ``values`` is one sample per ``interval_s`` window.  Returns up to
    ``max_periods`` detections sorted by confidence (descending),
    keeping only those at or above ``min_confidence``.  A constant or
    too-short series detects nothing; white noise scores low confidence
    by construction.
    """
    if interval_s <= 0:
        raise ScenarioError(f"interval must be positive, got {interval_s}")
    if min_cycles < 2:
        raise ScenarioError(f"min_cycles must be >= 2, got {min_cycles}")
    started = time.perf_counter()
    x = np.asarray(values, dtype=float)
    x = np.nan_to_num(x, nan=0.0, posinf=0.0, neginf=0.0)
    n = len(x)
    detections: list[PeriodDetection] = []
    if n >= 4 * min_cycles:
        x = x - x.mean()
        if float(np.abs(x).max()) > 0:
            spectrum = np.abs(np.fft.rfft(x)) ** 2
            spectrum[0] = 0.0  # DC carries no period
            total_power = float(spectrum.sum())
            ac = _autocorrelation(x)
            # Candidate bins: local spectral maxima with >= min_cycles
            # full cycles inside the window (bin k == k cycles).
            k_min = min_cycles
            k_max = len(spectrum) - 1
            candidates = []
            for k in range(k_min, k_max + 1):
                left = spectrum[k - 1] if k - 1 >= 1 else 0.0
                right = spectrum[k + 1] if k + 1 <= k_max else 0.0
                if spectrum[k] >= left and spectrum[k] >= right and spectrum[k] > 0:
                    candidates.append(k)
            candidates.sort(key=lambda k: float(spectrum[k]), reverse=True)
            seen_lags: list[int] = []
            for k in candidates:
                if len(detections) >= max_periods:
                    break
                freq = k / (n * interval_s)
                lag = int(round(1.0 / (freq * interval_s)))
                # Snap to the autocorrelation maximum near the DFT
                # estimate: one half DFT bin each side, at least ±1 lag.
                half_bin = max(1, int(round(lag * lag / (2.0 * n))))
                lo = max(1, lag - half_bin)
                hi = min(n - 1, lag + half_bin)
                if lo > hi:
                    continue
                lag = lo + int(np.argmax(ac[lo : hi + 1]))
                if lag < 2 or lag > n // min_cycles:
                    continue
                if any(abs(lag - s) <= max(1, s // 8) for s in seen_lags):
                    continue  # harmonic/duplicate of an accepted period
                seen_lags.append(lag)
                # Peak power including one neighbouring bin each side
                # (spectral leakage spreads an off-grid line).
                band = slice(max(1, k - 1), min(k_max, k + 1) + 1)
                power_fraction = (
                    float(spectrum[band].sum()) / total_power if total_power > 0 else 0.0
                )
                autocorr = float(np.clip(ac[lag], 0.0, 1.0))
                spectral_weight = min(1.0, power_fraction / 0.15)
                confidence = float(np.clip(autocorr * spectral_weight, 0.0, 1.0))
                detections.append(
                    PeriodDetection(
                        period_s=lag * interval_s,
                        frequency_hz=1.0 / (lag * interval_s),
                        confidence=confidence,
                        power_fraction=power_fraction,
                        autocorr=autocorr,
                        n_windows=n,
                    )
                )
            detections.sort(key=lambda d: d.confidence, reverse=True)
            detections = [d for d in detections if d.confidence >= min_confidence]
    if metrics is not None:
        metrics.histogram(
            "scenario.detection_seconds",
            "wall time of one period-detection pass",
            wallclock=True,
        ).observe(time.perf_counter() - started)
        metrics.counter(
            "scenario.detections_total",
            "periodic-phase detections",
            outcome="detected" if detections else "none",
        ).inc()
    return detections


def detect_from_series(
    series: Sequence[tuple[float, float]],
    interval_s: float,
    **kwargs: object,
) -> list[PeriodDetection]:
    """Detect periods from ``(window_start_s, value)`` pairs.

    The pairs (e.g. :meth:`OnlineMonitor.throughput_series`) may skip
    empty windows; gaps are refilled with zeros so the sampling grid
    stays regular — an idle gap *is* signal for burst detection.
    """
    if not series:
        return []
    if interval_s <= 0:
        raise ScenarioError(f"interval must be positive, got {interval_s}")
    indices = [int(round(t / interval_s)) for t, _ in series]
    lo, hi = min(indices), max(indices)
    values = np.zeros(hi - lo + 1)
    for idx, (_, v) in zip(indices, series):
        values[idx - lo] += v
    return detect_periods(values, interval_s, **kwargs)  # type: ignore[arg-type]
