"""Workload grammars: a small CFG DSL describing I/O pattern families.

FBench-style what-if exploration (PAPERS.md) turns "new scenario" into
data instead of code: a context-free grammar whose productions describe
*families* of I/O patterns — bursty, interleaved, shared-file vs.
file-per-process, metadata-heavy — expands into concrete benchmark
configurations.  A grammar is a TOML file::

    [grammar]
    name = "io-families"
    start = "workload"

    [rules]
    workload = "bursty | interleaved @2 | steady"
    bursty = "geometry api=<MPIIO|POSIX> sharing=<shared|fpp> pattern=bursty period_s={2..8}"
    geometry = "blocksize={4m..32m:pow2} transfersize={1m..4m:pow2} segments={2..16}"

    [defaults]
    nodes = 2
    taskspernode = 4

Each rule's right-hand side is a ``|``-separated list of alternatives;
an alternative is a whitespace-separated token sequence.  Tokens:

``name``
    A nonterminal reference — the named rule is expanded in place.
``key=value``
    A terminal assignment (later assignments override earlier ones, so
    a shared base rule can be specialised downstream).
``key=<a|b|c>``
    An inline weighted choice of literals; ``a:2`` doubles ``a``'s
    weight.
``key={lo..hi}``
    A numeric range.  Bounds may be integers, floats, or binary sizes
    (``4m``); ``{lo..hi:pow2}`` restricts the draw to powers of two —
    the natural lattice for block/transfer sizes.
``@N``
    Sets the surrounding *alternative's* selection weight (default 1).

The ``[defaults]`` table contributes fixed terminals (applied before
the derivation, so rules may override them).  Parsing is eager and
total: every nonterminal must resolve to a rule, ranges must be
ordered, and weights positive — a grammar that parses, expands.

TOML loading reuses the campaign subsystem's tomllib-or-subset
discipline so 3.10 containers keep working.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.util.errors import ScenarioError, UnitParseError
from repro.util.units import parse_size

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on 3.10
    _toml = None

__all__ = [
    "Grammar",
    "Rule",
    "Alternative",
    "Terminal",
    "Choice",
    "Range",
    "NonTerminal",
    "parse_grammar_toml",
    "load_grammar_file",
]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_RANGE_RE = re.compile(r"^\{(?P<lo>[^{}]+?)\.\.(?P<hi>[^:{}]+?)(?::(?P<mode>[a-z0-9]+))?\}$")
_CHOICE_RE = re.compile(r"^<(?P<body>[^<>]+)>$")

#: Terminal keys whose values the IOR compiler understands as sizes.
SIZE_KEYS = frozenset({"blocksize", "transfersize"})


@dataclass(frozen=True, slots=True)
class NonTerminal:
    """A reference to another rule, expanded in place."""

    name: str


@dataclass(frozen=True, slots=True)
class Terminal:
    """A fixed ``key=value`` assignment."""

    key: str
    value: str


@dataclass(frozen=True, slots=True)
class Choice:
    """An inline weighted choice of literal values for one key."""

    key: str
    values: tuple[str, ...]
    weights: tuple[float, ...]


@dataclass(frozen=True, slots=True)
class Range:
    """A numeric range for one key.

    ``lo``/``hi`` are inclusive.  ``integer`` ranges draw whole numbers
    (uniform, or uniform over the powers of two in range when ``pow2``);
    float ranges draw uniformly on the continuous interval.
    """

    key: str
    lo: float
    hi: float
    integer: bool
    pow2: bool = False

    def pow2_values(self) -> list[int]:
        """The powers of two inside ``[lo, hi]`` (validated non-empty)."""
        values = []
        v = 1
        while v <= self.hi:
            if v >= self.lo:
                values.append(v)
            v *= 2
        return values


Symbol = NonTerminal | Terminal | Choice | Range


@dataclass(frozen=True, slots=True)
class Alternative:
    """One weighted right-hand side of a rule."""

    symbols: tuple[Symbol, ...]
    weight: float = 1.0


@dataclass(frozen=True, slots=True)
class Rule:
    """A named production with one or more alternatives."""

    name: str
    alternatives: tuple[Alternative, ...]


@dataclass(slots=True)
class Grammar:
    """A parsed workload grammar."""

    name: str
    start: str
    rules: dict[str, Rule]
    defaults: dict[str, str] = field(default_factory=dict)
    max_depth: int = 32

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("grammar needs a non-empty name")
        if self.start not in self.rules:
            raise ScenarioError(
                f"start symbol {self.start!r} has no rule; defined: {sorted(self.rules)}"
            )
        if self.max_depth < 1:
            raise ScenarioError(f"max_depth must be >= 1, got {self.max_depth}")
        for rule in self.rules.values():
            for alt in rule.alternatives:
                for symbol in alt.symbols:
                    if isinstance(symbol, NonTerminal) and symbol.name not in self.rules:
                        raise ScenarioError(
                            f"rule {rule.name!r} references undefined "
                            f"nonterminal {symbol.name!r}"
                        )

    def rule(self, name: str) -> Rule:
        """Look up one rule (the expander's entry point)."""
        try:
            return self.rules[name]
        except KeyError:
            raise ScenarioError(f"no rule named {name!r}") from None


def _parse_number(text: str, *, context: str) -> tuple[float, bool]:
    """Parse a range bound: int, float, or binary size.  Returns
    ``(value, is_integer)``."""
    text = text.strip()
    try:
        return float(int(text)), True
    except ValueError:
        pass
    try:
        return float(text), False
    except ValueError:
        pass
    try:
        return float(parse_size(text)), True
    except (UnitParseError, ValueError):
        raise ScenarioError(
            f"{context}: cannot parse range bound {text!r} "
            "(expected an integer, float, or size like '4m')"
        ) from None


def _parse_weighted(token: str, *, context: str) -> tuple[str, float]:
    """Split a ``value:weight`` literal (weight defaults to 1)."""
    value, sep, weight_text = token.partition(":")
    if not sep:
        return token, 1.0
    try:
        weight = float(weight_text)
    except ValueError:
        raise ScenarioError(f"{context}: invalid weight in {token!r}") from None
    if weight <= 0:
        raise ScenarioError(f"{context}: weight must be positive in {token!r}")
    return value, weight


def _parse_symbol(token: str, rule_name: str) -> Symbol | float:
    """Parse one alternative token; a float is an ``@weight`` marker."""
    context = f"rule {rule_name!r}"
    if token.startswith("@"):
        try:
            weight = float(token[1:])
        except ValueError:
            raise ScenarioError(f"{context}: invalid alternative weight {token!r}") from None
        if weight <= 0:
            raise ScenarioError(f"{context}: alternative weight must be positive ({token!r})")
        return weight
    key, sep, value = token.partition("=")
    if not sep:
        if not _NAME_RE.match(token):
            raise ScenarioError(f"{context}: invalid nonterminal reference {token!r}")
        return NonTerminal(token)
    if not _NAME_RE.match(key):
        raise ScenarioError(f"{context}: invalid terminal key {key!r}")
    if not value:
        raise ScenarioError(f"{context}: empty value for terminal {key!r}")
    range_match = _RANGE_RE.match(value)
    if range_match:
        lo, lo_int = _parse_number(range_match.group("lo"), context=context)
        hi, hi_int = _parse_number(range_match.group("hi"), context=context)
        if lo > hi:
            raise ScenarioError(f"{context}: empty range {value!r} for {key!r} (lo > hi)")
        mode = range_match.group("mode")
        if mode not in (None, "pow2"):
            raise ScenarioError(f"{context}: unknown range mode {mode!r} in {value!r}")
        rng = Range(key=key, lo=lo, hi=hi, integer=lo_int and hi_int, pow2=mode == "pow2")
        if rng.pow2:
            if not rng.integer:
                raise ScenarioError(f"{context}: pow2 ranges need integer bounds ({value!r})")
            if not rng.pow2_values():
                raise ScenarioError(
                    f"{context}: no power of two inside {value!r} for {key!r}"
                )
        return rng
    choice_match = _CHOICE_RE.match(value)
    if choice_match:
        pairs = [
            _parse_weighted(part.strip(), context=context)
            for part in choice_match.group("body").split("|")
            if part.strip()
        ]
        if not pairs:
            raise ScenarioError(f"{context}: empty choice for {key!r}")
        return Choice(
            key=key,
            values=tuple(v for v, _ in pairs),
            weights=tuple(w for _, w in pairs),
        )
    return Terminal(key=key, value=value)


def _split_alternatives(name: str, text: str) -> list[str]:
    """Split a rule RHS on ``|``, ignoring pipes inside ``<...>`` choices."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
            if depth < 0:
                raise ScenarioError(f"rule {name!r}: unbalanced '>' in {text!r}")
        if ch == "|" and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ScenarioError(f"rule {name!r}: unbalanced '<' in {text!r}")
    parts.append("".join(current))
    return parts


def _parse_rule(name: str, text: str) -> Rule:
    """Parse one rule's right-hand side."""
    if not _NAME_RE.match(name):
        raise ScenarioError(f"invalid rule name {name!r}")
    alternatives = []
    for alt_text in _split_alternatives(name, text):
        tokens = alt_text.split()
        if not tokens:
            raise ScenarioError(f"rule {name!r} has an empty alternative")
        symbols: list[Symbol] = []
        weight = 1.0
        for token in tokens:
            parsed = _parse_symbol(token, name)
            if isinstance(parsed, float):
                weight = parsed
            else:
                symbols.append(parsed)
        if not symbols:
            raise ScenarioError(f"rule {name!r} has a weight-only alternative")
        alternatives.append(Alternative(symbols=tuple(symbols), weight=weight))
    return Rule(name=name, alternatives=tuple(alternatives))


def parse_grammar_toml(text: str) -> Grammar:
    """Parse grammar TOML text into a validated :class:`Grammar`."""
    if _toml is not None:
        try:
            tables = _toml.loads(text)
        except _toml.TOMLDecodeError as exc:
            raise ScenarioError(f"invalid grammar TOML: {exc}") from exc
    else:  # pragma: no cover - 3.10 fallback
        # Imported lazily: the campaign package transitively imports
        # repro.core.usage, whose OnlineMonitor imports this package's
        # periodic module — a top-level import here would close a cycle.
        from repro.core.campaign.spec import _parse_toml_subset

        try:
            tables = _parse_toml_subset(text)
        except Exception as exc:
            raise ScenarioError(f"invalid grammar TOML: {exc}") from exc
    meta = tables.get("grammar")
    if not isinstance(meta, dict):
        raise ScenarioError("grammar file needs a [grammar] table")
    unknown = sorted(set(tables) - {"grammar", "rules", "defaults"})
    if unknown:
        raise ScenarioError(
            f"unknown grammar table(s) {unknown}; known: [grammar], [rules], [defaults]"
        )
    name = str(meta.get("name", ""))
    start = str(meta.get("start", "workload"))
    max_depth = meta.get("max_depth", 32)
    if not isinstance(max_depth, int) or isinstance(max_depth, bool):
        raise ScenarioError(f"max_depth must be an integer, got {max_depth!r}")
    raw_rules = tables.get("rules", {})
    if not isinstance(raw_rules, dict) or not raw_rules:
        raise ScenarioError("grammar needs at least one [rules] entry")
    rules = {
        str(rule_name): _parse_rule(str(rule_name), str(rhs))
        for rule_name, rhs in raw_rules.items()
    }
    defaults = {str(k): str(v) for k, v in tables.get("defaults", {}).items()}
    for key in defaults:
        if not _NAME_RE.match(key):
            raise ScenarioError(f"invalid default key {key!r}")
    return Grammar(name=name, start=start, rules=rules, defaults=defaults, max_depth=max_depth)


def load_grammar_file(path: str) -> Grammar:
    """Load and parse a grammar TOML file."""
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise ScenarioError(f"cannot read grammar file {path!r}: {exc}") from exc
    return parse_grammar_toml(text)
