"""``repro-scenario`` — expand, compile, run and diagnose workload scenarios.

The operator console for the scenario engine::

    repro-scenario --grammar examples/scenarios.toml --expand 5
    repro-scenario --grammar examples/scenarios.toml --compile 5 --out sweep.toml
    repro-scenario --grammar examples/scenarios.toml --run 5 --store campaigns.db --db knowledge.db
    repro-scenario --grammar examples/scenarios.toml --synthesize 0 --out trace.json
    repro-scenario --diagnose trace.json

``--expand`` prints one derivation per line (stable JSON, the unit of
the determinism contract).  ``--compile`` renders the derivations as a
campaign TOML sweep that ``repro-campaign --submit`` accepts
unmodified; ``--run`` short-circuits the file and drives the compiled
campaign through the store and launcher directly, against any backend
URL (``knowledge+tcp://`` included).  ``--synthesize`` emits a
synthetic throughput trace with the derivation's planted period, and
``--diagnose`` closes the loop: it reads a trace (synthetic or
exported from a real monitor), runs the frequency-domain detector, and
prints detections plus the actionable recommendations they map to.

Trace JSON accepted by ``--diagnose``: either an object
``{"interval_s": 0.25, "values": [...]}`` or a bare list of
``[time_s, value]`` pairs (then ``--interval`` supplies the grid).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.campaign.launcher import Launcher
from repro.core.campaign.store import JOB_STATES, CampaignStore
from repro.core.metrics import MetricsRegistry
from repro.core.scenario.compile_campaign import compile_campaign_spec, compile_campaign_toml
from repro.core.scenario.expand import expand, synthesize_throughput
from repro.core.scenario.grammar import load_grammar_file
from repro.core.scenario.periodic import detect_from_series, detect_periods
from repro.core.usage.recommend import recommend_for_periods
from repro.util.errors import ReproError, ScenarioError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro-scenario argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-scenario",
        description="Expand workload grammars and diagnose periodic I/O.",
    )
    actions = parser.add_mutually_exclusive_group(required=True)
    actions.add_argument(
        "--expand", type=int, metavar="N", help="expand N derivations and print them"
    )
    actions.add_argument(
        "--compile", type=int, metavar="N",
        help="compile N derivations into a campaign TOML sweep",
    )
    actions.add_argument(
        "--run", type=int, metavar="N",
        help="expand N derivations, submit them as a campaign, and drain it",
    )
    actions.add_argument(
        "--synthesize", type=int, metavar="INDEX",
        help="write derivation INDEX's synthetic throughput trace as JSON",
    )
    actions.add_argument(
        "--diagnose", metavar="TRACE",
        help="detect periodic I/O in a trace JSON file and recommend mitigations",
    )
    parser.add_argument(
        "--grammar", metavar="TOML",
        help="grammar file (required for everything except --diagnose)",
    )
    parser.add_argument("--seed", type=int, default=42, help="expansion seed")
    parser.add_argument(
        "--interval", type=float, default=0.25, metavar="S",
        help="window length in seconds for traces and diagnosis",
    )
    parser.add_argument(
        "--windows", type=int, default=256,
        help="window count for --synthesize traces",
    )
    parser.add_argument(
        "--min-confidence", type=float, default=0.5, metavar="C",
        help="drop detections below this confidence in --diagnose",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write --compile/--synthesize output here instead of stdout",
    )
    parser.add_argument(
        "--store", default="campaigns.db",
        help="campaign store path for --run (default: campaigns.db)",
    )
    parser.add_argument(
        "--db", default=":memory:",
        help="knowledge backend URL for --run (path or knowledge+tcp:// URL)",
    )
    parser.add_argument("--workers", type=int, default=2, help="launcher worker threads")
    parser.add_argument(
        "--workspace", default="scenario_run", help="JUBE workspace directory for --run"
    )
    parser.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write the scenario metrics snapshot to PATH on exit",
    )
    return parser


def _emit(text: str, out: str | None) -> None:
    if out is None:
        print(text, end="" if text.endswith("\n") else "\n")
    else:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")


def _load_trace(path: str) -> tuple[list[float] | list[tuple[float, float]], float | None]:
    """Read a trace file; returns (values-or-pairs, embedded interval)."""
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise ScenarioError(f"cannot read trace file {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"trace file {path!r} is not valid JSON: {exc}") from exc
    if isinstance(payload, dict):
        values = payload.get("values")
        if not isinstance(values, list) or not values:
            raise ScenarioError(f"trace file {path!r} has no non-empty 'values' list")
        interval = payload.get("interval_s")
        if interval is not None and (not isinstance(interval, (int, float)) or interval <= 0):
            raise ScenarioError(f"trace file {path!r} has invalid 'interval_s': {interval!r}")
        return [float(v) for v in values], float(interval) if interval else None
    if isinstance(payload, list) and payload:
        try:
            pairs = [(float(t), float(v)) for t, v in payload]
        except (TypeError, ValueError) as exc:
            raise ScenarioError(
                f"trace file {path!r}: expected [[time_s, value], ...] pairs"
            ) from exc
        return pairs, None
    raise ScenarioError(
        f"trace file {path!r}: expected an object with 'values' or a list of pairs"
    )


def _diagnose(args: argparse.Namespace, metrics: MetricsRegistry | None) -> int:
    data, embedded_interval = _load_trace(args.diagnose)
    interval = embedded_interval or args.interval
    if data and isinstance(data[0], tuple):
        detections = detect_from_series(
            data, interval, metrics=metrics  # type: ignore[arg-type]
        )
    else:
        detections = detect_periods(data, interval, metrics=metrics)  # type: ignore[arg-type]
    detections = [d for d in detections if d.confidence >= args.min_confidence]
    if not detections:
        print(f"no periodic I/O detected at confidence >= {args.min_confidence}")
        return 0
    print(f"{len(detections)} periodic phase(s) detected (interval {interval}s):")
    for d in detections:
        print(f"  {d.description}")
    recommendations = recommend_for_periods(detections, min_confidence=args.min_confidence)
    print(f"{len(recommendations)} recommendation(s):")
    for r in recommendations:
        print(f"  {r.description}")
    return 0


def _run_campaign(args: argparse.Namespace, metrics: MetricsRegistry | None) -> int:
    grammar = load_grammar_file(args.grammar)
    derivations = expand(grammar, args.seed, args.run, metrics=metrics)
    spec = compile_campaign_spec(grammar, derivations)
    with CampaignStore(args.store, metrics=metrics) as store:
        campaign_id = store.submit(spec, args.db)
        counts = store.counts(campaign_id)
        print(
            f"submitted campaign {campaign_id} ({spec.name}): "
            f"{sum(counts.values())} job(s) from {len(derivations)} derivation(s)"
        )
        launcher = Launcher(
            store,
            campaign_id,
            workspace=args.workspace,
            workers=args.workers,
            seed=args.seed,
            metrics=metrics,
        )
        counts = launcher.run()
        summary = ", ".join(f"{counts[s]} {s}" for s in JOB_STATES if counts[s])
        print(f"campaign {campaign_id} drained: {summary}")
        return 1 if counts["FAILED"] else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(list(sys.argv[1:] if argv is None else argv))
    needs_grammar = args.diagnose is None
    if needs_grammar and not args.grammar:
        print("error: --grammar is required for this action", file=sys.stderr)
        return 2
    if args.interval <= 0:
        print("error: --interval must be positive", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    metrics = MetricsRegistry() if args.metrics_json else None
    exit_code = 0
    try:
        if args.diagnose is not None:
            exit_code = _diagnose(args, metrics)
        elif args.expand is not None:
            grammar = load_grammar_file(args.grammar)
            for derivation in expand(grammar, args.seed, args.expand, metrics=metrics):
                print(derivation.to_json())
        elif args.compile is not None:
            grammar = load_grammar_file(args.grammar)
            derivations = expand(grammar, args.seed, args.compile, metrics=metrics)
            _emit(compile_campaign_toml(grammar, derivations), args.out)
        elif args.synthesize is not None:
            grammar = load_grammar_file(args.grammar)
            derivations = expand(
                grammar, args.seed, args.synthesize + 1, metrics=metrics
            )
            derivation = derivations[args.synthesize]
            values, planted = synthesize_throughput(
                derivation, windows=args.windows, interval_s=args.interval
            )
            _emit(
                json.dumps(
                    {
                        "grammar": grammar.name,
                        "seed": args.seed,
                        "index": derivation.index,
                        "pattern": derivation.get("pattern", "steady"),
                        "interval_s": args.interval,
                        "planted_period_s": planted,
                        "values": [round(float(v), 3) for v in values],
                    }
                ),
                args.out,
            )
        else:
            exit_code = _run_campaign(args, metrics)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        exit_code = 1
    finally:
        # Same parity rule as repro-campaign: the snapshot is written
        # even when the action failed.
        if args.metrics_json and metrics is not None:
            try:
                metrics.write_json(args.metrics_json)
            except OSError as exc:
                print(f"error: cannot write {args.metrics_json}: {exc}", file=sys.stderr)
                return 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
