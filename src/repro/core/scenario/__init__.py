"""Scenario engine: CFG-driven workload grammars + frequency-domain
periodic-I/O diagnosis.

The forward half (:mod:`grammar`, :mod:`expand`,
:mod:`compile_campaign`) turns a compact context-free grammar of I/O
pattern families into concrete, deterministic workload derivations and
runnable campaign sweeps.  The inverse half (:mod:`periodic`) reads a
throughput series back and recovers the temporal structure — the
period a grammar planted, or the checkpoint cadence of a real
application — via DFT + autocorrelation with a confidence score.

Importing this package must stay cheap and campaign-free:
``usage.online.OnlineMonitor`` imports :mod:`.periodic` for streaming
detection, and the campaign package transitively imports ``usage`` —
so the submodules defer their campaign imports to call time, and
:mod:`.cli` (which wires everything together) is deliberately not
imported here.
"""

from repro.core.scenario.compile_campaign import (
    compile_campaign_spec,
    compile_campaign_toml,
)
from repro.core.scenario.expand import (
    GEOMETRY_KEYS,
    IOR_KEYS,
    Derivation,
    compile_ior_config,
    expand,
    synthesize_throughput,
)
from repro.core.scenario.grammar import (
    Alternative,
    Choice,
    Grammar,
    NonTerminal,
    Range,
    Rule,
    Terminal,
    load_grammar_file,
    parse_grammar_toml,
)
from repro.core.scenario.periodic import (
    PeriodDetection,
    detect_from_series,
    detect_periods,
)

__all__ = [
    "Alternative",
    "Choice",
    "Derivation",
    "GEOMETRY_KEYS",
    "Grammar",
    "IOR_KEYS",
    "NonTerminal",
    "PeriodDetection",
    "Range",
    "Rule",
    "Terminal",
    "compile_campaign_spec",
    "compile_campaign_toml",
    "compile_ior_config",
    "detect_from_series",
    "detect_periods",
    "expand",
    "load_grammar_file",
    "parse_grammar_toml",
    "synthesize_throughput",
]
