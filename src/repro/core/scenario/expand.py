"""Deterministic seeded expansion of workload grammars.

Every derivation is driven by one random stream derived from
``(seed, "scenario", grammar.name, index)`` via the repo-wide
:func:`~repro.util.rng.derive_seed` discipline, and every stochastic
decision (alternative selection, inline choices, range draws) consumes
that stream in leftmost-derivation order.  Identical ``(grammar, seed,
index)`` therefore always yields the byte-identical derivation — the
contract the campaign compiler and the property tests build on — while
different seeds explore different corners of the pattern family.

A :class:`Derivation` is a flat terminal assignment (plus the decision
trace for provenance).  :func:`compile_ior_config` maps the
IOR-expressible subset of its keys onto a runnable
:class:`~repro.benchmarks_io.ior.config.IORConfig`;
:func:`synthesize_throughput` turns the derivation's *temporal* keys
(``pattern``, ``period_s``, ``duty``) into a synthetic throughput trace
with a known planted period, which is what the frequency-domain
detector trains its confidence scoring against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.benchmarks_io.ior.config import IORConfig
from repro.core.scenario.grammar import (
    Choice,
    Grammar,
    NonTerminal,
    Range,
    Terminal,
)
from repro.util.errors import ConfigurationError, ScenarioError
from repro.util.rng import lognormal_factor, stream
from repro.util.units import parse_size

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.metrics import MetricsRegistry

__all__ = [
    "Derivation",
    "expand",
    "compile_ior_config",
    "synthesize_throughput",
]

#: Derivation keys :func:`compile_ior_config` maps onto IOR options.
IOR_KEYS = frozenset(
    {
        "api",
        "blocksize",
        "transfersize",
        "segments",
        "iterations",
        "sharing",
        "collective",
        "fsync",
        "testfile",
    }
)
#: Derivation keys carried as campaign geometry, not IOR flags.
GEOMETRY_KEYS = frozenset({"nodes", "taskspernode"})


@dataclass(frozen=True, slots=True)
class Derivation:
    """One fully-expanded scenario: flat terminals + decision trace."""

    grammar: str
    seed: int
    index: int
    params: dict[str, str] = field(default_factory=dict)
    trace: tuple[str, ...] = ()

    def to_json(self) -> str:
        """Stable JSON form (the byte-identity unit of the determinism
        property tests)."""
        return json.dumps(
            {
                "grammar": self.grammar,
                "seed": self.seed,
                "index": self.index,
                "params": self.params,
                "trace": list(self.trace),
            },
            sort_keys=True,
        )

    def get(self, key: str, default: str | None = None) -> str | None:
        """One terminal value (string form), or ``default``."""
        return self.params.get(key, default)

    def get_float(self, key: str, default: float) -> float:
        """One terminal as a float, tolerating size suffixes."""
        raw = self.params.get(key)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            try:
                return float(parse_size(raw))
            except Exception:
                raise ScenarioError(
                    f"derivation key {key!r} is not numeric: {raw!r}"
                ) from None


def _format_value(value: float, integer: bool) -> str:
    if integer:
        return str(int(round(value)))
    return repr(round(value, 6))


def _weighted_index(rng: np.random.Generator, weights: tuple[float, ...]) -> int:
    """Draw one index proportionally to ``weights`` (deterministic)."""
    total = float(sum(weights))
    threshold = float(rng.random()) * total
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if threshold < acc:
            return i
    return len(weights) - 1  # pragma: no cover - float round-off guard


def _derive_one(grammar: Grammar, rng: np.random.Generator) -> tuple[dict[str, str], list[str]]:
    """Expand the start symbol with one random stream (leftmost order)."""
    params = dict(grammar.defaults)
    trace: list[str] = []

    def visit(rule_name: str, depth: int) -> None:
        if depth > grammar.max_depth:
            raise ScenarioError(
                f"grammar {grammar.name!r} exceeded max_depth={grammar.max_depth} "
                f"expanding {rule_name!r} — is a rule (mutually) recursive "
                "without a terminating alternative?"
            )
        rule = grammar.rule(rule_name)
        if len(rule.alternatives) == 1:
            alt_index = 0
        else:
            alt_index = _weighted_index(
                rng, tuple(a.weight for a in rule.alternatives)
            )
        trace.append(f"{rule_name}[{alt_index}]")
        for symbol in rule.alternatives[alt_index].symbols:
            if isinstance(symbol, NonTerminal):
                visit(symbol.name, depth + 1)
            elif isinstance(symbol, Terminal):
                params[symbol.key] = symbol.value
            elif isinstance(symbol, Choice):
                params[symbol.key] = symbol.values[
                    _weighted_index(rng, symbol.weights)
                ]
            elif isinstance(symbol, Range):
                if symbol.pow2:
                    values = symbol.pow2_values()
                    value = float(values[int(rng.integers(0, len(values)))])
                    params[symbol.key] = _format_value(value, integer=True)
                elif symbol.integer:
                    value = float(rng.integers(int(symbol.lo), int(symbol.hi) + 1))
                    params[symbol.key] = _format_value(value, integer=True)
                else:
                    value = symbol.lo + float(rng.random()) * (symbol.hi - symbol.lo)
                    params[symbol.key] = _format_value(value, integer=False)

    visit(grammar.start, depth=1)
    return params, trace


def expand(
    grammar: Grammar,
    seed: int,
    count: int,
    *,
    metrics: "MetricsRegistry | None" = None,
) -> list[Derivation]:
    """Expand ``count`` derivations from ``grammar`` under ``seed``.

    Derivation ``i`` draws from the stream keyed ``(seed, "scenario",
    grammar.name, i)``, so the list is stable under re-expansion and
    prefix-stable under a larger ``count``.
    """
    if count < 1:
        raise ScenarioError(f"count must be >= 1, got {count}")
    derivations = []
    for index in range(count):
        rng = stream(seed, "scenario", grammar.name, index)
        params, trace = _derive_one(grammar, rng)
        derivations.append(
            Derivation(
                grammar=grammar.name,
                seed=seed,
                index=index,
                params=params,
                trace=tuple(trace),
            )
        )
    if metrics is not None:
        metrics.counter(
            "scenario.expansions_total",
            "derivations expanded from workload grammars",
            grammar=grammar.name,
        ).inc(len(derivations))
    return derivations


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple


def compile_ior_config(derivation: Derivation) -> IORConfig:
    """Compile one derivation's IOR-expressible keys into a config.

    Unknown keys (temporal structure like ``period_s``, campaign
    geometry like ``nodes``) are deliberately ignored here — they ride
    along in ``derivation.params`` for the campaign compiler and the
    trace synthesizer.  The block size is rounded up to a whole number
    of transfers, since a grammar may legally sample the two
    independently.
    """
    params = derivation.params
    try:
        transfer = parse_size(params.get("transfersize", "1m"))
        block = parse_size(params.get("blocksize", "4m"))
    except Exception as exc:
        raise ScenarioError(f"derivation {derivation.index}: bad size ({exc})") from exc
    if transfer <= 0 or block <= 0:
        raise ScenarioError(
            f"derivation {derivation.index}: sizes must be positive "
            f"(blocksize={block}, transfersize={transfer})"
        )
    block = _round_up(block, transfer)
    sharing = params.get("sharing", "shared")
    if sharing not in ("shared", "fpp"):
        raise ScenarioError(
            f"derivation {derivation.index}: sharing must be 'shared' or 'fpp', "
            f"got {sharing!r}"
        )
    try:
        return IORConfig(
            api=params.get("api", "MPIIO"),
            block_size=block,
            transfer_size=transfer,
            segment_count=int(params.get("segments", "1")),
            iterations=int(params.get("iterations", "3")),
            test_file=params.get("testfile", "/scratch/scenario/test"),
            file_per_proc=sharing == "fpp",
            collective=params.get("collective", "false").lower() == "true",
            fsync=params.get("fsync", "false").lower() == "true",
            keep_file=True,
        )
    except (ConfigurationError, ValueError) as exc:
        raise ScenarioError(
            f"derivation {derivation.index} does not compile to IOR: {exc}"
        ) from exc


def synthesize_throughput(
    derivation: Derivation,
    *,
    windows: int = 256,
    interval_s: float = 0.25,
    noise_sigma: float = 0.08,
) -> tuple[np.ndarray, float | None]:
    """Synthesize a throughput trace (MiB/s per window) for a derivation.

    Derivations whose ``pattern`` is temporal (``bursty`` or
    ``interleaved``) plant a square/alternating wave with the
    derivation's ``period_s`` (default 4 s) and ``duty`` (default 0.3);
    anything else produces steady throughput.  Multiplicative lognormal
    noise keeps the trace realistic without burying the planted period.
    Returns ``(values, planted_period_s)`` with ``None`` when the trace
    is aperiodic by construction.
    """
    if windows < 8:
        raise ScenarioError(f"need at least 8 windows, got {windows}")
    if interval_s <= 0:
        raise ScenarioError(f"interval must be positive, got {interval_s}")
    rng = stream(derivation.seed, "scenario-trace", derivation.grammar, derivation.index)
    pattern = derivation.get("pattern", "steady")
    high = max(16.0, derivation.get_float("blocksize", 32 * 1024**2) / 1024**2 * 8.0)
    low = high * 0.05
    noise = lognormal_factor(rng, noise_sigma, size=windows)
    t = np.arange(windows) * interval_s
    if pattern in ("bursty", "interleaved"):
        period_s = derivation.get_float("period_s", 4.0)
        if period_s <= interval_s * 2:
            raise ScenarioError(
                f"period_s={period_s} is not resolvable at interval_s={interval_s}"
            )
        duty = min(0.9, max(0.05, derivation.get_float("duty", 0.3)))
        phase = np.mod(t, period_s) / period_s
        if pattern == "bursty":
            values = np.where(phase < duty, high, low)
        else:
            # Interleaved read/write phases: two intensity levels split
            # the period instead of an on/off burst.
            values = np.where(phase < 0.5, high, high * 0.4)
        return values * noise, float(period_s)
    return np.full(windows, high * 0.6) * noise, None
