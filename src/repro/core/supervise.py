"""Process-supervision primitives shared by every supervisor.

The knowledge server's :class:`~repro.core.service.server.
WorkerSupervisor` (PR 7) and the campaign fleet's
:class:`~repro.core.campaign.fleet.coordinator.LauncherFleet` both
supervise a row of child processes with the same state machine: a dead
child is respawned under an exponential-backoff budget, and a child
that keeps dying inside a sliding window is demoted to a permanent
tombstone instead of burning CPU on a group that cannot stay up.

This module holds the per-slot bookkeeping both supervisors share, so
the crash-loop semantics stay identical across subsystems:

* :class:`SupervisedSlot` — one child's supervision state (respawn
  backoff schedule, sliding crash-loop window, heal timestamps).
* :meth:`SupervisedSlot.note_respawn_attempt` — records one respawn
  attempt against the window and answers whether the slot just crossed
  the crash-loop threshold.

The policy knobs (threshold, window, backoff) stay with each
supervisor; only the mechanism lives here.
"""

from __future__ import annotations

from collections import deque

__all__ = ["SupervisedSlot"]


class SupervisedSlot:
    """Per-child supervision state (touched only by its supervisor)."""

    __slots__ = (
        "attempt", "next_attempt_at", "respawn_times", "unhealthy_since",
        "respawns", "last_heal_at", "crash_looped", "probe_failures",
    )

    def __init__(self) -> None:
        self.attempt = 0  # consecutive failed respawn attempts
        self.next_attempt_at = 0.0  # monotonic time the next respawn is due
        self.respawn_times: deque[float] = deque()  # crash-loop window
        self.unhealthy_since: float | None = None  # first unhealthy sighting
        self.respawns = 0  # successful respawns over the slot's lifetime
        self.last_heal_at: float | None = None
        self.crash_looped = False
        self.probe_failures = 0  # consecutive failed heal probes

    def note_respawn_attempt(
        self, now: float, *, window_s: float, threshold: int
    ) -> bool:
        """Record one respawn attempt; True when it crosses the crash loop.

        Appends ``now`` to the sliding window, expires entries older
        than ``window_s``, and reports whether more than ``threshold``
        attempts remain inside the window — the supervisor's cue to
        demote the slot to a tombstone.
        """
        self.respawn_times.append(now)
        while self.respawn_times and now - self.respawn_times[0] > window_s:
            self.respawn_times.popleft()
        return len(self.respawn_times) > threshold

    def respawned(self, now: float) -> None:
        """Reset the backoff budget after a successful respawn."""
        self.attempt = 0
        self.next_attempt_at = 0.0
        self.probe_failures = 0
        self.respawns += 1

    def healed(self, now: float) -> float | None:
        """Mark the slot healthy; returns the unhealthy duration if any."""
        duration = (
            now - self.unhealthy_since if self.unhealthy_since is not None else None
        )
        self.unhealthy_since = None
        self.last_heal_at = now
        return duration
