"""The paper's contribution: the five-phase I/O knowledge cycle."""

from repro.core.cycle import CycleResult, KnowledgeCycle
from repro.core.knowledge import (
    FilesystemInfo,
    IO500Knowledge,
    IO500Testcase,
    Knowledge,
    KnowledgeResult,
    KnowledgeSummary,
)
from repro.core.registry import ModuleRegistry, UseCaseModule, default_module_registry

__all__ = [
    "Knowledge",
    "KnowledgeSummary",
    "KnowledgeResult",
    "FilesystemInfo",
    "IO500Knowledge",
    "IO500Testcase",
    "KnowledgeCycle",
    "CycleResult",
    "ModuleRegistry",
    "UseCaseModule",
    "default_module_registry",
]
