"""The paper's contribution: the five-phase I/O knowledge cycle."""

from repro.core.cycle import CycleResult, KnowledgeCycle, default_phase_registry
from repro.core.knowledge import (
    FilesystemInfo,
    IO500Knowledge,
    IO500Testcase,
    Knowledge,
    KnowledgeResult,
    KnowledgeSummary,
)
from repro.core.pipeline import (
    CycleContext,
    FailurePolicy,
    LoggingObserver,
    Phase,
    PhaseFailure,
    PhaseObserver,
    PhasePipeline,
    PhaseRegistry,
    PhaseTiming,
    TimingObserver,
)
from repro.core.registry import ModuleRegistry, UseCaseModule, default_module_registry
from repro.core.resilience import CircuitBreaker, Deadline, RetryPolicy, retry

__all__ = [
    "Knowledge",
    "KnowledgeSummary",
    "KnowledgeResult",
    "FilesystemInfo",
    "IO500Knowledge",
    "IO500Testcase",
    "KnowledgeCycle",
    "CycleResult",
    "CycleContext",
    "Phase",
    "PhaseFailure",
    "FailurePolicy",
    "PhaseRegistry",
    "PhasePipeline",
    "PhaseObserver",
    "PhaseTiming",
    "TimingObserver",
    "LoggingObserver",
    "default_phase_registry",
    "ModuleRegistry",
    "UseCaseModule",
    "default_module_registry",
    "RetryPolicy",
    "retry",
    "Deadline",
    "CircuitBreaker",
]
