"""Use-case module registry (the modular architecture of Fig. 4).

"Consistent with our highly modular architecture, further modules such
as the optimization module can be integrated in the future with minimal
effort."  A use-case module is any callable taking the knowledge the
cycle produced and returning a result object; the registry lets
deployments add/remove modules without touching the cycle itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.knowledge import IO500Knowledge, Knowledge
from repro.util.errors import UsageError

__all__ = ["UseCaseModule", "ModuleRegistry"]

#: A use-case callable: knowledge objects in, arbitrary result out.
UseCaseFn = Callable[[Sequence[Knowledge | IO500Knowledge]], object]


@dataclass(frozen=True, slots=True)
class UseCaseModule:
    """One pluggable Phase-V module."""

    name: str
    description: str
    run: UseCaseFn


class ModuleRegistry:
    """Named collection of use-case modules."""

    def __init__(self) -> None:
        self._modules: dict[str, UseCaseModule] = {}

    def register(self, module: UseCaseModule) -> None:
        """Add a module; names must be unique."""
        if module.name in self._modules:
            raise UsageError(f"use-case module {module.name!r} already registered")
        self._modules[module.name] = module

    def unregister(self, name: str) -> None:
        """Remove a module."""
        if name not in self._modules:
            raise UsageError(f"no use-case module {name!r} registered")
        del self._modules[name]

    def names(self) -> list[str]:
        """Registered module names, sorted."""
        return sorted(self._modules)

    def get(self, name: str) -> UseCaseModule:
        """Look up one module."""
        try:
            return self._modules[name]
        except KeyError:
            raise UsageError(
                f"no use-case module {name!r}; registered: {self.names()}"
            ) from None

    def run(
        self, name: str, knowledge: Sequence[Knowledge | IO500Knowledge]
    ) -> object:
        """Run one module on the given knowledge."""
        return self.get(name).run(knowledge)

    def run_all(
        self, knowledge: Sequence[Knowledge | IO500Knowledge]
    ) -> dict[str, object]:
        """Run every registered module; returns name → result."""
        return {name: self.run(name, knowledge) for name in self.names()}


def default_module_registry() -> ModuleRegistry:
    """Registry with the built-in use-case modules of §IV."""
    from repro.core.usage.anomaly import IterationAnomalyDetector
    from repro.core.usage.recommend import Recommender

    registry = ModuleRegistry()

    def _anomaly(knowledge: Sequence[Knowledge | IO500Knowledge]) -> object:
        detector = IterationAnomalyDetector()
        findings = []
        for k in knowledge:
            if isinstance(k, Knowledge):
                findings.extend(detector.detect(k))
        return findings

    def _recommend(knowledge: Sequence[Knowledge | IO500Knowledge]) -> object:
        base = [k for k in knowledge if isinstance(k, Knowledge)]
        if not base:
            return None
        try:
            return Recommender(base).recommend()
        except UsageError:
            return None

    registry.register(
        UseCaseModule(
            name="anomaly-detection",
            description="Flag per-iteration throughput collapses",
            run=_anomaly,
        )
    )
    registry.register(
        UseCaseModule(
            name="recommendation",
            description="Suggest the best-performing stored configuration",
            run=_recommend,
        )
    )
    return registry
