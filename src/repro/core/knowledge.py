"""The *Knowledge* object model (Phase II output, Phase III payload).

§V-B: "the obtained knowledge, i.e., performance metrics and system
information are mapped to a Python object called *Knowledge*".  A
knowledge object couples the I/O pattern parameters of a run with its
performance results, the file-system settings in effect and the host
system information.  IO500 runs get their own knowledge type, mirroring
the paper's decision to keep IO500 in separate tables (§V-C).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.util.errors import ConfigurationError
from repro.util.stats import boxplot_stats, BoxplotStats

__all__ = [
    "KnowledgeResult",
    "KnowledgeSummary",
    "FilesystemInfo",
    "Knowledge",
    "IO500Testcase",
    "IO500Knowledge",
]


@dataclass(frozen=True, slots=True)
class KnowledgeResult:
    """One iteration of one operation (a row of the ``results`` table)."""

    iteration: int
    bandwidth_mib: float
    iops: float
    latency_s: float = 0.0
    open_time_s: float = 0.0
    wrrd_time_s: float = 0.0
    close_time_s: float = 0.0
    total_time_s: float = 0.0

    def metric(self, name: str) -> float:
        """Look up one metric by its column name (viewer axis selection)."""
        try:
            return float(getattr(self, name))
        except AttributeError:
            raise ConfigurationError(
                f"unknown result metric {name!r}; available: "
                f"{[f for f in self.__dataclass_fields__]}"  # noqa: B023
            ) from None


@dataclass(slots=True)
class KnowledgeSummary:
    """Per-operation summary over iterations (``summaries`` table row).

    The paper stores a summary per operation *and* keeps the individual
    results "in order to provide a rich set of visualization options"
    (§V-C); both live here.
    """

    operation: str  # 'write' | 'read'
    api: str
    bw_max: float
    bw_min: float
    bw_mean: float
    bw_stddev: float
    ops_max: float
    ops_min: float
    ops_mean: float
    ops_stddev: float
    iterations: int
    results: list[KnowledgeResult] = field(default_factory=list)

    def bandwidth_series(self) -> list[float]:
        """Per-iteration bandwidth values in iteration order."""
        return [r.bandwidth_mib for r in sorted(self.results, key=lambda r: r.iteration)]

    def iops_series(self) -> list[float]:
        """Per-iteration operation rates in iteration order."""
        return [r.iops for r in sorted(self.results, key=lambda r: r.iteration)]

    def boxplot(self) -> BoxplotStats:
        """Boxplot statistics of the bandwidth series (overview chart)."""
        return boxplot_stats(self.bandwidth_series())


@dataclass(frozen=True, slots=True)
class FilesystemInfo:
    """Parallel file-system settings of the run (``filesystems`` table).

    Exactly the fields §V-B/§V-C name for BeeGFS: entry type, EntryID,
    metadata node and stripe pattern details, plus chunk size, number
    of storage targets, RAID scheme and storage pool.
    """

    fs_type: str = "beegfs"
    entry_type: str = ""
    entry_id: str = ""
    metadata_node: str = ""
    stripe_pattern: str = ""
    chunk_size: str = ""
    num_targets: int = 0
    raid_scheme: str = ""
    storage_pool: str = ""

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for persistence and display."""
        return asdict(self)


@dataclass(slots=True)
class Knowledge:
    """One benchmark/application run turned into structured knowledge."""

    benchmark: str  # 'ior' | 'hacc-io' | 'darshan' | ...
    command: str = ""
    api: str = ""
    test_file: str = ""
    file_per_proc: bool = False
    num_nodes: int = 0
    num_tasks: int = 0
    tasks_per_node: int = 0
    start_time: float = 0.0
    end_time: float = 0.0
    parameters: dict[str, object] = field(default_factory=dict)
    summaries: list[KnowledgeSummary] = field(default_factory=list)
    filesystem: FilesystemInfo | None = None
    system: dict[str, object] | None = None
    knowledge_id: int | None = None  # assigned by the persistence phase

    def summary(self, operation: str) -> KnowledgeSummary:
        """The summary of one operation."""
        for s in self.summaries:
            if s.operation == operation:
                return s
        raise ConfigurationError(
            f"no {operation!r} summary; available: {[s.operation for s in self.summaries]}"
        )

    def operations(self) -> list[str]:
        """Operations present, write before read."""
        present = [s.operation for s in self.summaries]
        ordered = [op for op in ("write", "read") if op in present]
        return ordered + [op for op in present if op not in ordered]

    def parameter(self, name: str, default: object = None) -> object:
        """One I/O pattern parameter (viewer axis selection)."""
        return self.parameters.get(name, default)


@dataclass(slots=True)
class IO500Testcase:
    """One IO500 phase with its options and scored result."""

    name: str
    value: float
    unit: str  # 'GiB/s' | 'kIOPS'
    time_s: float = 0.0
    options: dict[str, object] = field(default_factory=dict)


@dataclass(slots=True)
class IO500Knowledge:
    """One IO500 run as a knowledge object (separate tables, §V-C)."""

    score_total: float
    score_bw: float
    score_md: float
    num_nodes: int = 0
    num_tasks: int = 0
    timestamp: float = 0.0
    version: str = ""
    testcases: list[IO500Testcase] = field(default_factory=list)
    system: dict[str, object] | None = None
    iofh_id: int | None = None  # assigned by the persistence phase

    def testcase(self, name: str) -> IO500Testcase:
        """Look up one test case by name."""
        for t in self.testcases:
            if t.name == name:
                return t
        raise ConfigurationError(
            f"no test case {name!r}; available: {[t.name for t in self.testcases]}"
        )

    def value(self, name: str) -> float:
        """The scored value of one test case."""
        return self.testcase(name).value
