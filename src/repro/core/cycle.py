"""The I/O knowledge cycle — five-phase workflow orchestration (§III).

The five phases are registered :class:`~repro.core.pipeline.Phase`
implementations executed by the phase-pipeline engine: **generation**
runs a JUBE benchmark on the testbed, **extraction** scans the
resulting workspace, **persistence** stores the knowledge objects
behind the backend protocol, **analysis** builds the explorer views,
and **usage** runs the registered use-case modules.  "This iterative
cyclic process is either re-launched or terminated" —
:meth:`KnowledgeCycle.run_cycle` executes one revolution and can be
called repeatedly, optionally with a configuration produced by the
previous revolution's usage phase.

:class:`KnowledgeCycle` owns a :class:`PhaseRegistry`, so deployments
can insert, replace, or skip phases (say, a validation phase between
extraction and persistence) and attach
:class:`~repro.core.pipeline.PhaseObserver` instances, all without
touching this module.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.core.explorer.comparison import ComparisonView
from repro.core.explorer.io500_viewer import IO500Viewer
from repro.core.explorer.viewer import KnowledgeViewer
from repro.core.extraction.workspace import KnowledgeExtractor
from repro.core.knowledge import IO500Knowledge, Knowledge
from repro.core.persistence.backend import PersistenceBackend
from repro.core.persistence.io500_repo import IO500Repository
from repro.core.persistence.repository import KnowledgeRepository
from repro.core.pipeline import (
    CycleContext,
    CycleResult,
    FailurePolicy,
    PhaseObserver,
    PhasePipeline,
    PhaseRegistry,
)
from repro.core.registry import ModuleRegistry, default_module_registry
from repro.core.resilience import RetryPolicy
from repro.iostack.stack import Testbed
from repro.jube.benchmark import JubeBenchmark
from repro.jube.steps import DEFAULT_WORK_REGISTRY
from repro.jube.xmlconfig import load_benchmark
from repro.util.errors import ReproError, UsageError

__all__ = [
    "CycleResult",
    "GenerationPhase",
    "ExtractionPhase",
    "PersistencePhase",
    "AnalysisPhase",
    "UsagePhase",
    "default_phase_registry",
    "KnowledgeCycle",
    "main",
]


# ----------------------------------------------------------------------
# the five phases as pluggable Phase implementations
# ----------------------------------------------------------------------
class GenerationPhase:
    """Phase I: run a JUBE-defined benchmark campaign."""

    name = "generation"

    def run(self, context: CycleContext) -> int:
        """Execute the JUBE campaign; returns the workpackage count."""
        benchmark, _ = load_benchmark(
            context.jube_xml,
            DEFAULT_WORK_REGISTRY,
            outpath=context.workspace,
            shared={"testbed": context.testbed},
        )
        benchmark.run()
        context.benchmark = benchmark
        return len(benchmark.workpackages)


class ExtractionPhase:
    """Phase II: extract knowledge from the generated output files."""

    name = "extraction"

    def run(self, context: CycleContext) -> int:
        """Scan the run directory; returns the knowledge-object count."""
        extractor = KnowledgeExtractor(jube_workspace=context.workspace)
        benchmark = context.benchmark
        path = benchmark.run_dir if isinstance(benchmark, JubeBenchmark) else None
        context.extracted = extractor.extract(path)
        context.result.knowledge = [
            k for k in context.extracted if isinstance(k, Knowledge)
        ]
        context.result.io500_knowledge = [
            k for k in context.extracted if isinstance(k, IO500Knowledge)
        ]
        return len(context.extracted)


class PersistencePhase:
    """Phase III: store the knowledge objects atomically.

    The whole revolution's writes share one transaction: a failure on
    the Nth object rolls back the N-1 already saved instead of leaving
    partial knowledge rows behind.
    """

    name = "persistence"

    def run(self, context: CycleContext) -> int:
        """Save every extracted object in one transaction."""
        ids: list[int] = []
        iofh_ids: list[int] = []
        with context.backend.transaction():
            for k in context.extracted:
                if isinstance(k, IO500Knowledge):
                    iofh_ids.append(context.io500_repository.save(k))
                else:
                    ids.append(context.repository.save(k))
        context.result.knowledge_ids = ids
        context.result.iofh_ids = iofh_ids
        return len(ids) + len(iofh_ids)


class AnalysisPhase:
    """Phase IV: render the explorer views of the new knowledge."""

    name = "analysis"

    def run(self, context: CycleContext) -> int:
        """Build the analysis report; returns the section count."""
        sections = []
        benchmark_knowledge = context.result.knowledge
        for k in benchmark_knowledge:
            sections.append(context.viewer.render(k))
        if len(benchmark_knowledge) > 1:
            sections.append("Comparison:")
            sections.append(ComparisonView(benchmark_knowledge).table())
        for k in context.result.io500_knowledge:
            sections.append(context.io500_viewer.render(k))
        context.result.analysis_report = "\n".join(sections)
        return len(sections)


class UsagePhase:
    """Phase V: run every registered use-case module."""

    name = "usage"

    def run(self, context: CycleContext) -> int:
        """Run the use-case modules; returns how many ran."""
        context.result.usage_results = context.modules.run_all(context.extracted)
        return len(context.result.usage_results)


def default_phase_registry() -> PhaseRegistry:
    """Registry with the paper's five phases in canonical order."""
    return PhaseRegistry(
        [
            GenerationPhase(),
            ExtractionPhase(),
            PersistencePhase(),
            AnalysisPhase(),
            UsagePhase(),
        ]
    )


class KnowledgeCycle:
    """Orchestrates the phase pipeline over one testbed and one backend."""

    def __init__(
        self,
        testbed: Testbed,
        database: PersistenceBackend,
        workspace: str | Path,
        modules: ModuleRegistry | None = None,
        phases: PhaseRegistry | None = None,
        observers: Sequence[PhaseObserver] = (),
        policies: Mapping[str, FailurePolicy] | None = None,
        default_policy: FailurePolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.testbed = testbed
        self.db = database
        self.workspace = Path(workspace)
        self.repository = KnowledgeRepository(database)
        self.io500_repository = IO500Repository(database)
        self.modules = modules or default_module_registry()
        self.phases = phases or default_phase_registry()
        self.observers = list(observers)
        self.policies = dict(policies or {})
        self.default_policy = default_policy
        self.sleep = sleep
        self.viewer = KnowledgeViewer()
        self.io500_viewer = IO500Viewer()

    def _context(self, jube_xml: str = "") -> CycleContext:
        return CycleContext(
            testbed=self.testbed,
            workspace=self.workspace,
            backend=self.db,
            repository=self.repository,
            io500_repository=self.io500_repository,
            modules=self.modules,
            viewer=self.viewer,
            io500_viewer=self.io500_viewer,
            jube_xml=jube_xml,
        )

    # ------------------------------------------------------------------
    # single phases, runnable on their own
    # ------------------------------------------------------------------
    def generate(self, jube_xml: str) -> JubeBenchmark:
        """Phase I: run a JUBE-defined benchmark campaign."""
        context = self._context(jube_xml)
        GenerationPhase().run(context)
        assert isinstance(context.benchmark, JubeBenchmark)
        return context.benchmark

    def extract(self, path: str | Path | None = None) -> list[Knowledge | IO500Knowledge]:
        """Phase II: extract knowledge from output files."""
        extractor = KnowledgeExtractor(jube_workspace=self.workspace)
        return extractor.extract(path)

    def persist(
        self, knowledge: Sequence[Knowledge | IO500Knowledge]
    ) -> tuple[list[int], list[int]]:
        """Phase III: store knowledge objects; returns (ids, IOFH ids)."""
        context = self._context()
        context.extracted = list(knowledge)
        PersistencePhase().run(context)
        return context.result.knowledge_ids, context.result.iofh_ids

    def analyze(self, knowledge: Sequence[Knowledge | IO500Knowledge]) -> str:
        """Phase IV: render the explorer views of the new knowledge."""
        context = self._context()
        context.extracted = list(knowledge)
        context.result.knowledge = [k for k in knowledge if isinstance(k, Knowledge)]
        context.result.io500_knowledge = [
            k for k in knowledge if isinstance(k, IO500Knowledge)
        ]
        AnalysisPhase().run(context)
        return context.result.analysis_report

    def use(self, knowledge: Sequence[Knowledge | IO500Knowledge]) -> dict[str, object]:
        """Phase V: run every registered use-case module."""
        return self.modules.run_all(knowledge)

    # ------------------------------------------------------------------
    # one full revolution through the pipeline
    # ------------------------------------------------------------------
    def run_cycle(self, jube_xml: str) -> CycleResult:
        """Run one revolution of whatever phases are registered.

        With a ``"skip"`` failure policy a failed revolution does not
        raise: the failure is quarantined in the returned
        :attr:`CycleResult.failures` and the next call runs normally.
        """
        pipeline = PhasePipeline(
            self.phases,
            self.observers,
            policies=self.policies,
            default_policy=self.default_policy,
            sleep=self.sleep,
        )
        return pipeline.run(self._context(jube_xml))


_DEFAULT_XML = """
<jube>
  <benchmark name="quick-cycle" outpath="bench_run">
    <parameterset name="pattern">
      <parameter name="transfersize">1m,2m</parameter>
      <parameter name="command">ior -a mpiio -b 4m -t $transfersize -s 8 -F -e -i 3 -o /scratch/cycle/test -k</parameter>
      <parameter name="nodes">2</parameter>
    </parameterset>
    <step name="run" work="ior">
      <use>pattern</use>
    </step>
  </benchmark>
</jube>
"""


def _select_modules(spec: str) -> ModuleRegistry:
    """Build a registry holding only the comma-separated module names."""
    full = default_module_registry()
    names = [name.strip() for name in spec.split(",") if name.strip()]
    if not names:
        raise UsageError(
            f"--modules needs at least one module name; available: {full.names()}"
        )
    unknown = sorted(set(names) - set(full.names()))
    if unknown:
        raise UsageError(
            f"unknown use-case module(s) {unknown}; available: {full.names()}"
        )
    selected = ModuleRegistry()
    for name in dict.fromkeys(names):  # preserve order, drop duplicates
        selected.register(full.get(name))
    return selected


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point: run revolutions of the knowledge cycle.

    Usage::

        repro-cycle [--config jube.xml] [--workspace DIR] [--db TARGET]
                    [--seed N] [--repeat N] [--modules a,b] [--timings]
                    [--retries N] [--phase-timeout S] [--on-failure skip|abort]
                    [--metrics-json PATH] [--inject-fault P]

    Without ``--config``, a small built-in IOR sweep demonstrates the
    cycle.  ``--retries`` arms per-phase retry with deterministic
    backoff (and wraps the database in a :class:`ResilientBackend`),
    ``--phase-timeout`` bounds each phase's wall time, and
    ``--on-failure=skip`` quarantines a failed revolution instead of
    aborting the run.  ``--metrics-json`` writes the run's metrics
    snapshot (phase outcomes, retry/breaker counters, persistence and
    I/O counters) as stable sorted JSON; ``--inject-fault P`` arms a
    deterministic transient benchmark fault with failure probability
    ``P`` — combined with ``--retries`` it exercises the whole
    resilience + observability path end to end.
    """
    import argparse

    from repro.core.metrics import MetricsObserver, MetricsRegistry, MetricsTracer
    from repro.core.persistence.backend import ResilientBackend
    from repro.core.persistence.database import KnowledgeDatabase
    from repro.core.pipeline import TimingObserver
    from repro.pfs.faults import Fault

    parser = argparse.ArgumentParser(
        prog="repro-cycle", description="Run the five-phase I/O knowledge cycle."
    )
    parser.add_argument("--config", default=None, help="JUBE XML configuration file")
    parser.add_argument("--workspace", default="bench_run", help="JUBE workspace directory")
    parser.add_argument("--db", default=":memory:", help="knowledge database path or URL")
    parser.add_argument("--seed", type=int, default=42, help="testbed seed")
    parser.add_argument("--repeat", type=int, default=1, help="number of revolutions")
    parser.add_argument(
        "--modules",
        default=None,
        help="comma-separated Phase-V use-case modules to run (default: all)",
    )
    parser.add_argument(
        "--timings", action="store_true", help="print per-phase wall times"
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retries per failed phase on transient errors (default: 0)",
    )
    parser.add_argument(
        "--phase-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-time budget per phase (default: unlimited)",
    )
    parser.add_argument(
        "--on-failure",
        choices=("skip", "abort"),
        default="abort",
        help="quarantine a failed revolution (skip) or abort the run (default)",
    )
    parser.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help="write the run's metrics snapshot as sorted JSON to PATH",
    )
    parser.add_argument(
        "--inject-fault",
        type=float,
        default=None,
        metavar="P",
        help="inject a deterministic transient benchmark fault with "
        "failure probability P in [0, 1]",
    )
    args = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    if args.phase_timeout is not None and args.phase_timeout <= 0:
        print("error: --phase-timeout must be positive", file=sys.stderr)
        return 2
    if args.inject_fault is not None and not 0.0 < args.inject_fault <= 1.0:
        print("error: --inject-fault must be in (0, 1]", file=sys.stderr)
        return 2
    try:
        modules = _select_modules(args.modules) if args.modules is not None else None
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        xml = (
            Path(args.config).read_text(encoding="utf-8")
            if args.config
            else _DEFAULT_XML
        )
    except OSError as exc:
        print(f"error: cannot read {args.config}: {exc}", file=sys.stderr)
        return 1
    timer = TimingObserver()
    metrics = MetricsRegistry() if args.metrics_json else None
    retry_policy = (
        RetryPolicy(max_attempts=args.retries + 1, base_delay_s=0.05, seed=args.seed)
        if args.retries > 0
        else None
    )
    default_policy = FailurePolicy(
        retry=retry_policy,
        on_exhausted=args.on_failure,
        timeout_s=args.phase_timeout,
    )
    observers: list[PhaseObserver] = [timer] if args.timings else []
    if metrics is not None:
        observers.append(MetricsObserver(metrics))
    try:
        with KnowledgeDatabase(args.db, metrics=metrics) as db:
            backend: PersistenceBackend = (
                ResilientBackend(db, metrics=metrics) if args.retries > 0 else db
            )
            testbed = Testbed.fuchs_csc(seed=args.seed)
            if metrics is not None:
                testbed.tracer = MetricsTracer(metrics)
            if args.inject_fault is not None:
                testbed.fs.faults.add(
                    Fault(
                        name="cli-injected",
                        fail_probability=args.inject_fault,
                        error_kind="benchmark",
                        when={"benchmark": "ior"},
                        transient=True,
                    )
                )
            cycle = KnowledgeCycle(
                testbed,
                backend,
                Path(args.workspace),
                modules=modules,
                observers=observers,
                default_policy=default_policy,
            )
            for revolution in range(args.repeat):
                timer.reset()
                result = cycle.run_cycle(xml)
                print(f"=== revolution {revolution + 1}/{args.repeat} ===")
                outcome = "quarantined" if result.failures else "ok"
                if metrics is not None:
                    metrics.counter(
                        "cycle.revolutions_total", "cycle revolutions run",
                        outcome=outcome,
                    ).inc()
                if result.failures:
                    for failure in result.failures:
                        print(f"[quarantined] {failure}", file=sys.stderr)
                    continue
                print(result.analysis_report)
                for name, value in result.usage_results.items():
                    print(f"[{name}] {value}")
                if args.timings:
                    for t in timer.timings:
                        print(f"[timing] {t.phase}: {t.duration_s:.3f}s "
                              f"({t.artifacts} artifact(s), "
                              f"{t.attempts} attempt(s))")
            if isinstance(backend, ResilientBackend):
                backend.flush()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if metrics is not None:
            try:
                metrics.write_json(args.metrics_json)
            except OSError as exc:
                print(f"error: cannot write {args.metrics_json}: {exc}", file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
