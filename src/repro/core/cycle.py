"""The I/O knowledge cycle — five-phase workflow orchestration (§III).

:class:`KnowledgeCycle` wires the phases together: **generation** runs
a JUBE benchmark on the testbed, **extraction** scans the resulting
workspace, **persistence** stores the knowledge objects in SQLite,
**analysis** builds the explorer views, and **usage** runs the
registered use-case modules.  "This iterative cyclic process is either
re-launched or terminated" — :meth:`run_cycle` executes one revolution
and can be called repeatedly, optionally with a configuration produced
by the previous revolution's usage phase.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.core.explorer.comparison import ComparisonView
from repro.core.explorer.io500_viewer import IO500Viewer
from repro.core.explorer.viewer import KnowledgeViewer
from repro.core.extraction.workspace import KnowledgeExtractor
from repro.core.knowledge import IO500Knowledge, Knowledge
from repro.core.persistence.database import KnowledgeDatabase
from repro.core.persistence.io500_repo import IO500Repository
from repro.core.persistence.repository import KnowledgeRepository
from repro.core.registry import ModuleRegistry, default_module_registry
from repro.iostack.stack import Testbed
from repro.jube.benchmark import JubeBenchmark
from repro.jube.steps import DEFAULT_WORK_REGISTRY
from repro.jube.xmlconfig import load_benchmark
from repro.util.errors import ReproError

__all__ = ["CycleResult", "KnowledgeCycle", "main"]


@dataclass(slots=True)
class CycleResult:
    """Everything one revolution of the cycle produced."""

    knowledge: list[Knowledge] = field(default_factory=list)
    io500_knowledge: list[IO500Knowledge] = field(default_factory=list)
    knowledge_ids: list[int] = field(default_factory=list)
    iofh_ids: list[int] = field(default_factory=list)
    usage_results: dict[str, object] = field(default_factory=dict)
    analysis_report: str = ""

    @property
    def all_knowledge(self) -> list[Knowledge | IO500Knowledge]:
        """Benchmark and IO500 knowledge together."""
        return [*self.knowledge, *self.io500_knowledge]


class KnowledgeCycle:
    """Orchestrates the five phases over one testbed and one database."""

    def __init__(
        self,
        testbed: Testbed,
        database: KnowledgeDatabase,
        workspace: str | Path,
        modules: ModuleRegistry | None = None,
    ) -> None:
        self.testbed = testbed
        self.db = database
        self.workspace = Path(workspace)
        self.repository = KnowledgeRepository(database)
        self.io500_repository = IO500Repository(database)
        self.modules = modules or default_module_registry()
        self.viewer = KnowledgeViewer()
        self.io500_viewer = IO500Viewer()

    # ------------------------------------------------------------------
    # the five phases
    # ------------------------------------------------------------------
    def generate(self, jube_xml: str) -> JubeBenchmark:
        """Phase I: run a JUBE-defined benchmark campaign."""
        benchmark, _ = load_benchmark(
            jube_xml,
            DEFAULT_WORK_REGISTRY,
            outpath=self.workspace,
            shared={"testbed": self.testbed},
        )
        benchmark.run()
        return benchmark

    def extract(self, path: str | Path | None = None) -> list[Knowledge | IO500Knowledge]:
        """Phase II: extract knowledge from output files."""
        extractor = KnowledgeExtractor(jube_workspace=self.workspace)
        return extractor.extract(path)

    def persist(
        self, knowledge: Sequence[Knowledge | IO500Knowledge]
    ) -> tuple[list[int], list[int]]:
        """Phase III: store knowledge objects; returns (ids, IOFH ids)."""
        ids, iofh_ids = [], []
        for k in knowledge:
            if isinstance(k, IO500Knowledge):
                iofh_ids.append(self.io500_repository.save(k))
            else:
                ids.append(self.repository.save(k))
        return ids, iofh_ids

    def analyze(self, knowledge: Sequence[Knowledge | IO500Knowledge]) -> str:
        """Phase IV: render the explorer views of the new knowledge."""
        sections = []
        benchmark_knowledge = [k for k in knowledge if isinstance(k, Knowledge)]
        for k in benchmark_knowledge:
            sections.append(self.viewer.render(k))
        if len(benchmark_knowledge) > 1:
            sections.append("Comparison:")
            sections.append(ComparisonView(benchmark_knowledge).table())
        for k in knowledge:
            if isinstance(k, IO500Knowledge):
                sections.append(self.io500_viewer.render(k))
        return "\n".join(sections)

    def use(self, knowledge: Sequence[Knowledge | IO500Knowledge]) -> dict[str, object]:
        """Phase V: run every registered use-case module."""
        return self.modules.run_all(knowledge)

    # ------------------------------------------------------------------
    # one full revolution
    # ------------------------------------------------------------------
    def run_cycle(self, jube_xml: str) -> CycleResult:
        """Run generation → extraction → persistence → analysis → usage."""
        benchmark = self.generate(jube_xml)
        extracted = self.extract(benchmark.run_dir)
        result = CycleResult(
            knowledge=[k for k in extracted if isinstance(k, Knowledge)],
            io500_knowledge=[k for k in extracted if isinstance(k, IO500Knowledge)],
        )
        result.knowledge_ids, result.iofh_ids = self.persist(extracted)
        result.analysis_report = self.analyze(extracted)
        result.usage_results = self.use(extracted)
        return result


_DEFAULT_XML = """
<jube>
  <benchmark name="quick-cycle" outpath="bench_run">
    <parameterset name="pattern">
      <parameter name="transfersize">1m,2m</parameter>
      <parameter name="command">ior -a mpiio -b 4m -t $transfersize -s 8 -F -e -i 3 -o /scratch/cycle/test -k</parameter>
      <parameter name="nodes">2</parameter>
    </parameterset>
    <step name="run" work="ior">
      <use>pattern</use>
    </step>
  </benchmark>
</jube>
"""


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point: run revolutions of the knowledge cycle.

    Usage::

        repro-cycle [--config jube.xml] [--workspace DIR] [--db TARGET]
                    [--seed N] [--repeat N]

    Without ``--config``, a small built-in IOR sweep demonstrates the
    cycle.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-cycle", description="Run the five-phase I/O knowledge cycle."
    )
    parser.add_argument("--config", default=None, help="JUBE XML configuration file")
    parser.add_argument("--workspace", default="bench_run", help="JUBE workspace directory")
    parser.add_argument("--db", default=":memory:", help="knowledge database path or URL")
    parser.add_argument("--seed", type=int, default=42, help="testbed seed")
    parser.add_argument("--repeat", type=int, default=1, help="number of revolutions")
    args = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    try:
        xml = (
            Path(args.config).read_text(encoding="utf-8")
            if args.config
            else _DEFAULT_XML
        )
    except OSError as exc:
        print(f"error: cannot read {args.config}: {exc}", file=sys.stderr)
        return 1
    try:
        with KnowledgeDatabase(args.db) as db:
            cycle = KnowledgeCycle(Testbed.fuchs_csc(seed=args.seed), db, Path(args.workspace))
            for revolution in range(args.repeat):
                result = cycle.run_cycle(xml)
                print(f"=== revolution {revolution + 1}/{args.repeat} ===")
                print(result.analysis_report)
                for name, value in result.usage_results.items():
                    print(f"[{name}] {value}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
