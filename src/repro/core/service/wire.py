"""``repro.wire/v1`` — the knowledge service's versioned frame codec.

One frame format carries every request and response on every hop of the
networked service: client → server over TCP, and server → shard-group
worker over its ``socketpair`` channels.  A frame is a fixed header
followed by a JSON body::

    +-------+---------+-----------+----------------------+
    | magic | version | body len  | body (UTF-8 JSON)    |
    | 4 B   | 1 B     | 4 B (BE)  | <= max_frame bytes   |
    +-------+---------+-----------+----------------------+

* ``magic`` is ``b"RPRO"`` — a connection speaking anything else is
  rejected on the first frame instead of being misparsed.
* ``version`` is the wire-protocol version (currently 1).  A peer
  seeing a version it does not speak answers with a typed
  ``version-mismatch`` error frame (in *its* version) and closes.
* ``body len`` is the byte length of the JSON body, capped at
  ``max_frame`` so a hostile or corrupt length prefix cannot make a
  worker allocate unbounded memory.

Request bodies are ``{"id", "op", "args"}``; responses are
``{"id", "ok": true, "result"}`` or ``{"id", "ok": false, "error":
{"code", "message", "retryable"}}``.  Error frames are *typed*: the
code names an exception class on the registry below, so a
:class:`~repro.util.errors.ServiceOverloadError` shed by a remote
worker re-raises as exactly that class in the client, with its
``transient`` flag carried across the wire.
"""

from __future__ import annotations

import json
import socket
import struct

from repro.util.errors import (
    ConfigurationError,
    DeadlineError,
    PersistenceError,
    ServiceError,
    ServiceOverloadError,
    ServiceTransportError,
    WireProtocolError,
    WorkerStartupError,
)

__all__ = [
    "PROTOCOL",
    "WIRE_VERSION",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "HEADER",
    "TruncatedFrameError",
    "WireVersionError",
    "encode_frame",
    "read_frame",
    "write_frame",
    "error_body",
    "error_code",
    "raise_wire_error",
]

#: Protocol name exchanged during ``hello`` negotiation.
PROTOCOL = "repro.wire/v1"

#: Wire-format version stamped into every frame header.
WIRE_VERSION = 1

#: First four bytes of every frame.
MAGIC = b"RPRO"

#: Default cap on a frame body — a corrupt length prefix must not turn
#: into an unbounded allocation inside a worker process.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Frame header: magic, version, body length (network byte order).
HEADER = struct.Struct("!4sBI")


class TruncatedFrameError(WireProtocolError):
    """The peer closed the connection in the middle of a frame."""


class WireVersionError(WireProtocolError):
    """The peer framed its request in a version this build cannot parse."""

    def __init__(self, message: str, *, version: int) -> None:
        super().__init__(message)
        self.version = version


# ----------------------------------------------------------------------
# typed error codes: exception class <-> wire code
# ----------------------------------------------------------------------
#: Most-specific-first: the first matching class names the frame code.
_ERROR_TO_CODE: tuple[tuple[type[BaseException], str], ...] = (
    (ServiceOverloadError, "overload"),
    (WorkerStartupError, "worker-startup"),
    (ServiceTransportError, "unavailable"),
    (WireProtocolError, "bad-request"),
    (DeadlineError, "deadline"),
    (ConfigurationError, "configuration"),
    (PersistenceError, "persistence"),
    (ServiceError, "service"),
)

#: Decode side of the registry, plus protocol-level codes a server can
#: emit without an exception instance behind them.
_CODE_TO_ERROR: dict[str, type[Exception]] = {
    "overload": ServiceOverloadError,
    "unavailable": ServiceTransportError,
    "quarantine": ServiceTransportError,
    "crash_loop": ServiceTransportError,
    "worker-startup": WorkerStartupError,
    "draining": ServiceTransportError,
    "deadline": DeadlineError,
    "configuration": ConfigurationError,
    "persistence": PersistenceError,
    "service": ServiceError,
    "unknown-op": ServiceError,
    "internal": ServiceError,
    "bad-request": WireProtocolError,
    "bad-frame": WireProtocolError,
    "frame-too-large": WireProtocolError,
    "version-mismatch": WireProtocolError,
}


def error_code(exc: BaseException) -> str:
    """The wire code of one exception (``wire_code`` attribute wins)."""
    explicit = getattr(exc, "wire_code", None)
    if isinstance(explicit, str) and explicit in _CODE_TO_ERROR:
        return explicit
    for cls, code in _ERROR_TO_CODE:
        if isinstance(exc, cls):
            return code
    return "internal"


def error_body(exc: BaseException) -> dict[str, object]:
    """The typed-error payload of a response frame.

    A positive ``retry_after_s`` attribute on the exception (the
    remaining breaker window of a quarantined worker, the crash-loop
    back-off of a demoted one) travels as a ``retry_after`` hint the
    client's backoff honors in place of its own schedule.
    """
    body: dict[str, object] = {
        "code": error_code(exc),
        "message": str(exc),
        "retryable": bool(getattr(exc, "transient", False)),
    }
    hint = getattr(exc, "retry_after_s", None)
    if isinstance(hint, (int, float)) and hint > 0:
        body["retry_after"] = round(float(hint), 6)
    return body


def raise_wire_error(error: dict[str, object]) -> None:
    """Re-raise a typed error frame as its registered exception class.

    The reconstructed exception carries the frame's ``retryable`` flag
    as its ``transient`` attribute (and any ``retry_after`` hint as
    ``retry_after_s``), so retry predicates and backoff behave the same
    whether the error was raised locally or a network away.
    """
    code = str(error.get("code", "internal"))
    message = str(error.get("message", "remote service error"))
    retryable = bool(error.get("retryable", False))
    cls = _CODE_TO_ERROR.get(code, ServiceError)
    if issubclass(cls, ServiceTransportError):
        exc: Exception = cls(f"[{code}] {message}", retryable=retryable)
    else:
        exc = cls(message)
        exc.transient = retryable  # type: ignore[attr-defined]
    exc.wire_code = code  # type: ignore[attr-defined]
    hint = error.get("retry_after")
    if isinstance(hint, (int, float)) and hint > 0:
        exc.retry_after_s = float(hint)  # type: ignore[attr-defined]
    raise exc


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(
    body: dict[str, object],
    *,
    version: int = WIRE_VERSION,
    max_frame: int = MAX_FRAME_BYTES,
) -> bytes:
    """Serialize one frame (header + JSON body) to bytes."""
    payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise WireProtocolError(
            f"frame body of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte frame cap; split the request "
            "(e.g. batch fewer objects per save_many/fetch_many)"
        )
    return HEADER.pack(MAGIC, version, len(payload)) + payload


def _read_exact(sock: socket.socket, n: int, *, first: bool) -> bytes | None:
    """Read exactly ``n`` bytes.

    Returns ``None`` on a clean EOF before the first byte (the peer
    closed between frames); raises :class:`TruncatedFrameError` on EOF
    mid-read.  Socket timeouts propagate as ``socket.timeout`` for the
    caller to classify (client: transport fault; server: idle poll).
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if first and not chunks:
                return None
            got = n - remaining
            raise TruncatedFrameError(
                f"peer closed mid-frame ({got}/{n} byte(s) read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket,
    *,
    max_frame: int = MAX_FRAME_BYTES,
    on_bytes=None,
) -> dict[str, object] | None:
    """Read one frame; ``None`` means the peer closed at a frame boundary.

    ``on_bytes(n)``, when given, is called with the frame's total size
    once it has been read — the hook the server's ``service.transport``
    byte counters hang off.
    """
    header = _read_exact(sock, HEADER.size, first=True)
    if header is None:
        return None
    magic, version, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise WireProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r}); "
            "is the peer speaking repro.wire at all?"
        )
    if version != WIRE_VERSION:
        raise WireVersionError(
            f"peer framed its request as wire version {version}; "
            f"this build speaks version {WIRE_VERSION} ({PROTOCOL})",
            version=version,
        )
    if length > max_frame:
        raise WireProtocolError(
            f"frame announces a {length}-byte body, over the "
            f"{max_frame}-byte cap; refusing to allocate"
        )
    body = _read_exact(sock, length, first=False)
    if on_bytes is not None:
        on_bytes(HEADER.size + length)
    try:
        decoded = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(decoded, dict):
        raise WireProtocolError(
            f"frame body must be a JSON object, got {type(decoded).__name__}"
        )
    return decoded


def write_frame(
    sock: socket.socket,
    body: dict[str, object],
    *,
    version: int = WIRE_VERSION,
    max_frame: int = MAX_FRAME_BYTES,
) -> int:
    """Encode and send one frame; returns the bytes written."""
    data = encode_frame(body, version=version, max_frame=max_frame)
    sock.sendall(data)
    return len(data)
