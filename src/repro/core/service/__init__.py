"""Knowledge service: concurrent, sharded, cache-fronted serving layer.

The serving story for the Phase-III knowledge base (§V-C "locally or
remotely"): a :class:`KnowledgeShardMap` partitions knowledge across
independent SQLite shards behind a discovery manifest, a
:class:`KnowledgeService` fronts them with a bounded queue, worker pool
and epoch-invalidated LRU cache, and a :class:`ServiceClient` gives the
explorer and usage modules the blocking repository-shaped API they
already speak — embedded through ``knowledge+service://`` URLs, or
across processes and hosts through ``knowledge+tcp://`` against a
:class:`KnowledgeServer` (``repro-serve --listen``) whose shard groups
run in separate worker processes speaking the versioned
``repro.wire/v1`` protocol.
"""

from repro.core.service.cache import EpochLRUCache
from repro.core.service.chaos import (
    ChaosPolicy,
    ChaosProxy,
    WorkerKiller,
    parse_chaos_spec,
)
from repro.core.service.client import (
    SERVICE_URL_SCHEME,
    TCP_URL_SCHEME,
    ServiceClient,
    is_service_url,
    is_tcp_url,
    open_service,
    parse_service_url,
    parse_tcp_url,
)
from repro.core.service.ops import LocalTransport, ServiceDispatcher
from repro.core.service.server import (
    CrashLoopedHandle,
    KnowledgeServer,
    WorkerSupervisor,
)
from repro.core.service.service import KnowledgeService
from repro.core.service.shard import (
    MAX_SHARDS,
    KnowledgeShard,
    KnowledgeShardMap,
    decode_knowledge_id,
    encode_knowledge_id,
    shard_index_for_key,
    shard_key,
)
from repro.core.service.transport import TcpTransport
from repro.core.service.wire import MAX_FRAME_BYTES, PROTOCOL, WIRE_VERSION

__all__ = [
    "MAX_FRAME_BYTES",
    "MAX_SHARDS",
    "PROTOCOL",
    "SERVICE_URL_SCHEME",
    "TCP_URL_SCHEME",
    "WIRE_VERSION",
    "ChaosPolicy",
    "ChaosProxy",
    "CrashLoopedHandle",
    "EpochLRUCache",
    "KnowledgeServer",
    "KnowledgeShard",
    "KnowledgeShardMap",
    "KnowledgeService",
    "LocalTransport",
    "ServiceClient",
    "ServiceDispatcher",
    "TcpTransport",
    "WorkerKiller",
    "WorkerSupervisor",
    "decode_knowledge_id",
    "encode_knowledge_id",
    "is_service_url",
    "is_tcp_url",
    "open_service",
    "parse_chaos_spec",
    "parse_service_url",
    "parse_tcp_url",
    "shard_index_for_key",
    "shard_key",
]
