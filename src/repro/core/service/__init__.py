"""Knowledge service: concurrent, sharded, cache-fronted serving layer.

The serving story for the Phase-III knowledge base (§V-C "locally or
remotely"): a :class:`KnowledgeShardMap` partitions knowledge across
independent SQLite shards behind a discovery manifest, a
:class:`KnowledgeService` fronts them with a bounded queue, worker pool
and epoch-invalidated LRU cache, and a :class:`ServiceClient` gives the
explorer and usage modules the blocking repository-shaped API they
already speak — reachable through ``knowledge+service://`` URLs and
the ``repro-serve`` console tool.
"""

from repro.core.service.cache import EpochLRUCache
from repro.core.service.client import (
    SERVICE_URL_SCHEME,
    ServiceClient,
    is_service_url,
    open_service,
    parse_service_url,
)
from repro.core.service.service import KnowledgeService
from repro.core.service.shard import (
    MAX_SHARDS,
    KnowledgeShard,
    KnowledgeShardMap,
    decode_knowledge_id,
    encode_knowledge_id,
    shard_key,
)

__all__ = [
    "MAX_SHARDS",
    "SERVICE_URL_SCHEME",
    "EpochLRUCache",
    "KnowledgeShard",
    "KnowledgeShardMap",
    "KnowledgeService",
    "ServiceClient",
    "decode_knowledge_id",
    "encode_knowledge_id",
    "is_service_url",
    "open_service",
    "parse_service_url",
    "shard_key",
]
