"""``repro-serve`` — run, administer and exercise a knowledge store.

Operator console for the sharded knowledge service, in three modes::

    # embedded administration (no daemon)
    repro-serve /var/lib/repro/store --shards 4
    repro-serve /var/lib/repro/store --ingest runs.json --warm-up
    repro-serve 'knowledge+service:///var/lib/repro/store?cache=256' --list
    repro-serve /var/lib/repro/store --rebalance 8
    repro-serve /var/lib/repro/store --exercise 200 --metrics-json m.json

    # networked server: shard groups in separate worker processes
    repro-serve /var/lib/repro/store --listen 0.0.0.0:9477 --worker-processes 4

    # remote administration of a running server
    repro-serve 'knowledge+tcp://db-node:9477/' --list
    repro-serve 'knowledge+tcp://db-node:9477/' --ingest runs.json --exercise 200
    repro-serve --health 'knowledge+tcp://db-node:9477/'

``--listen`` promotes the store to a TCP server speaking the versioned
``repro.wire/v1`` protocol; clients reach it through
``knowledge+tcp://host:port/`` URLs.  SIGTERM (or Ctrl-C) drains
gracefully: in-flight requests finish, new ones get typed ``draining``
errors, and every shard-group worker flushes its shards before exit.

A listening server is *supervised* by default: a shard-group worker
that dies or wedges is respawned with the same shard set under a
restart budget (``--crash-loop-threshold`` demotes a flapping group to
permanent quarantine); ``--no-supervise`` restores the PR 6 behavior.
``--chaos SPEC`` puts a seeded fault-injecting proxy in front of the
server (frame corruption, truncation, disconnects, scheduled worker
kills) for reproducible resilience drills, and ``--health URL`` asks a
running server for per-worker pid/breaker/respawn state.

``--exercise`` drives deterministic round-robin read traffic through
the client (same ids, same order every run) — a quick way to check the
cache and queue behave before pointing real load at the store.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import Sequence

from repro.core.knowledge import Knowledge
from repro.core.metrics import MetricsRegistry
from repro.core.persistence.transfer import import_json
from repro.core.service.client import (
    ServiceClient,
    is_service_url,
    is_tcp_url,
    open_service,
    parse_service_url,
)
from repro.core.service.chaos import ChaosProxy, WorkerKiller, parse_chaos_spec
from repro.core.service.server import KnowledgeServer
from repro.util.errors import ReproError, ServiceError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro-serve argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Run or administer a sharded knowledge-service store.",
    )
    parser.add_argument(
        "store", nargs="?", default=None,
        help="store root directory, knowledge+service:// URL, or "
             "knowledge+tcp:// URL of a running server "
             "(optional with --health)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="shard count when creating a new store (default 2; "
             "existing stores are discovered from their manifest)",
    )
    parser.add_argument("--workers", type=int, default=4, help="worker threads")
    parser.add_argument("--queue", type=int, default=64, help="request-queue bound")
    parser.add_argument("--cache", type=int, default=128, help="result-cache capacity")
    parser.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="serve the store over TCP (repro.wire/v1); port 0 picks a free port",
    )
    parser.add_argument(
        "--worker-processes", type=int, default=2, metavar="N",
        help="shard-group worker processes behind --listen (default 2, "
             "capped at the shard count)",
    )
    parser.add_argument(
        "--channels", type=int, default=2, metavar="N",
        help="wire channels per worker process behind --listen (default 2)",
    )
    parser.add_argument(
        "--no-supervise", action="store_true",
        help="disable the worker supervisor behind --listen (a dead "
             "shard-group worker stays quarantined instead of respawning)",
    )
    parser.add_argument(
        "--startup-deadline", type=float, default=15.0, metavar="S",
        help="seconds a (re)spawned worker gets to finish its hello "
             "handshake before it is killed and retried (default 15)",
    )
    parser.add_argument(
        "--crash-loop-threshold", type=int, default=5, metavar="N",
        help="respawn attempts within the crash-loop window before a "
             "flapping shard group is permanently quarantined (default 5)",
    )
    parser.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="put a seeded fault-injecting proxy in front of --listen; "
             "SPEC is comma-separated key=value, e.g. "
             "'seed=7,corrupt=0.01,disconnect=0.005,kill_every=200'",
    )
    parser.add_argument(
        "--health", default=None, metavar="URL",
        help="print per-worker health of a running server "
             "(knowledge+tcp:// URL) and exit 0 iff it is healthy",
    )
    parser.add_argument(
        "--ingest", action="append", default=[], metavar="JSON",
        help="import knowledge from a repro-knowledge JSON file (repeatable)",
    )
    parser.add_argument(
        "--warm-up", action="store_true", help="preload the result cache"
    )
    parser.add_argument(
        "--list", action="store_true", help="print the shard manifest and counts"
    )
    parser.add_argument(
        "--rebalance", type=int, default=None, metavar="N",
        help="repartition the store across N shards (store must be idle)",
    )
    parser.add_argument(
        "--exercise", type=int, default=None, metavar="N",
        help="drive N deterministic read requests through the client",
    )
    parser.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write the service metrics snapshot to PATH on exit",
    )
    return parser


def _ingest(client: ServiceClient, paths: list[str]) -> tuple[int, int]:
    saved = skipped = 0
    for path in paths:
        entries = import_json(path)
        knowledge = [k for k in entries if isinstance(k, Knowledge)]
        skipped += len(entries) - len(knowledge)
        if knowledge:
            client.save_many(knowledge)
            saved += len(knowledge)
    return saved, skipped


def _exercise(client: ServiceClient, requests: int) -> None:
    ids = client.list_ids()
    if not ids:
        print("exercise: store is empty, nothing to read")
        return
    for i in range(requests):
        client.load(ids[i % len(ids)])
    stats = client.stats()
    print(
        f"exercise: {requests} read(s) over {len(ids)} object(s); "
        f"cache hit rate {stats['cache_hit_rate']:.2%} "
        f"({stats['cache_hits']} hit(s), {stats['cache_misses']} miss(es))"
    )


def _parse_listen(listen: str) -> tuple[str, int]:
    host, colon, port_text = listen.rpartition(":")
    if not colon or not host:
        raise ServiceError(
            f"--listen wants HOST:PORT, got {listen!r} "
            "(use 127.0.0.1:0 for an ephemeral local port)"
        )
    try:
        return host, int(port_text)
    except ValueError:
        raise ServiceError(f"--listen port {port_text!r} is not an integer") from None


def _run_server(args: argparse.Namespace, metrics: MetricsRegistry) -> int:
    if is_tcp_url(args.store):
        raise ServiceError(
            "--listen serves a local store; point it at a store directory "
            "or knowledge+service:// URL, not a running server's URL"
        )
    root = args.store
    shards = args.shards
    if is_service_url(args.store):
        root, options = parse_service_url(args.store)
        shards = options.get("shards", shards)
    host, port = _parse_listen(args.listen)
    server = KnowledgeServer(
        root, host=host, port=port, shards=shards,
        worker_processes=args.worker_processes,
        channels_per_worker=args.channels,
        worker_threads=args.workers, queue_size=args.queue,
        cache_size=args.cache, metrics=metrics,
        supervise=not args.no_supervise,
        startup_deadline_s=args.startup_deadline,
        crash_loop_threshold=args.crash_loop_threshold,
    )
    proxy = None
    if args.chaos is not None:
        policy = parse_chaos_spec(args.chaos)
        killer = (
            WorkerKiller(server, every_frames=policy.kill_every, metrics=metrics)
            if policy.kill_every > 0 else None
        )
        proxy = ChaosProxy(
            server.host, server.port, policy,
            host=server.host, metrics=metrics, killer=killer,
        ).start()

    def _drain(signum, frame):  # noqa: ARG001 - signal handler signature
        server.initiate_drain()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    print(
        f"repro-serve: listening on knowledge+tcp://{server.host}:{server.port}/ "
        f"({server.num_shards} shard(s) in {len(server.workers)} worker "
        "process(es)); SIGTERM drains",
        flush=True,
    )
    if proxy is not None:
        print(
            f"repro-serve: chaos proxy on knowledge+tcp://{proxy.host}:"
            f"{proxy.port}/ (spec {args.chaos!r}) — point clients here",
            flush=True,
        )
    try:
        server.serve_forever()
    finally:
        if proxy is not None:
            proxy.close()
    bad = [code for code in server.worker_returncodes if code != 0]
    print(
        "repro-serve: drained; worker exit codes "
        f"{server.worker_returncodes}",
        flush=True,
    )
    return 1 if bad else 0


def _print_health(url: str, metrics: MetricsRegistry) -> int:
    """Print a running server's per-worker health; exit 0 iff healthy."""
    if not is_tcp_url(url):
        raise ServiceError(
            f"--health wants a knowledge+tcp:// URL of a running server, "
            f"got {url!r}"
        )
    with ServiceClient.open(url, metrics=metrics) as client:
        health = client.health()
    supervised = "supervised" if health.get("supervised") else "unsupervised"
    print(
        f"server {url} is {health.get('status', '?')} "
        f"({health.get('shards', '?')} shard(s), {supervised})"
    )
    for info in health.get("workers", []):  # type: ignore[union-attr]
        heal = info.get("last_heal_s_ago")
        print(
            f"  worker {info.get('worker')}  pid={info.get('pid')}  "
            f"alive={info.get('alive')}  breaker={info.get('breaker')}  "
            f"shards={info.get('shards')}  respawns={info.get('respawns', 0)}"
            + (f"  last_heal={heal:g}s ago" if heal is not None else "")
        )
    return 0 if health.get("status") == "healthy" else 1


def _remote_summary(client: ServiceClient) -> None:
    stats = client.stats()
    rows = stats.get("rows_per_shard", {})
    print(f"server: {client.transport.host}:{client.transport.port} "  # type: ignore[union-attr]
          f"({stats.get('worker_processes', '?')} worker process(es))")
    for index in sorted(rows, key=int):
        print(f"  shard {int(index):>3}  {rows[index]} object(s)")
    total = sum(int(n) for n in rows.values())
    print(f"total: {total} object(s) in {stats['shards']} shard(s)")


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(list(sys.argv[1:] if argv is None else argv))
    metrics = MetricsRegistry()
    try:
        if args.health is not None:
            return _print_health(args.health, metrics)
        if args.store is None:
            print("error: a store argument is required unless --health URL "
                  "is used", file=sys.stderr)
            return 2
        if args.chaos is not None and args.listen is None:
            print("error: --chaos only applies to a --listen server",
                  file=sys.stderr)
            return 2
        if args.listen is not None:
            return _run_server(args, metrics)
        if is_tcp_url(args.store):
            if args.rebalance is not None or args.warm_up:
                print("error: --rebalance/--warm-up need direct store access, "
                      "not a knowledge+tcp:// URL", file=sys.stderr)
                return 2
            with ServiceClient.open(args.store, metrics=metrics) as client:
                if args.ingest:
                    saved, skipped = _ingest(client, args.ingest)
                    print(f"ingested {saved} knowledge object(s)"
                          + (f" ({skipped} non-benchmark entr(ies) skipped)"
                             if skipped else ""))
                if args.exercise is not None:
                    _exercise(client, args.exercise)
                if args.list or not (args.ingest or args.exercise is not None):
                    _remote_summary(client)
            return 0
        if args.rebalance is not None and is_service_url(args.store):
            print("error: --rebalance takes a plain store directory, not a URL",
                  file=sys.stderr)
            return 2
        service = open_service(
            args.store, metrics=metrics, shards=args.shards,
            workers=args.workers, queue=args.queue, cache=args.cache,
        )
        with ServiceClient(service) as client:
            if args.ingest:
                saved, skipped = _ingest(client, args.ingest)
                print(f"ingested {saved} knowledge object(s)"
                      + (f" ({skipped} non-benchmark entr(ies) skipped)" if skipped else ""))
            if args.rebalance is not None:
                moved = service.shard_map.rebalance(args.rebalance)
                service.cache.clear()
                print(f"rebalanced {moved} object(s) across {args.rebalance} shard(s)")
            if args.warm_up:
                warmed = service.warm_up()
                print(f"warmed {warmed} object(s) into the cache")
            if args.exercise is not None:
                _exercise(client, args.exercise)
            if args.list or not (
                args.ingest or args.warm_up or args.exercise is not None
                or args.rebalance is not None
            ):
                print(f"store: {service.shard_map.root}")
                print(f"key space: {service.shard_map.key_space}")
                counts = service.shard_map.counts()
                for row, n in zip(service.shard_map.manifest(), counts):
                    print(f"  shard {row['shard_index']:>3}  {row['path']:<16} "
                          f"{n} object(s)")
                print(f"total: {sum(counts)} object(s) in "
                      f"{service.shard_map.num_shards} shard(s)")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        # Parity with repro-cycle: the snapshot is written even when an
        # --exercise/--ingest run fails, so the metrics survive for
        # post-mortem analysis.
        if args.metrics_json:
            try:
                metrics.write_json(args.metrics_json)
                print(f"metrics snapshot written to {args.metrics_json}")
            except OSError as exc:
                print(f"error: cannot write {args.metrics_json}: {exc}",
                      file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
