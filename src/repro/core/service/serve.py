"""``repro-serve`` — administer and exercise a sharded knowledge store.

The knowledge service is *embeddable* (there is no network daemon in
this prototype — §V-C's "remote" store is a URL away); this CLI is its
operator console::

    repro-serve /var/lib/repro/store --shards 4
    repro-serve /var/lib/repro/store --ingest runs.json --warm-up
    repro-serve 'knowledge+service:///var/lib/repro/store?cache=256' --list
    repro-serve /var/lib/repro/store --rebalance 8
    repro-serve /var/lib/repro/store --exercise 200 --metrics-json m.json

``--exercise`` drives deterministic round-robin read traffic through
the client (same ids, same order every run) — a quick way to check the
cache and queue behave before pointing real load at the store.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.knowledge import Knowledge
from repro.core.metrics import MetricsRegistry
from repro.core.persistence.transfer import import_json
from repro.core.service.client import ServiceClient, is_service_url, open_service
from repro.util.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro-serve argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Administer a sharded knowledge-service store.",
    )
    parser.add_argument(
        "store",
        help="store root directory or knowledge+service:// URL",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="shard count when creating a new store (default 2; "
             "existing stores are discovered from their manifest)",
    )
    parser.add_argument("--workers", type=int, default=4, help="worker threads")
    parser.add_argument("--queue", type=int, default=64, help="request-queue bound")
    parser.add_argument("--cache", type=int, default=128, help="result-cache capacity")
    parser.add_argument(
        "--ingest", action="append", default=[], metavar="JSON",
        help="import knowledge from a repro-knowledge JSON file (repeatable)",
    )
    parser.add_argument(
        "--warm-up", action="store_true", help="preload the result cache"
    )
    parser.add_argument(
        "--list", action="store_true", help="print the shard manifest and counts"
    )
    parser.add_argument(
        "--rebalance", type=int, default=None, metavar="N",
        help="repartition the store across N shards (store must be idle)",
    )
    parser.add_argument(
        "--exercise", type=int, default=None, metavar="N",
        help="drive N deterministic read requests through the client",
    )
    parser.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write the service metrics snapshot to PATH on exit",
    )
    return parser


def _ingest(client: ServiceClient, paths: list[str]) -> tuple[int, int]:
    saved = skipped = 0
    for path in paths:
        entries = import_json(path)
        knowledge = [k for k in entries if isinstance(k, Knowledge)]
        skipped += len(entries) - len(knowledge)
        if knowledge:
            client.save_many(knowledge)
            saved += len(knowledge)
    return saved, skipped


def _exercise(client: ServiceClient, requests: int) -> None:
    ids = client.list_ids()
    if not ids:
        print("exercise: store is empty, nothing to read")
        return
    for i in range(requests):
        client.load(ids[i % len(ids)])
    stats = client.service.stats()
    print(
        f"exercise: {requests} read(s) over {len(ids)} object(s); "
        f"cache hit rate {stats['cache_hit_rate']:.2%} "
        f"({stats['cache_hits']} hit(s), {stats['cache_misses']} miss(es))"
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(list(sys.argv[1:] if argv is None else argv))
    metrics = MetricsRegistry()
    try:
        if args.rebalance is not None and is_service_url(args.store):
            print("error: --rebalance takes a plain store directory, not a URL",
                  file=sys.stderr)
            return 2
        service = open_service(
            args.store, metrics=metrics, shards=args.shards,
            workers=args.workers, queue=args.queue, cache=args.cache,
        )
        with ServiceClient(service) as client:
            if args.ingest:
                saved, skipped = _ingest(client, args.ingest)
                print(f"ingested {saved} knowledge object(s)"
                      + (f" ({skipped} non-benchmark entr(ies) skipped)" if skipped else ""))
            if args.rebalance is not None:
                moved = service.shard_map.rebalance(args.rebalance)
                service.cache.clear()
                print(f"rebalanced {moved} object(s) across {args.rebalance} shard(s)")
            if args.warm_up:
                warmed = service.warm_up()
                print(f"warmed {warmed} object(s) into the cache")
            if args.exercise is not None:
                _exercise(client, args.exercise)
            if args.list or not (
                args.ingest or args.warm_up or args.exercise is not None
                or args.rebalance is not None
            ):
                print(f"store: {service.shard_map.root}")
                print(f"key space: {service.shard_map.key_space}")
                counts = service.shard_map.counts()
                for row, n in zip(service.shard_map.manifest(), counts):
                    print(f"  shard {row['shard_index']:>3}  {row['path']:<16} "
                          f"{n} object(s)")
                print(f"total: {sum(counts)} object(s) in "
                      f"{service.shard_map.num_shards} shard(s)")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        # Parity with repro-cycle: the snapshot is written even when an
        # --exercise/--ingest run fails, so the metrics survive for
        # post-mortem analysis.
        if args.metrics_json:
            try:
                metrics.write_json(args.metrics_json)
                print(f"metrics snapshot written to {args.metrics_json}")
            except OSError as exc:
                print(f"error: cannot write {args.metrics_json}: {exc}",
                      file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
