"""Deterministic wire-level chaos injection for the knowledge server.

Self-healing that is only exercised by real crashes is self-healing
that is never exercised.  This module makes process and network faults
*injectable, seeded and reproducible*, in the same spirit as
:mod:`repro.pfs.faults`: every fault decision is a draw from a named
:func:`repro.util.rng.stream`, keyed **positionally** by
``(seed, "chaos", kind, connection, direction, frame)`` — not by wall
time and not by a shared counter — so the schedule of injected faults
for a given seed and traffic pattern is identical across runs and
across thread interleavings.

Three pieces:

* :class:`ChaosPolicy` — the knobs (per-frame fault probabilities, a
  worker-kill cadence, the seed), parseable from a compact
  ``repro-serve --chaos "seed=7,corrupt=0.01,kill_every=200"`` spec.
* :class:`ChaosProxy` — a TCP proxy that sits between clients and a
  :class:`~repro.core.service.server.KnowledgeServer`, parses
  ``repro.wire`` frame boundaries, and injects frame delay, mid-frame
  disconnect, byte corruption, truncation and connection refusal.
  Every injected fault is appended to :attr:`ChaosProxy.injected` (the
  reproducible schedule) and counted under
  ``service.chaos.faults_total{kind}``.
* :class:`WorkerKiller` — SIGKILLs a live shard-group worker every
  ``kill_every`` proxied frames, round-robin, which is exactly the
  fault the :class:`~repro.core.service.server.WorkerSupervisor` must
  heal.

The proxy injects at the *byte* level, beneath the client's codec — a
corrupted frame exercises the server's typed ``bad-frame`` answer, a
truncation exercises the client's short-read classification, and a
kill exercises supervised respawn, all without patching either end.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.service.wire import HEADER, MAGIC
from repro.util.errors import ConfigurationError
from repro.util.rng import stream

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.metrics import MetricsRegistry
    from repro.core.service.server import KnowledgeServer

__all__ = [
    "ChaosPolicy",
    "parse_chaos_spec",
    "ChaosProxy",
    "WorkerKiller",
]

#: Frames larger than this are treated as a non-wire byte stream and
#: passed through verbatim (the proxy must not allocate unboundedly on
#: a corrupt or hostile length prefix any more than the server would).
_PASSTHROUGH_LIMIT = 64 * 1024 * 1024


@dataclass(frozen=True, slots=True)
class ChaosPolicy:
    """Seeded fault probabilities for one chaos run.

    All probabilities are per-frame (``refuse`` is per-connection) and
    drawn independently; ``corrupt`` and ``delay`` can both fire on the
    same frame, while ``disconnect`` and ``truncate`` terminate it.
    ``kill_every > 0`` SIGKILLs a worker every that many proxied frames.
    """

    seed: int = 42
    refuse: float = 0.0  # P(connection refused at accept)
    disconnect: float = 0.0  # P(drop the connection instead of the frame)
    truncate: float = 0.0  # P(forward a partial frame, then close)
    corrupt: float = 0.0  # P(flip one body byte)
    delay: float = 0.0  # P(stall the frame)
    delay_ms: float = 50.0  # max stall per delayed frame
    kill_every: int = 0  # SIGKILL a worker every N proxied frames

    def __post_init__(self) -> None:
        for name in ("refuse", "disconnect", "truncate", "corrupt", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(
                    f"chaos probability {name!r} must be in [0, 1], got {p}"
                )
        if self.delay_ms < 0:
            raise ConfigurationError(
                f"chaos delay_ms must be >= 0, got {self.delay_ms}"
            )
        if self.kill_every < 0:
            raise ConfigurationError(
                f"chaos kill_every must be >= 0, got {self.kill_every}"
            )

    @property
    def any_wire_faults(self) -> bool:
        """Whether any per-frame/per-connection fault can fire."""
        return any(
            getattr(self, name) > 0.0
            for name in ("refuse", "disconnect", "truncate", "corrupt", "delay")
        )

    def _draw(self, kind: str, *key: object):
        """The deterministic stream for one fault decision."""
        return stream(self.seed, "chaos", kind, *key)


_SPEC_FIELDS = {
    "seed": int,
    "refuse": float,
    "disconnect": float,
    "truncate": float,
    "corrupt": float,
    "delay": float,
    "delay_ms": float,
    "kill_every": int,
}


def parse_chaos_spec(spec: str) -> ChaosPolicy:
    """Parse ``"seed=7,corrupt=0.01,kill_every=200"`` into a policy."""
    values: dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        key = key.strip()
        if not sep or key not in _SPEC_FIELDS:
            raise ConfigurationError(
                f"bad chaos spec element {part!r}; known keys: "
                f"{', '.join(sorted(_SPEC_FIELDS))}"
            )
        try:
            values[key] = _SPEC_FIELDS[key](raw.strip())
        except ValueError as exc:
            raise ConfigurationError(
                f"bad chaos spec value for {key!r}: {raw.strip()!r}"
            ) from exc
    return ChaosPolicy(**values)  # type: ignore[arg-type]


class WorkerKiller:
    """Scheduled SIGKILL of shard-group workers, by proxied-frame count.

    ``on_frame(total)`` is called by the proxy after every forwarded
    frame; each time the total crosses a multiple of ``every_frames``
    the next live worker (round-robin) is killed.  Counting frames
    instead of seconds keeps the kill schedule a function of traffic,
    not wall time, so a seeded soak kills at the same points in the
    request stream every run.

    ``server`` is duck-typed: anything exposing a ``workers`` list of
    slots with ``.process``/``.alive`` works — the knowledge server's
    shard-group workers and the campaign fleet's launcher slots both
    do, so one killer drives both SIGKILL matrices.  ``metric_name``
    routes the fault count to the owning subsystem's metric family.
    """

    def __init__(
        self,
        server: "KnowledgeServer",
        *,
        every_frames: int,
        metrics: "MetricsRegistry | None" = None,
        metric_name: str = "service.chaos.faults_total",
    ) -> None:
        if every_frames < 1:
            raise ConfigurationError(
                f"every_frames must be >= 1, got {every_frames}"
            )
        self.server = server
        self.every_frames = every_frames
        self.metrics = metrics
        self.metric_name = metric_name
        self.kills = 0
        self._next_at = every_frames
        self._rr = 0
        self._lock = threading.Lock()

    def on_frame(self, total_frames: int) -> None:
        """Kill the next live worker when the cadence comes due."""
        with self._lock:
            if total_frames < self._next_at:
                return
            self._next_at += self.every_frames
            workers = self.server.workers
            for offset in range(len(workers)):
                worker = workers[(self._rr + offset) % len(workers)]
                if worker.process is not None and worker.alive:
                    worker.process.kill()
                    self._rr = (self._rr + offset + 1) % len(workers)
                    self.kills += 1
                    if self.metrics is not None:
                        self.metrics.counter(
                            self.metric_name,
                            "chaos faults injected by kind",
                            kind="worker-kill",
                        ).inc()
                    return


class ChaosProxy:
    """A frame-aware TCP proxy injecting seeded faults on the wire.

    Sits on its own ``host:port`` and forwards to ``upstream``.  Each
    accepted connection gets a connection index; each direction
    (``c2s``/``s2c``) counts its own frames; fault draws are keyed by
    those positions, so the injected schedule is independent of thread
    timing.  :attr:`injected` accumulates
    ``(kind, connection, direction, frame)`` tuples in draw order per
    connection — compare two seeded runs' sorted schedules for
    byte-for-byte reproducibility.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        policy: ChaosPolicy,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: "MetricsRegistry | None" = None,
        killer: WorkerKiller | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.policy = policy
        self.metrics = metrics
        self.killer = killer
        self._sleep = sleep
        self.injected: list[tuple[str, int, str, int]] = []
        self._frames_total = 0
        self._lock = threading.Lock()
        self._conn_ids = itertools.count()
        self._stopping = False
        self._accept_thread: threading.Thread | None = None
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ChaosProxy":
        """Begin accepting and proxying (idempotent)."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-chaos-proxy", daemon=True
            )
            self._accept_thread.start()
        return self

    def close(self) -> None:
        """Stop accepting; in-flight pumps die with their sockets."""
        self._stopping = True
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- bookkeeping ---------------------------------------------------
    def _record(self, kind: str, conn: int, direction: str, frame: int) -> None:
        with self._lock:
            self.injected.append((kind, conn, direction, frame))
        if self.metrics is not None:
            self.metrics.counter(
                "service.chaos.faults_total",
                "chaos faults injected by kind",
                kind=kind,
            ).inc()

    def _count_frame(self) -> int:
        with self._lock:
            self._frames_total += 1
            return self._frames_total

    # -- proxying ------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            conn_index = next(self._conn_ids)
            threading.Thread(
                target=self._handle, args=(conn, conn_index), daemon=True
            ).start()

    def _handle(self, conn: socket.socket, conn_index: int) -> None:
        p = self.policy
        if p.refuse > 0 and p._draw("refuse", conn_index).random() < p.refuse:
            self._record("refuse", conn_index, "accept", 0)
            self._close(conn)
            return
        try:
            upstream = socket.create_connection(self.upstream, timeout=10.0)
        except OSError:
            self._close(conn)
            return
        done = threading.Event()
        for src, dst, direction in (
            (conn, upstream, "c2s"),
            (upstream, conn, "s2c"),
        ):
            threading.Thread(
                target=self._pump,
                args=(src, dst, conn_index, direction, done),
                daemon=True,
            ).start()

    def _pump(
        self,
        src: socket.socket,
        dst: socket.socket,
        conn_index: int,
        direction: str,
        done: threading.Event,
    ) -> None:
        """Forward frames one way, injecting faults at frame boundaries."""
        frame_index = 0
        try:
            while not done.is_set():
                header = self._read_exact(src, HEADER.size)
                if header is None:
                    return
                if len(header) < HEADER.size or header[:4] != MAGIC:
                    # Not a wire frame (or a mid-stream desync): forward
                    # what we have and fall back to a dumb byte pipe.
                    dst.sendall(header)
                    self._raw_pipe(src, dst, done)
                    return
                _magic, _version, length = HEADER.unpack(header)
                if length > _PASSTHROUGH_LIMIT:
                    dst.sendall(header)
                    self._raw_pipe(src, dst, done)
                    return
                body = self._read_exact(src, length) if length else b""
                if body is None or len(body) < length:
                    dst.sendall(header + (body or b""))
                    return
                if not self._forward(
                    dst, header, body, conn_index, direction, frame_index
                ):
                    return
                frame_index += 1
                if self.killer is not None:
                    self.killer.on_frame(self._count_frame())
                else:
                    self._count_frame()
        except OSError:
            return
        finally:
            done.set()
            self._close(src)
            self._close(dst)

    def _forward(
        self,
        dst: socket.socket,
        header: bytes,
        body: bytes,
        conn: int,
        direction: str,
        frame: int,
    ) -> bool:
        """Apply fault draws to one frame; False ends the connection."""
        p = self.policy
        if (
            p.disconnect > 0
            and p._draw("disconnect", conn, direction, frame).random()
            < p.disconnect
        ):
            # Drop the connection without forwarding the frame at all —
            # the peer sees a clean close or a reset between frames.
            self._record("disconnect", conn, direction, frame)
            return False
        if (
            p.truncate > 0
            and p._draw("truncate", conn, direction, frame).random() < p.truncate
        ):
            # Forward the header plus a prefix of the body, then hang
            # up mid-frame: the receiver's _read_exact sees a short
            # read and raises TruncatedFrameError.
            draw = p._draw("truncate-cut", conn, direction, frame)
            cut = int(draw.random() * max(1, len(body)))
            self._record("truncate", conn, direction, frame)
            try:
                dst.sendall(header + body[:cut])
            except OSError:
                pass
            return False
        if (
            p.corrupt > 0
            and body
            and p._draw("corrupt", conn, direction, frame).random() < p.corrupt
        ):
            draw = p._draw("corrupt-byte", conn, direction, frame)
            position = int(draw.random() * len(body))
            flip = 1 + int(draw.random() * 255)
            corrupted = bytearray(body)
            corrupted[position] ^= flip
            body = bytes(corrupted)
            self._record("corrupt", conn, direction, frame)
        if (
            p.delay > 0
            and p._draw("delay", conn, direction, frame).random() < p.delay
        ):
            draw = p._draw("delay-ms", conn, direction, frame)
            self._record("delay", conn, direction, frame)
            self._sleep(draw.random() * self.policy.delay_ms / 1000.0)
        dst.sendall(header + body)
        return True

    def _raw_pipe(
        self, src: socket.socket, dst: socket.socket, done: threading.Event
    ) -> None:
        """Fault-free byte forwarding for non-wire traffic."""
        while not done.is_set():
            chunk = src.recv(65536)
            if not chunk:
                return
            dst.sendall(chunk)

    @staticmethod
    def _read_exact(sock: socket.socket, n: int) -> bytes | None:
        """Read ``n`` bytes; None on immediate EOF, short bytes on mid-EOF."""
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                if not chunks:
                    return None
                break
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    @staticmethod
    def _close(sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:
            pass
