"""Transport-neutral request/response model for the service operations.

The knowledge service's operations (``save``/``load``/``fetch_many``/
``find_by_parameter``/``count``/…) are defined here as *payloads*: a
JSON-safe argument dict on the way in, a JSON-safe result dict on the
way out, with :mod:`repro.core.persistence.transfer` carrying knowledge
objects across.  Both transports speak exactly this model:

* :class:`LocalTransport` — the ``knowledge+service://`` in-process
  path: payloads are decoded straight into a
  :class:`~repro.core.service.service.KnowledgeService` ``submit``.
* the TCP path — payloads travel inside :mod:`repro.core.service.wire`
  frames to a ``repro-serve --listen`` server and on to its shard-group
  worker processes.

Because the in-process client round-trips through the same codec, a URL
flip from ``knowledge+service://`` to ``knowledge+tcp://`` changes the
transport and nothing else — the paper's §V-C "local or remote" choice,
kept honest by construction.
"""

from __future__ import annotations

from concurrent.futures import TimeoutError as _FutureTimeoutError
from typing import TYPE_CHECKING, Sequence

from repro.core.persistence.scan import ScanQuery
from repro.core.persistence.transfer import knowledge_from_dict, knowledge_to_dict
from repro.core.service.wire import PROTOCOL, WireProtocolError
from repro.util.errors import DeadlineError, ServiceError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.knowledge import Knowledge
    from repro.core.service.service import KnowledgeService

__all__ = [
    "SERVICE_OPS",
    "MUTATING_OPS",
    "encode_args",
    "decode_args",
    "encode_result",
    "decode_result",
    "ServiceDispatcher",
    "LocalTransport",
]

#: Every operation a transport may carry (``hello`` is negotiated at
#: the connection layer, not dispatched).
SERVICE_OPS = frozenset(
    {
        "save", "save_many", "delete",
        "load", "load_all", "fetch_many", "list_ids",
        "find_by_parameter", "count", "exists", "scan",
        "stats", "ping", "health",
    }
)

#: Operations whose retry after a mid-flight transport fault could
#: double-apply a write (the server may have committed already).
MUTATING_OPS = frozenset({"save", "save_many", "delete"})


def _pack_knowledge(knowledge: "Knowledge") -> dict[str, object]:
    return {"data": knowledge_to_dict(knowledge), "id": knowledge.knowledge_id}


def _unpack_knowledge(obj: dict[str, object]) -> "Knowledge":
    knowledge = knowledge_from_dict(obj["data"])  # type: ignore[arg-type]
    raw_id = obj.get("id")
    knowledge.knowledge_id = int(raw_id) if raw_id is not None else None
    return knowledge


def _check_op(op: str) -> None:
    if op not in SERVICE_OPS:
        raise ServiceError(
            f"unknown service operation {op!r}; known: {sorted(SERVICE_OPS)}"
        )


# ----------------------------------------------------------------------
# argument payloads
# ----------------------------------------------------------------------
def encode_args(op: str, args: Sequence[object]) -> dict[str, object]:
    """Encode one operation's positional arguments as a JSON-safe dict."""
    _check_op(op)
    if op == "save":
        return {"knowledge": _pack_knowledge(args[0])}  # type: ignore[arg-type]
    if op == "save_many":
        return {"objects": [_pack_knowledge(k) for k in args[0]]}  # type: ignore[union-attr]
    if op in ("load", "delete", "exists"):
        return {"id": int(args[0])}  # type: ignore[arg-type]
    if op == "fetch_many":
        return {"ids": [int(i) for i in args[0]]}  # type: ignore[union-attr]
    if op in ("load_all", "list_ids", "count"):
        benchmark = args[0] if args else None
        return {"benchmark": None if benchmark is None else str(benchmark)}
    if op == "find_by_parameter":
        return {"key": str(args[0]), "value": str(args[1])}
    if op == "scan":
        return {"query": args[0].to_payload()}  # type: ignore[attr-defined]
    return {}  # stats / ping


def decode_args(op: str, payload: dict[str, object]) -> tuple:
    """Decode an argument payload back into ``submit``-shaped positionals."""
    _check_op(op)
    if op == "save":
        return (_unpack_knowledge(payload["knowledge"]),)  # type: ignore[arg-type]
    if op == "save_many":
        return ([_unpack_knowledge(o) for o in payload["objects"]],)  # type: ignore[union-attr]
    if op in ("load", "delete", "exists"):
        return (int(payload["id"]),)  # type: ignore[arg-type]
    if op == "fetch_many":
        return ([int(i) for i in payload["ids"]],)  # type: ignore[union-attr]
    if op in ("load_all", "list_ids", "count"):
        benchmark = payload.get("benchmark")
        return (None if benchmark is None else str(benchmark),)
    if op == "find_by_parameter":
        return (str(payload["key"]), str(payload["value"]))
    if op == "scan":
        return (ScanQuery.from_payload(payload["query"]),)  # type: ignore[arg-type]
    return ()  # stats / ping


# ----------------------------------------------------------------------
# result payloads
# ----------------------------------------------------------------------
def encode_result(op: str, result: object) -> dict[str, object]:
    """Encode one operation's return value as a JSON-safe dict."""
    _check_op(op)
    if op == "save":
        return {"id": int(result)}  # type: ignore[arg-type]
    if op in ("save_many", "list_ids", "find_by_parameter"):
        return {"ids": [int(i) for i in result]}  # type: ignore[union-attr]
    if op == "load":
        return {"knowledge": _pack_knowledge(result)}  # type: ignore[arg-type]
    if op in ("load_all", "fetch_many"):
        return {"objects": [_pack_knowledge(k) for k in result]}  # type: ignore[union-attr]
    if op == "count":
        return {"count": int(result)}  # type: ignore[arg-type]
    if op == "exists":
        return {"exists": bool(result)}
    if op == "stats":
        return {"stats": dict(result)}  # type: ignore[arg-type]
    if op == "health":
        return {"health": dict(result)}  # type: ignore[arg-type]
    if op == "scan":
        # Mergeable partial-aggregate states, not finalized values: the
        # router merges worker partials, the client finalizes.
        return {"partials": dict(result)}  # type: ignore[arg-type]
    return {}  # delete / ping


def decode_result(op: str, payload: dict[str, object]) -> object:
    """Decode a result payload back into the blocking-API return value."""
    _check_op(op)
    if op == "save":
        return int(payload["id"])  # type: ignore[arg-type]
    if op in ("save_many", "list_ids", "find_by_parameter"):
        return [int(i) for i in payload["ids"]]  # type: ignore[union-attr]
    if op == "load":
        return _unpack_knowledge(payload["knowledge"])  # type: ignore[arg-type]
    if op in ("load_all", "fetch_many"):
        return [_unpack_knowledge(o) for o in payload["objects"]]  # type: ignore[union-attr]
    if op == "count":
        return int(payload["count"])  # type: ignore[arg-type]
    if op == "exists":
        return bool(payload["exists"])
    if op == "stats":
        return dict(payload["stats"])  # type: ignore[arg-type]
    if op == "health":
        return dict(payload["health"])  # type: ignore[arg-type]
    if op == "scan":
        return dict(payload["partials"])  # type: ignore[arg-type]
    return None  # delete / ping


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
class ServiceDispatcher:
    """Execute decoded wire requests against one :class:`KnowledgeService`.

    The single choke point between "bytes from a peer" and the service:
    argument payloads are validated here, so a malformed request becomes
    a typed ``bad-request`` error frame instead of an arbitrary
    exception (or a dead worker process).
    """

    def __init__(self, service: "KnowledgeService") -> None:
        self.service = service

    def call(
        self, op: str, payload: dict[str, object], *, timeout_s: float | None = None
    ) -> dict[str, object]:
        """Run one operation payload-to-payload; raises typed errors."""
        if op == "ping":
            return {}
        if op == "stats":
            return {"stats": self.service.stats()}
        if op == "health":
            # The embedded service has no worker processes or
            # supervisor — healthy as long as it answers at all.
            return {
                "health": {
                    "status": "healthy",
                    "shards": self.service.shard_map.num_shards,
                    "supervised": False,
                    "workers": [],
                }
            }
        try:
            args = decode_args(op, payload)
        except ServiceError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            error = WireProtocolError(
                f"malformed arguments for operation {op!r}: {exc}"
            )
            error.wire_code = "bad-request"  # type: ignore[attr-defined]
            raise error from exc
        future = self.service.submit(op, *args)
        try:
            result = future.result(timeout=timeout_s)
        except _FutureTimeoutError:
            future.cancel()
            raise DeadlineError(
                f"service request {op!r} exceeded its "
                f"{timeout_s:g}s client deadline"
            ) from None
        return encode_result(op, result)


class LocalTransport:
    """The in-process transport: same codec, no socket.

    Wraps an embedded :class:`KnowledgeService` behind the transport
    interface (``call``/``close``/``server_info``) so
    :class:`~repro.core.service.client.ServiceClient` runs one code
    path for ``knowledge+service://`` and ``knowledge+tcp://``.
    Exceptions propagate natively (no error-frame round trip): the
    classes and ``transient`` flags are identical to what the wire
    codec would reconstruct, with full local detail preserved.
    """

    def __init__(self, service: "KnowledgeService") -> None:
        self.service = service
        self.dispatcher = ServiceDispatcher(service)
        self.metrics = service.metrics

    @property
    def server_info(self) -> dict[str, object]:
        """What a remote ``hello`` would have negotiated."""
        return {
            "protocol": PROTOCOL,
            "transport": "local",
            "shards": self.service.shard_map.num_shards,
        }

    def call(
        self, op: str, payload: dict[str, object], *, timeout_s: float | None = None
    ) -> dict[str, object]:
        """Run one operation against the embedded service."""
        return self.dispatcher.call(op, payload, timeout_s=timeout_s)

    def close(self) -> None:
        """Close the embedded service (and its shards)."""
        self.service.close()
