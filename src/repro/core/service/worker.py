"""Shard-group worker process: ``python -m repro.core.service.worker``.

The networked knowledge server (:mod:`repro.core.service.server`) does
not touch SQLite itself — it routes.  Each *worker process* owns a
disjoint group of shards and runs a full, embedded
:class:`~repro.core.service.service.KnowledgeService` over them:
admission control, per-shard breaker quarantine and the epoch-
invalidated LRU cache all live here as per-worker state, and SQLite
writes to different shard groups no longer contend on one GIL.

The parent hands the worker one or more ``socketpair`` channel file
descriptors on the command line (``--fds``); each channel speaks the
same ``repro.wire/v1`` frames as the public TCP port, one in-flight
request per channel.  The worker answers *every* failure — malformed
payload, unknown op, shed request, wedged shard — with a typed error
frame; nothing a peer sends can kill the process.  EOF on all channels
(the parent closed them: graceful drain) flushes the shards and exits 0.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading

from repro.core.metrics import MetricsRegistry
from repro.core.service.ops import ServiceDispatcher
from repro.core.service.service import KnowledgeService
from repro.core.service.shard import KnowledgeShardMap
from repro.core.service.wire import (
    MAX_FRAME_BYTES,
    PROTOCOL,
    TruncatedFrameError,
    WireProtocolError,
    error_body,
    read_frame,
    write_frame,
)

__all__ = ["serve_channel", "main"]


def _hello_result(service: KnowledgeService) -> dict[str, object]:
    return {
        "protocol": PROTOCOL,
        "transport": "worker",
        "shards": service.shard_map.num_shards,
        "owned_shards": list(service.owned_shards),
        # The supervisor/health op reports the pid the *worker* claims,
        # which catches a handle pointing at a stale process.
        "pid": os.getpid(),
    }


def serve_channel(
    sock: socket.socket,
    dispatcher: ServiceDispatcher,
    *,
    max_frame: int = MAX_FRAME_BYTES,
) -> None:
    """Answer ``repro.wire/v1`` requests on one channel until EOF.

    Every per-request failure becomes a typed error frame; only a dead
    or protocol-violating channel ends the loop (and then only this
    channel — the worker process itself keeps serving its siblings).
    """
    while True:
        try:
            request = read_frame(sock, max_frame=max_frame)
        except TruncatedFrameError:
            return  # peer died mid-frame; nothing sane to answer
        except WireProtocolError as exc:
            # Corrupt framing: after this frame the stream offset is
            # unknowable, so answer once (best effort) and hang up.
            try:
                write_frame(sock, {"id": None, "ok": False, "error": error_body(exc)})
            except OSError:
                pass
            return
        except OSError:
            return
        if request is None:
            return  # clean EOF: the parent is draining us
        request_id = request.get("id")
        op = str(request.get("op", ""))
        args = request.get("args")
        try:
            if op == "hello":
                result: dict[str, object] = _hello_result(dispatcher.service)
            else:
                payload = args if isinstance(args, dict) else {}
                result = dispatcher.call(op, payload)
        except Exception as exc:  # noqa: BLE001 - typed error frame, never die
            response = {"id": request_id, "ok": False, "error": error_body(exc)}
        else:
            response = {"id": request_id, "ok": True, "result": result}
        try:
            write_frame(sock, response, max_frame=max_frame)
        except (OSError, WireProtocolError):
            return


def main(argv: list[str] | None = None) -> int:
    """Entry point for one shard-group worker process."""
    parser = argparse.ArgumentParser(
        prog="repro-service-worker",
        description="shard-group worker for the networked knowledge service",
    )
    parser.add_argument("--store", required=True, help="knowledge store root")
    parser.add_argument(
        "--shards", required=True,
        help="comma-separated shard indices this worker owns (e.g. 0,2)",
    )
    parser.add_argument(
        "--fds", required=True,
        help="comma-separated channel socket file descriptors",
    )
    parser.add_argument("--threads", type=int, default=2, help="service worker threads")
    parser.add_argument("--queue", type=int, default=64, help="admission queue size")
    parser.add_argument("--cache", type=int, default=128, help="LRU cache entries")
    parser.add_argument(
        "--max-frame", type=int, default=MAX_FRAME_BYTES, help="frame body cap (bytes)"
    )
    options = parser.parse_args(argv)

    # The parent coordinates shutdown by closing the channels; a Ctrl-C
    # aimed at the server's process group must not kill workers first.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)

    owned = [int(i) for i in options.shards.split(",") if i != ""]
    fds = [int(fd) for fd in options.fds.split(",") if fd != ""]
    channels = [socket.socket(fileno=fd) for fd in fds]

    metrics = MetricsRegistry()
    shard_map = KnowledgeShardMap(options.store, metrics=metrics)
    service = KnowledgeService(
        shard_map,
        workers=options.threads,
        queue_size=options.queue,
        cache_size=options.cache,
        metrics=metrics,
        owned_shards=owned,
    )
    dispatcher = ServiceDispatcher(service)
    threads = [
        threading.Thread(
            target=serve_channel,
            args=(channel, dispatcher),
            kwargs={"max_frame": options.max_frame},
            name=f"worker-channel-{fd}",
        )
        for fd, channel in zip(fds, channels)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for channel in channels:
        try:
            channel.close()
        except OSError:
            pass
    service.close()  # flush degraded-mode buffers, close every shard
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
