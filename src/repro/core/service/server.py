"""The networked knowledge server behind ``repro-serve --listen``.

Three pieces, one wire protocol:

* :class:`WorkerHandle` — one shard-group worker *process* (spawned as
  ``python -m repro.core.service.worker`` with ``socketpair`` channels
  passed by fd).  The parent talks to it in ``repro.wire/v1`` frames,
  one in-flight request per channel, and guards it with a circuit
  breaker: a worker that stops answering is quarantined, and requests
  for its shards fail fast with a typed ``quarantine`` error instead of
  piling onto a dead process.
* :class:`ShardRouter` — routes each operation to the worker(s) owning
  the shards it touches.  Placement reuses the store's deterministic
  key hash, global-id decoding names the shard directly, and the
  multi-shard operations (``save_many``/``fetch_many``/``list_ids``/
  ``count``/``find_by_parameter``/``load_all``/``stats``) are split per
  worker and merged back in the exact order the embedded service would
  have produced.
* :class:`KnowledgeServer` — the TCP front end: accepts connections,
  answers ``hello`` protocol negotiation, hardens against malformed
  frames (typed error frame or clean close — never a crashed thread),
  counts every connection/frame/byte under ``service.transport.*``, and
  drains gracefully: stop accepting, finish in-flight requests, answer
  ``draining`` to new ones, then close the worker channels so each
  worker flushes its shards and exits 0.

SQLite never runs in this process — the server routes, the workers own
the shards, and writes to different shard groups proceed on different
GILs.  That is the ROADMAP's "service split" step: the same knowledge
store, reachable from another process or host via ``knowledge+tcp://``.
"""

from __future__ import annotations

import itertools
import os
import queue
import select
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

import repro
from repro.core.persistence.scan import merge_partial_payloads
from repro.core.resilience import CircuitBreaker, Deadline, RetryPolicy
from repro.core.supervise import SupervisedSlot
from repro.core.service.ops import MUTATING_OPS, SERVICE_OPS
from repro.core.service.shard import (
    KnowledgeShardMap,
    decode_knowledge_id,
    shard_index_for_key,
)
from repro.core.service.wire import (
    MAX_FRAME_BYTES,
    PROTOCOL,
    TruncatedFrameError,
    WireProtocolError,
    WireVersionError,
    error_body,
    raise_wire_error,
    read_frame,
    write_frame,
)
from repro.util.errors import (
    PersistenceError,
    ServiceError,
    ServiceTransportError,
    WorkerStartupError,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.metrics import MetricsRegistry

__all__ = [
    "WorkerHandle",
    "CrashLoopedHandle",
    "ShardRouter",
    "WorkerSupervisor",
    "KnowledgeServer",
]


def _typed(exc: Exception, code: str) -> Exception:
    """Stamp an explicit wire code onto one exception instance."""
    exc.wire_code = code  # type: ignore[attr-defined]
    return exc


class WorkerHandle:
    """The parent-side handle of one shard-group worker process."""

    def __init__(
        self,
        index: int,
        owned_shards: Sequence[int],
        process: subprocess.Popen,
        channels: Sequence[socket.socket],
        *,
        breaker: CircuitBreaker,
        max_frame: int = MAX_FRAME_BYTES,
        request_timeout_s: float = 30.0,
    ) -> None:
        self.index = index
        self.owned_shards = tuple(owned_shards)
        self.process = process
        self.breaker = breaker
        self.max_frame = max_frame
        self.request_timeout_s = request_timeout_s
        self.channel_count = len(channels)
        self._pool: "queue.Queue[socket.socket]" = queue.Queue()
        self._all_channels = list(channels)
        for channel in channels:
            self._pool.put(channel)
        self._seq = itertools.count(1)

    def call(
        self, op: str, payload: dict[str, object], *, timeout_s: float | None = None
    ) -> dict[str, object]:
        """One wire round-trip to the worker; raises typed errors.

        Transport faults (dead channel, short read, timeout) trip the
        breaker and surface as :class:`ServiceTransportError` — marked
        non-retryable for mutating ops, whose effect on the worker is
        unknowable once the request left this process.  Typed error
        frames from the worker re-raise as their registered classes.
        ``timeout_s`` overrides the handle's default per-request
        timeout (the supervisor uses a short one for startup and heal
        probes).
        """
        effective = self.request_timeout_s if timeout_s is None else timeout_s
        if not self.breaker.allow():
            exc = ServiceTransportError(
                f"shard-group worker {self.index} "
                f"(shards {list(self.owned_shards)}) is quarantined by its "
                "circuit breaker; its shards are unavailable until it heals",
                retryable=True,
            )
            exc.retry_after_s = self.breaker.retry_after_s
            raise _typed(exc, "quarantine")
        channel = self._checkout_channel(effective)
        request_id = next(self._seq)
        try:
            channel.settimeout(effective)
            write_frame(
                channel,
                {"id": request_id, "op": op, "args": payload},
                max_frame=self.max_frame,
            )
            response = read_frame(channel, max_frame=self.max_frame)
        except (OSError, WireProtocolError) as exc:
            self.breaker.record_failure()
            self._discard(channel)
            raise ServiceTransportError(
                f"channel to shard-group worker {self.index} failed during "
                f"{op!r}: {exc}",
                retryable=op not in MUTATING_OPS,
            ) from exc
        if response is None or response.get("id") != request_id:
            self.breaker.record_failure()
            self._discard(channel)
            detail = (
                "closed its channel" if response is None else "answered out of sequence"
            )
            raise ServiceTransportError(
                f"shard-group worker {self.index} {detail} during {op!r}",
                retryable=op not in MUTATING_OPS,
            )
        self._pool.put(channel)
        self.breaker.record_success()
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        error = response.get("error")
        raise_wire_error(error if isinstance(error, dict) else {})
        raise AssertionError("raise_wire_error always raises")  # pragma: no cover

    def _checkout_channel(self, timeout_s: float) -> socket.socket:
        """Claim a free channel, failing *fast* once the process is gone.

        A SIGKILL'd worker EOFs the channels in flight, but requests
        queued behind them would otherwise sit in the (now permanently
        empty) pool for the full request timeout.  Waiting in short
        slices and re-checking process liveness bounds that stall —
        and thereby the server's time-to-heal — to one slice.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            if self.process.poll() is not None:
                self.breaker.record_failure()
                raise _typed(
                    ServiceTransportError(
                        f"shard-group worker {self.index} (shards "
                        f"{list(self.owned_shards)}) exited with code "
                        f"{self.process.returncode}; its shards are "
                        "unavailable until the supervisor respawns it",
                        retryable=True,
                    ),
                    "unavailable",
                ) from None
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.breaker.record_failure()
                raise _typed(
                    ServiceTransportError(
                        f"no free channel to shard-group worker {self.index} "
                        f"within {timeout_s:g}s",
                        retryable=True,
                    ),
                    "unavailable",
                ) from None
            try:
                return self._pool.get(timeout=min(0.25, remaining))
            except queue.Empty:
                continue

    def _discard(self, channel: socket.socket) -> None:
        try:
            channel.close()
        except OSError:
            pass
        if channel in self._all_channels:
            self._all_channels.remove(channel)

    def handshake(self, *, deadline_s: float | None = None) -> None:
        """Verify every channel answers ``hello`` (worker readiness).

        With a ``deadline_s`` the whole handshake must finish inside
        that startup budget: a worker that hangs during spawn raises a
        typed :class:`WorkerStartupError` instead of blocking the
        server's boot (or the supervisor's respawn) indefinitely.
        """
        deadline = Deadline(deadline_s) if deadline_s is not None else None
        for _ in range(self.channel_count):  # FIFO pool: each call rotates
            timeout: float | None = None
            if deadline is not None:
                remaining = deadline.remaining_s
                if remaining <= 0:
                    raise WorkerStartupError(
                        f"shard-group worker {self.index} (shards "
                        f"{list(self.owned_shards)}) did not finish its startup "
                        f"handshake within {deadline_s:g}s"
                    )
                timeout = min(self.request_timeout_s, remaining)
            try:
                self.call("hello", {}, timeout_s=timeout)
            except WorkerStartupError:
                raise
            except (ServiceError, OSError) as exc:
                raise WorkerStartupError(
                    f"shard-group worker {self.index} (shards "
                    f"{list(self.owned_shards)}) failed its startup handshake: "
                    f"{exc}"
                ) from exc

    @property
    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self.process.poll() is None

    def close_channels(self) -> None:
        """EOF every channel: the worker flushes its shards and exits."""
        while True:
            try:
                self._pool.get_nowait()
            except queue.Empty:
                break
        for channel in list(self._all_channels):
            self._discard(channel)

    def reap(self, *, timeout_s: float = 5.0) -> None:
        """Kill the worker process (if needed) and collect its exit.

        Safe on an already-dead process; the supervisor calls this
        before respawning so a wedged worker cannot linger as a zombie
        holding its SQLite file handles.
        """
        self.close_channels()
        if self.process.poll() is None:
            self.process.kill()
        try:
            self.process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
            pass


class CrashLoopedHandle:
    """The tombstone of a shard group demoted to permanent quarantine.

    When the supervisor's crash-loop detector gives up on a flapping
    worker, this handle takes its slot: every call answers a typed
    ``crash_loop`` error carrying a ``retry_after`` hint, so clients
    back off for the hinted window instead of hammering shards that
    will not come back without operator intervention.
    """

    process = None

    def __init__(
        self, index: int, owned_shards: Sequence[int], *, retry_after_s: float
    ) -> None:
        self.index = index
        self.owned_shards = tuple(owned_shards)
        self.retry_after_s = retry_after_s

    @property
    def alive(self) -> bool:
        """A crash-looped group has no process — never alive."""
        return False

    def call(
        self, op: str, payload: dict[str, object], *, timeout_s: float | None = None
    ) -> dict[str, object]:
        """Every operation fails fast with the typed crash-loop error."""
        exc = ServiceTransportError(
            f"shard-group worker {self.index} (shards "
            f"{list(self.owned_shards)}) is in a crash loop and permanently "
            "quarantined; its shards stay dark until an operator restarts "
            "the server",
            retryable=True,
        )
        exc.retry_after_s = self.retry_after_s
        raise _typed(exc, "crash_loop")

    def handshake(self, *, deadline_s: float | None = None) -> None:
        """Crash-looped groups never hand-shake again."""
        self.call("hello", {})

    def close_channels(self) -> None:
        """Nothing to close — the last process was reaped at demotion."""

    def reap(self, *, timeout_s: float = 5.0) -> None:
        """Nothing to reap."""


class ShardRouter:
    """Route wire operations to the shard-group workers that own them.

    Worker handles are *replaceable*: the supervisor swaps a dead
    group's handle for its respawned successor (or a
    :class:`CrashLoopedHandle`) via :meth:`replace` while connection
    threads keep routing — reads take a consistent snapshot under the
    same lock.
    """

    def __init__(self, workers: Sequence[WorkerHandle], num_shards: int) -> None:
        self.workers = list(workers)
        self.num_shards = num_shards
        self._replace_lock = threading.Lock()
        self._owner: dict[int, WorkerHandle] = {}
        for worker in self.workers:
            for shard in worker.owned_shards:
                self._owner[shard] = worker

    def replace(self, index: int, worker: "WorkerHandle | CrashLoopedHandle") -> None:
        """Atomically swap the handle serving one shard group."""
        with self._replace_lock:
            self.workers[index] = worker  # type: ignore[assignment]
            for shard in worker.owned_shards:
                self._owner[shard] = worker  # type: ignore[assignment]

    def _snapshot(self) -> "list[WorkerHandle]":
        with self._replace_lock:
            return list(self.workers)

    # -- placement -----------------------------------------------------
    def _worker_of_shard(self, index: int) -> WorkerHandle:
        if not 0 <= index < self.num_shards:
            raise PersistenceError(
                f"shard {index} outside the store's {self.num_shards} shard(s)"
            )
        return self._owner[index]

    def _shard_of_id(self, global_id: int) -> int:
        _, index = decode_knowledge_id(int(global_id))
        if index >= self.num_shards:
            raise PersistenceError(
                f"knowledge id {global_id} names shard {index} but the store "
                f"has only {self.num_shards} shard(s)"
            )
        return index

    def _placement(self, packed: dict[str, object]) -> int:
        data = packed["data"]  # type: ignore[index]
        system = data.get("system") or {}  # type: ignore[union-attr]
        hostname = system.get("hostname") or "" if isinstance(system, dict) else ""
        return shard_index_for_key(f"{data['benchmark']}/{hostname}", self.num_shards)

    # -- dispatch ------------------------------------------------------
    def call(self, op: str, payload: dict[str, object]) -> dict[str, object]:
        """Route one operation payload; returns its result payload."""
        try:
            return self._route(op, payload)
        except (KeyError, TypeError, ValueError, AttributeError, IndexError) as exc:
            raise _typed(
                WireProtocolError(f"malformed arguments for operation {op!r}: {exc}"),
                "bad-request",
            ) from exc

    def _route(self, op: str, payload: dict[str, object]) -> dict[str, object]:
        if op == "ping":
            return {}
        if op == "stats":
            return {"stats": self._merged_stats()}
        if op not in SERVICE_OPS:
            raise _typed(
                ServiceError(
                    f"unknown service operation {op!r}; known: {sorted(SERVICE_OPS)}"
                ),
                "unknown-op",
            )
        if op == "save":
            owner = self._worker_of_shard(self._placement(payload["knowledge"]))  # type: ignore[arg-type]
            return owner.call("save", payload)
        if op == "save_many":
            return self._save_many(payload)
        if op == "fetch_many":
            return self._fetch_many(payload)
        if op in ("load", "delete"):
            owner = self._worker_of_shard(self._shard_of_id(payload["id"]))  # type: ignore[arg-type]
            return owner.call(op, payload)
        if op == "exists":
            try:
                index = self._shard_of_id(payload["id"])  # type: ignore[arg-type]
            except (ServiceError, PersistenceError):
                return {"exists": False}
            return self._worker_of_shard(index).call("exists", payload)
        if op in ("list_ids", "find_by_parameter"):
            ids: list[int] = []
            for worker in self._snapshot():
                ids.extend(worker.call(op, payload)["ids"])  # type: ignore[arg-type]
            ids.sort()
            return {"ids": ids}
        if op == "count":
            return {
                "count": sum(
                    int(worker.call("count", payload)["count"])  # type: ignore[arg-type]
                    for worker in self._snapshot()
                )
            }
        if op == "scan":
            # Each shard-group worker answers with mergeable partial
            # aggregate states for its shards; the group-wise merge is
            # associative, so router-then-client merging equals the
            # embedded single-service evaluation.
            return {
                "partials": merge_partial_payloads(
                    worker.call("scan", payload)["partials"]  # type: ignore[arg-type]
                    for worker in self._snapshot()
                )
            }
        # load_all: every worker returns its owned objects, merged in
        # global-id order — exactly the embedded service's ordering.
        objects: list[dict[str, object]] = []
        for worker in self._snapshot():
            objects.extend(worker.call("load_all", payload)["objects"])  # type: ignore[arg-type]
        objects.sort(key=lambda obj: int(obj["id"]))  # type: ignore[arg-type]
        return {"objects": objects}

    def _save_many(self, payload: dict[str, object]) -> dict[str, object]:
        objects = payload["objects"]  # type: ignore[index]
        if not objects:
            return {"ids": []}
        by_worker: dict[int, tuple[WorkerHandle, list[tuple[int, object]]]] = {}
        for position, packed in enumerate(objects):  # type: ignore[arg-type]
            worker = self._worker_of_shard(self._placement(packed))
            by_worker.setdefault(worker.index, (worker, []))[1].append(
                (position, packed)
            )
        ids: list[int] = [0] * len(objects)  # type: ignore[arg-type]
        for worker, group in (by_worker[i] for i in sorted(by_worker)):
            result = worker.call("save_many", {"objects": [o for _, o in group]})
            for (position, _), global_id in zip(group, result["ids"]):  # type: ignore[arg-type]
                ids[position] = int(global_id)
        return {"ids": ids}

    def _fetch_many(self, payload: dict[str, object]) -> dict[str, object]:
        wanted = [int(i) for i in payload["ids"]]  # type: ignore[union-attr]
        by_worker: dict[int, tuple[WorkerHandle, list[int]]] = {}
        for global_id in dict.fromkeys(wanted):
            worker = self._worker_of_shard(self._shard_of_id(global_id))
            by_worker.setdefault(worker.index, (worker, []))[1].append(global_id)
        fetched: dict[int, object] = {}
        for worker, group in (by_worker[i] for i in sorted(by_worker)):
            result = worker.call("fetch_many", {"ids": group})
            for global_id, packed in zip(group, result["objects"]):  # type: ignore[arg-type]
                fetched[global_id] = packed
        return {"objects": [fetched[i] for i in wanted]}

    def _merged_stats(self) -> dict[str, object]:
        workers = self._snapshot()
        merged: dict[str, object] = {
            "shards": self.num_shards,
            "worker_processes": len(workers),
            "shard_groups": [list(w.owned_shards) for w in workers],
            "workers": 0,
            "queue_depth": 0,
            "queue_size": 0,
            "cache_entries": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_evictions_stale": 0,
            "cache_evictions_capacity": 0,
            "epochs": [0] * self.num_shards,
            "rows_per_shard": {},
        }
        summed = (
            "workers", "queue_depth", "queue_size", "cache_entries",
            "cache_hits", "cache_misses",
            "cache_evictions_stale", "cache_evictions_capacity",
        )
        for worker in workers:
            stats = worker.call("stats", {})["stats"]
            for key in summed:
                merged[key] += int(stats.get(key, 0))  # type: ignore[operator]
            merged["rows_per_shard"].update(stats.get("rows_per_shard", {}))  # type: ignore[union-attr]
            epochs = stats.get("epochs") or []
            for shard in worker.owned_shards:  # the owner's epoch is the truth
                if shard < len(epochs):
                    merged["epochs"][shard] = int(epochs[shard])  # type: ignore[index]
        lookups = merged["cache_hits"] + merged["cache_misses"]  # type: ignore[operator]
        merged["cache_hit_rate"] = (
            round(merged["cache_hits"] / lookups, 4) if lookups else 0.0  # type: ignore[operator]
        )
        return merged


# Per-shard-group supervision state: the slot bookkeeping is shared
# with the campaign launcher fleet (repro.core.supervise), so respawn
# backoff and crash-loop semantics stay identical across supervisors.
_SupervisedSlot = SupervisedSlot


class WorkerSupervisor:
    """Self-healing loop over a :class:`KnowledgeServer`'s worker slots.

    Every ``poll_interval_s`` the supervisor walks the shard groups and
    converges each one back to healthy:

    * **dead process** (SIGKILL, OOM, crash) — respawn the worker with
      the same shard set (shards are durable SQLite; the successor
      re-opens them), re-run the hello handshake under the startup
      deadline, and swap the new handle into the router.  Respawns are
      budgeted by a :class:`RetryPolicy`'s exponential backoff.
    * **quarantined but alive** (breaker open past its window) — send
      one ``ping`` through the breaker's half-open probe slot; success
      closes the breaker with no respawn.  ``wedged_probe_limit``
      consecutive failed probes against a *live* process mean the
      worker is wedged, not slow: it is killed so the respawn path can
      take over.
    * **crash loop** — more than ``crash_loop_threshold`` respawn
      attempts inside ``crash_loop_window_s`` demotes the group to a
      :class:`CrashLoopedHandle`: permanent quarantine, typed
      ``crash_loop`` errors with a ``retry_after`` hint, no more
      respawn attempts burning CPU on a group that cannot stay up.

    Heals are measured: ``service.supervisor.respawns_total`` /
    ``crash_loops_total`` counters and a ``heal_seconds`` histogram
    (detection to healthy) land in the ordinary metrics report.
    """

    def __init__(
        self,
        server: "KnowledgeServer",
        *,
        poll_interval_s: float = 0.1,
        startup_deadline_s: float = 15.0,
        respawn_policy: RetryPolicy | None = None,
        crash_loop_threshold: int = 5,
        crash_loop_window_s: float = 30.0,
        crash_loop_retry_after_s: float | None = None,
        wedged_probe_limit: int = 3,
        clock: Callable[[], float] = time.monotonic,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.server = server
        self.poll_interval_s = poll_interval_s
        self.startup_deadline_s = startup_deadline_s
        self.respawn_policy = respawn_policy or RetryPolicy(
            max_attempts=crash_loop_threshold + 1,
            base_delay_s=0.05, multiplier=2.0, max_delay_s=2.0,
            salt="worker-supervisor",
        )
        self.crash_loop_threshold = crash_loop_threshold
        self.crash_loop_window_s = crash_loop_window_s
        self.crash_loop_retry_after_s = (
            crash_loop_retry_after_s
            if crash_loop_retry_after_s is not None
            else crash_loop_window_s
        )
        self.wedged_probe_limit = wedged_probe_limit
        self.metrics = metrics
        self._clock = clock
        self._slots = [_SupervisedSlot() for _ in server.workers]
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "WorkerSupervisor":
        """Begin supervising (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-serve-supervisor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the loop; a drain's worker exits must not look like crashes."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 - supervision must not die
                # A tick that throws (a worker vanishing mid-inspection)
                # is retried on the next interval; the loop is the
                # safety net and must outlive any single surprise.
                continue

    # -- one supervision pass ------------------------------------------
    def tick(self) -> None:
        """Inspect every shard group once and converge it toward healthy."""
        for index in range(len(self._slots)):
            slot = self._slots[index]
            if slot.crash_looped:
                continue
            worker = self.server.workers[index]
            if worker.process is None:
                continue
            if not worker.alive:
                self._handle_dead(index, slot, worker)
            else:
                self._handle_alive(index, slot, worker)

    def _handle_alive(
        self, index: int, slot: _SupervisedSlot, worker: WorkerHandle
    ) -> None:
        state = worker.breaker.state
        if state == CircuitBreaker.CLOSED:
            if slot.unhealthy_since is not None:
                # Regular traffic healed the breaker through its own
                # half-open probe — record the heal, keep the worker.
                self._healed(index, slot, respawned=False)
            slot.probe_failures = 0
            return
        if slot.unhealthy_since is None:
            slot.unhealthy_since = self._clock()
        if state != CircuitBreaker.HALF_OPEN:
            return  # OPEN inside its window: breaker says wait, so wait
        try:
            worker.call("ping", {}, timeout_s=min(2.0, worker.request_timeout_s))
        except Exception as exc:  # noqa: BLE001 - typed probe outcomes
            if getattr(exc, "wire_code", "") == "quarantine":
                return  # a client claimed this window's probe; defer to it
            slot.probe_failures += 1
            if slot.probe_failures >= self.wedged_probe_limit and worker.alive:
                # Alive but unresponsive: the process is wedged.  Kill it
                # so the next tick takes the respawn path.
                worker.reap()
        else:
            slot.probe_failures = 0
            self._healed(index, slot, respawned=False)

    def _handle_dead(
        self, index: int, slot: _SupervisedSlot, worker: WorkerHandle
    ) -> None:
        now = self._clock()
        if slot.unhealthy_since is None:
            slot.unhealthy_since = now
        if now < slot.next_attempt_at:
            return  # respawn budget: back off between attempts
        if slot.note_respawn_attempt(
            now,
            window_s=self.crash_loop_window_s,
            threshold=self.crash_loop_threshold,
        ):
            self._declare_crash_loop(index, slot, worker)
            return
        worker.reap()
        slot.attempt += 1
        try:
            successor = self.server._respawn_worker(index)
        except Exception:  # noqa: BLE001 - spawn/handshake failed; back off
            delay = self.respawn_policy.delay_s(
                min(slot.attempt, self.respawn_policy.max_attempts - 1) or 1
            )
            slot.next_attempt_at = self._clock() + delay
            return
        self.server._replace_worker(index, successor)
        slot.respawned(self._clock())
        if self.metrics is not None:
            self.metrics.counter(
                "service.supervisor.respawns_total",
                "shard-group worker processes respawned",
                worker=str(index),
            ).inc()
        self._healed(index, slot, respawned=True)

    def _declare_crash_loop(
        self, index: int, slot: _SupervisedSlot, worker: WorkerHandle
    ) -> None:
        worker.reap()
        slot.crash_looped = True
        self.server._replace_worker(
            index,
            CrashLoopedHandle(
                index, worker.owned_shards,
                retry_after_s=self.crash_loop_retry_after_s,
            ),
        )
        if self.metrics is not None:
            self.metrics.counter(
                "service.supervisor.crash_loops_total",
                "shard groups demoted to permanent quarantine",
                worker=str(index),
            ).inc()

    def _healed(self, index: int, slot: _SupervisedSlot, *, respawned: bool) -> None:
        duration = slot.healed(self._clock())
        if duration is not None and self.metrics is not None:
            self.metrics.histogram(
                "service.supervisor.heal_seconds",
                "time from detecting an unhealthy shard group to healthy",
                wallclock=True,
                mode="respawn" if respawned else "probe",
            ).observe(duration)

    # -- introspection (the health op) ---------------------------------
    def slot_info(self, index: int) -> dict[str, object]:
        """Supervision state of one shard group, JSON-safe."""
        slot = self._slots[index]
        now = self._clock()
        return {
            "respawns": slot.respawns,
            "crash_looped": slot.crash_looped,
            "failed_attempts": slot.attempt,
            "last_heal_s_ago": (
                round(now - slot.last_heal_at, 3)
                if slot.last_heal_at is not None else None
            ),
            "unhealthy_for_s": (
                round(now - slot.unhealthy_since, 3)
                if slot.unhealthy_since is not None else None
            ),
        }


class KnowledgeServer:
    """TCP front end over shard-group worker processes.

    ``port=0`` binds an ephemeral port (``.port`` reports the real one).
    The server is a context manager; ``start()`` begins accepting,
    ``initiate_drain()`` (or SIGTERM via ``repro-serve``) starts the
    graceful shutdown, ``close()`` completes it.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int | None = None,
        worker_processes: int = 2,
        channels_per_worker: int = 2,
        worker_threads: int = 2,
        queue_size: int = 64,
        cache_size: int = 128,
        max_frame: int = MAX_FRAME_BYTES,
        request_timeout_s: float = 30.0,
        metrics: "MetricsRegistry | None" = None,
        supervise: bool = True,
        startup_deadline_s: float = 15.0,
        respawn_policy: RetryPolicy | None = None,
        crash_loop_threshold: int = 5,
        crash_loop_window_s: float = 30.0,
        supervisor_poll_s: float = 0.1,
    ) -> None:
        self.root = Path(root)
        self.metrics = metrics
        self.max_frame = max_frame
        self.request_timeout_s = request_timeout_s
        self._startup_deadline_s = startup_deadline_s
        self._metrics_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._inflight = 0
        self._draining = False
        self._shutdown = False
        self._closed = False
        self._stop_event = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._open_conns: set[socket.socket] = set()
        self._active_conns = 0
        self.worker_returncodes: list[int] = []

        # Fix the shard layout up front so the workers *discover* it
        # instead of racing to create it.
        bootstrap = KnowledgeShardMap(self.root, shards)
        self.num_shards = bootstrap.num_shards
        bootstrap.close()

        n_workers = max(1, min(worker_processes, self.num_shards))
        groups: list[list[int]] = [[] for _ in range(n_workers)]
        for index in range(self.num_shards):
            groups[index % n_workers].append(index)
        self._shard_groups = groups
        self._worker_config = (
            channels_per_worker, worker_threads, queue_size, cache_size
        )
        self.workers: "list[WorkerHandle | CrashLoopedHandle]" = [
            self._spawn_worker(
                wi, owned, channels_per_worker, worker_threads, queue_size, cache_size
            )
            for wi, owned in enumerate(groups)
        ]
        for worker in self.workers:
            try:
                worker.handshake(deadline_s=startup_deadline_s)
            except WorkerStartupError:
                if not supervise:
                    for peer in self.workers:
                        peer.reap()
                    raise
                # Kill the half-born process; the supervisor respawns
                # the slot under its restart budget once it starts.
                worker.reap()
        self.router = ShardRouter(self.workers, self.num_shards)
        self.supervisor: WorkerSupervisor | None = None
        if supervise:
            self.supervisor = WorkerSupervisor(
                self,
                poll_interval_s=supervisor_poll_s,
                startup_deadline_s=startup_deadline_s,
                respawn_policy=respawn_policy,
                crash_loop_threshold=crash_loop_threshold,
                crash_loop_window_s=crash_loop_window_s,
                metrics=metrics,
            )

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]

    # ------------------------------------------------------------------
    # worker processes
    # ------------------------------------------------------------------
    def _spawn_worker(
        self,
        worker_index: int,
        owned: list[int],
        channels_per_worker: int,
        worker_threads: int,
        queue_size: int,
        cache_size: int,
    ) -> WorkerHandle:
        pairs = [socket.socketpair() for _ in range(max(1, channels_per_worker))]
        child_fds = [child.fileno() for _, child in pairs]
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else f"{src_root}{os.pathsep}{existing}"
        )
        argv = [
            sys.executable, "-m", "repro.core.service.worker",
            "--store", str(self.root),
            "--shards", ",".join(str(i) for i in owned),
            "--fds", ",".join(str(fd) for fd in child_fds),
            "--threads", str(worker_threads),
            "--queue", str(queue_size),
            "--cache", str(cache_size),
            "--max-frame", str(self.max_frame),
        ]
        process = subprocess.Popen(argv, pass_fds=child_fds, env=env)
        parent_channels = []
        for parent, child in pairs:
            child.close()  # the worker owns its end now
            parent_channels.append(parent)
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=1.0,
            metrics=self.metrics, name=f"service-worker-{worker_index}",
        )
        return WorkerHandle(
            worker_index, owned, process, parent_channels,
            breaker=breaker, max_frame=self.max_frame,
            request_timeout_s=self.request_timeout_s,
        )

    def _respawn_worker(self, index: int) -> WorkerHandle:
        """Spawn + handshake a successor for one shard group.

        Raises (and reaps the half-born process) when the successor
        fails or overruns its startup handshake — the supervisor backs
        off and tries again under its restart budget.
        """
        channels_per_worker, worker_threads, queue_size, cache_size = (
            self._worker_config
        )
        handle = self._spawn_worker(
            index, self._shard_groups[index],
            channels_per_worker, worker_threads, queue_size, cache_size,
        )
        try:
            handle.handshake(deadline_s=self._startup_deadline_s)
        except Exception:
            handle.reap()
            raise
        return handle

    def _replace_worker(
        self, index: int, handle: "WorkerHandle | CrashLoopedHandle"
    ) -> None:
        """Install a successor handle in both the slot list and router."""
        self.workers[index] = handle
        self.router.replace(index, handle)

    def health(self) -> dict[str, object]:
        """The ``health`` admin op: per-worker liveness + supervision."""
        workers: list[dict[str, object]] = []
        for index, worker in enumerate(self.router._snapshot()):
            breaker = getattr(worker, "breaker", None)
            info: dict[str, object] = {
                "worker": index,
                "pid": worker.process.pid if worker.process is not None else None,
                "alive": worker.alive,
                "shards": list(worker.owned_shards),
                "breaker": breaker.state if breaker is not None else "crash-loop",
            }
            if self.supervisor is not None:
                info.update(self.supervisor.slot_info(index))
            workers.append(info)
        healthy = all(
            w["alive"] and w["breaker"] == CircuitBreaker.CLOSED for w in workers
        )
        return {
            "status": "draining" if self._draining
            else ("healthy" if healthy else "degraded"),
            "shards": self.num_shards,
            "supervised": self.supervisor is not None,
            "workers": workers,
        }

    # ------------------------------------------------------------------
    # accept loop + per-connection protocol
    # ------------------------------------------------------------------
    def start(self) -> "KnowledgeServer":
        """Begin accepting connections and supervising (idempotent)."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-serve-accept", daemon=True
            )
            self._accept_thread.start()
        if self.supervisor is not None:
            self.supervisor.start()
        return self

    def _accept_loop(self) -> None:
        while not self._draining:
            try:
                ready, _, _ = select.select([self._listener], [], [], 0.2)
            except (OSError, ValueError):
                return
            if not ready:
                continue
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            self._track_connection(conn, opened=True)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            with self._state_lock:
                self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(self.request_timeout_s)
        try:
            while True:
                try:
                    ready, _, _ = select.select([conn], [], [], 0.25)
                except (OSError, ValueError):
                    return
                if not ready:
                    if self._shutdown:
                        return
                    continue
                received = [0]
                try:
                    request = read_frame(
                        conn, max_frame=self.max_frame,
                        on_bytes=lambda n: received.__setitem__(0, n),
                    )
                except TruncatedFrameError:
                    return  # mid-frame disconnect: nothing to answer
                except WireVersionError as exc:
                    # Answer in *our* version — the one thing both ends
                    # can parse — then hang up.
                    self._send(conn, {"id": None, "ok": False,
                                      "error": error_body(_typed(exc, "version-mismatch"))})
                    return
                except WireProtocolError as exc:
                    code = "frame-too-large" if "cap" in str(exc) else "bad-frame"
                    self._send(conn, {"id": None, "ok": False,
                                      "error": error_body(_typed(exc, code))})
                    return
                except (OSError, ValueError):
                    return
                if request is None:
                    return  # clean close at a frame boundary
                self._count_frame("in", received[0])
                if not self._send(conn, self._respond(request)):
                    return
        finally:
            self._track_connection(conn, opened=False)
            try:
                conn.close()
            except OSError:
                pass

    def _respond(self, request: dict[str, object]) -> dict[str, object]:
        request_id = request.get("id")
        op = str(request.get("op", ""))
        args = request.get("args")
        payload = args if isinstance(args, dict) else {}
        start = time.perf_counter()
        try:
            if op == "hello":
                result = self._hello(payload)
            elif op == "health":
                # Health answers even while draining — that is exactly
                # when an operator wants to see worker state.
                result = {"health": self.health()}
            elif self._draining:
                raise _typed(
                    ServiceTransportError(
                        "server is draining; finish against another endpoint "
                        "or retry once a replacement is up",
                        retryable=True,
                    ),
                    "draining",
                )
            else:
                with self._inflight_guard():
                    result = self.router.call(op, payload)
        except Exception as exc:  # noqa: BLE001 - typed error frame, never die
            self._observe_op(op, time.perf_counter() - start)
            return {"id": request_id, "ok": False, "error": error_body(exc)}
        self._observe_op(op, time.perf_counter() - start)
        return {"id": request_id, "ok": True, "result": result}

    def _hello(self, payload: dict[str, object]) -> dict[str, object]:
        offered = payload.get("protocols")
        if offered is not None and PROTOCOL not in offered:  # type: ignore[operator]
            raise _typed(
                WireProtocolError(
                    f"no common protocol: client offers {offered!r}, "
                    f"server speaks {PROTOCOL}"
                ),
                "version-mismatch",
            )
        return {
            "protocol": PROTOCOL,
            "transport": "tcp",
            "server": "repro-serve",
            "shards": self.num_shards,
            "worker_processes": len(self.workers),
            "draining": self._draining,
        }

    def _send(self, conn: socket.socket, body: dict[str, object]) -> bool:
        try:
            sent = write_frame(conn, body, max_frame=self.max_frame)
        except (OSError, WireProtocolError):
            return False
        self._count_frame("out", sent)
        return True

    @contextmanager
    def _inflight_guard(self):
        with self._idle:
            self._inflight += 1
        try:
            yield
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    # ------------------------------------------------------------------
    # service.transport.* metrics
    # ------------------------------------------------------------------
    def _track_connection(self, conn: socket.socket, *, opened: bool) -> None:
        with self._state_lock:
            if opened:
                self._open_conns.add(conn)
                self._active_conns += 1
            else:
                self._open_conns.discard(conn)
                self._active_conns -= 1
            active = self._active_conns
        if self.metrics is not None:
            with self._metrics_lock:
                if opened:
                    self.metrics.counter(
                        "service.transport.connections_total",
                        "client connections accepted",
                    ).inc()
                self.metrics.gauge(
                    "service.transport.connections_active",
                    "client connections currently open",
                ).set(active)

    def _count_frame(self, direction: str, nbytes: int) -> None:
        if self.metrics is None:
            return
        with self._metrics_lock:
            self.metrics.counter(
                "service.transport.frames_total",
                "wire frames by direction", direction=direction,
            ).inc()
            self.metrics.counter(
                "service.transport.bytes_total",
                "wire bytes by direction", direction=direction,
            ).inc(nbytes)

    def _observe_op(self, op: str, seconds: float) -> None:
        if self.metrics is None:
            return
        with self._metrics_lock:
            self.metrics.histogram(
                "service.transport.request_seconds",
                "wire round-trip time spent inside the server",
                wallclock=True, op=op,
            ).observe(seconds)

    # ------------------------------------------------------------------
    # lifecycle: drain, then close
    # ------------------------------------------------------------------
    def initiate_drain(self) -> None:
        """Stop accepting; new requests get typed ``draining`` errors."""
        with self._state_lock:
            if self._draining:
                return
            self._draining = True
        try:
            self._listener.close()
        except OSError:
            pass
        self._stop_event.set()

    def serve_forever(self) -> None:
        """Accept until :meth:`initiate_drain` is called, then close."""
        self.start()
        self._stop_event.wait()
        self.close()

    def close(self, *, drain_timeout_s: float = 10.0) -> None:
        """Finish in-flight requests, drain the workers, release sockets."""
        if self._closed:
            return
        if self.supervisor is not None:
            # Stop supervising *before* the drain: workers exiting 0 on
            # EOF must not look like crashes and get respawned mid-close.
            self.supervisor.stop()
        self.initiate_drain()
        deadline = time.monotonic() + drain_timeout_s
        with self._idle:
            while self._inflight > 0 and time.monotonic() < deadline:
                self._idle.wait(timeout=0.1)
        self._shutdown = True
        for worker in self.workers:
            worker.close_channels()  # EOF: workers flush their shards
        self.worker_returncodes = []
        for worker in self.workers:
            if worker.process is None:  # crash-looped tombstone
                self.worker_returncodes.append(-1)
                continue
            try:
                self.worker_returncodes.append(
                    worker.process.wait(timeout=drain_timeout_s)
                )
            except subprocess.TimeoutExpired:  # pragma: no cover - safety net
                worker.process.kill()
                self.worker_returncodes.append(worker.process.wait())
        with self._state_lock:
            lingering = list(self._open_conns)
            threads = list(self._conn_threads)
        for conn in lingering:
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        for thread in threads:
            thread.join(timeout=2.0)
        self._closed = True

    def __enter__(self) -> "KnowledgeServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
