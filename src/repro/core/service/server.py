"""The networked knowledge server behind ``repro-serve --listen``.

Three pieces, one wire protocol:

* :class:`WorkerHandle` — one shard-group worker *process* (spawned as
  ``python -m repro.core.service.worker`` with ``socketpair`` channels
  passed by fd).  The parent talks to it in ``repro.wire/v1`` frames,
  one in-flight request per channel, and guards it with a circuit
  breaker: a worker that stops answering is quarantined, and requests
  for its shards fail fast with a typed ``quarantine`` error instead of
  piling onto a dead process.
* :class:`ShardRouter` — routes each operation to the worker(s) owning
  the shards it touches.  Placement reuses the store's deterministic
  key hash, global-id decoding names the shard directly, and the
  multi-shard operations (``save_many``/``fetch_many``/``list_ids``/
  ``count``/``find_by_parameter``/``load_all``/``stats``) are split per
  worker and merged back in the exact order the embedded service would
  have produced.
* :class:`KnowledgeServer` — the TCP front end: accepts connections,
  answers ``hello`` protocol negotiation, hardens against malformed
  frames (typed error frame or clean close — never a crashed thread),
  counts every connection/frame/byte under ``service.transport.*``, and
  drains gracefully: stop accepting, finish in-flight requests, answer
  ``draining`` to new ones, then close the worker channels so each
  worker flushes its shards and exits 0.

SQLite never runs in this process — the server routes, the workers own
the shards, and writes to different shard groups proceed on different
GILs.  That is the ROADMAP's "service split" step: the same knowledge
store, reachable from another process or host via ``knowledge+tcp://``.
"""

from __future__ import annotations

import itertools
import os
import queue
import select
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import repro
from repro.core.resilience import CircuitBreaker
from repro.core.service.ops import MUTATING_OPS, SERVICE_OPS
from repro.core.service.shard import (
    KnowledgeShardMap,
    decode_knowledge_id,
    shard_index_for_key,
)
from repro.core.service.wire import (
    MAX_FRAME_BYTES,
    PROTOCOL,
    TruncatedFrameError,
    WireProtocolError,
    WireVersionError,
    error_body,
    raise_wire_error,
    read_frame,
    write_frame,
)
from repro.util.errors import PersistenceError, ServiceError, ServiceTransportError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.metrics import MetricsRegistry

__all__ = ["WorkerHandle", "ShardRouter", "KnowledgeServer"]


def _typed(exc: Exception, code: str) -> Exception:
    """Stamp an explicit wire code onto one exception instance."""
    exc.wire_code = code  # type: ignore[attr-defined]
    return exc


class WorkerHandle:
    """The parent-side handle of one shard-group worker process."""

    def __init__(
        self,
        index: int,
        owned_shards: Sequence[int],
        process: subprocess.Popen,
        channels: Sequence[socket.socket],
        *,
        breaker: CircuitBreaker,
        max_frame: int = MAX_FRAME_BYTES,
        request_timeout_s: float = 30.0,
    ) -> None:
        self.index = index
        self.owned_shards = tuple(owned_shards)
        self.process = process
        self.breaker = breaker
        self.max_frame = max_frame
        self.request_timeout_s = request_timeout_s
        self.channel_count = len(channels)
        self._pool: "queue.Queue[socket.socket]" = queue.Queue()
        self._all_channels = list(channels)
        for channel in channels:
            self._pool.put(channel)
        self._seq = itertools.count(1)

    def call(self, op: str, payload: dict[str, object]) -> dict[str, object]:
        """One wire round-trip to the worker; raises typed errors.

        Transport faults (dead channel, short read, timeout) trip the
        breaker and surface as :class:`ServiceTransportError` — marked
        non-retryable for mutating ops, whose effect on the worker is
        unknowable once the request left this process.  Typed error
        frames from the worker re-raise as their registered classes.
        """
        if not self.breaker.allow():
            raise _typed(
                ServiceTransportError(
                    f"shard-group worker {self.index} "
                    f"(shards {list(self.owned_shards)}) is quarantined by its "
                    "circuit breaker; its shards are unavailable until it heals",
                    retryable=True,
                ),
                "quarantine",
            )
        try:
            channel = self._pool.get(timeout=self.request_timeout_s)
        except queue.Empty:
            self.breaker.record_failure()
            raise _typed(
                ServiceTransportError(
                    f"no free channel to shard-group worker {self.index} within "
                    f"{self.request_timeout_s:g}s",
                    retryable=True,
                ),
                "unavailable",
            ) from None
        request_id = next(self._seq)
        try:
            channel.settimeout(self.request_timeout_s)
            write_frame(
                channel,
                {"id": request_id, "op": op, "args": payload},
                max_frame=self.max_frame,
            )
            response = read_frame(channel, max_frame=self.max_frame)
        except (OSError, WireProtocolError) as exc:
            self.breaker.record_failure()
            self._discard(channel)
            raise ServiceTransportError(
                f"channel to shard-group worker {self.index} failed during "
                f"{op!r}: {exc}",
                retryable=op not in MUTATING_OPS,
            ) from exc
        if response is None or response.get("id") != request_id:
            self.breaker.record_failure()
            self._discard(channel)
            detail = (
                "closed its channel" if response is None else "answered out of sequence"
            )
            raise ServiceTransportError(
                f"shard-group worker {self.index} {detail} during {op!r}",
                retryable=op not in MUTATING_OPS,
            )
        self._pool.put(channel)
        self.breaker.record_success()
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        error = response.get("error")
        raise_wire_error(error if isinstance(error, dict) else {})
        raise AssertionError("raise_wire_error always raises")  # pragma: no cover

    def _discard(self, channel: socket.socket) -> None:
        try:
            channel.close()
        except OSError:
            pass
        if channel in self._all_channels:
            self._all_channels.remove(channel)

    def handshake(self) -> None:
        """Verify every channel answers ``hello`` (worker readiness)."""
        for _ in range(self.channel_count):  # FIFO pool: each call rotates
            self.call("hello", {})

    @property
    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self.process.poll() is None

    def close_channels(self) -> None:
        """EOF every channel: the worker flushes its shards and exits."""
        while True:
            try:
                self._pool.get_nowait()
            except queue.Empty:
                break
        for channel in list(self._all_channels):
            self._discard(channel)


class ShardRouter:
    """Route wire operations to the shard-group workers that own them."""

    def __init__(self, workers: Sequence[WorkerHandle], num_shards: int) -> None:
        self.workers = list(workers)
        self.num_shards = num_shards
        self._owner: dict[int, WorkerHandle] = {}
        for worker in self.workers:
            for shard in worker.owned_shards:
                self._owner[shard] = worker

    # -- placement -----------------------------------------------------
    def _worker_of_shard(self, index: int) -> WorkerHandle:
        if not 0 <= index < self.num_shards:
            raise PersistenceError(
                f"shard {index} outside the store's {self.num_shards} shard(s)"
            )
        return self._owner[index]

    def _shard_of_id(self, global_id: int) -> int:
        _, index = decode_knowledge_id(int(global_id))
        if index >= self.num_shards:
            raise PersistenceError(
                f"knowledge id {global_id} names shard {index} but the store "
                f"has only {self.num_shards} shard(s)"
            )
        return index

    def _placement(self, packed: dict[str, object]) -> int:
        data = packed["data"]  # type: ignore[index]
        system = data.get("system") or {}  # type: ignore[union-attr]
        hostname = system.get("hostname") or "" if isinstance(system, dict) else ""
        return shard_index_for_key(f"{data['benchmark']}/{hostname}", self.num_shards)

    # -- dispatch ------------------------------------------------------
    def call(self, op: str, payload: dict[str, object]) -> dict[str, object]:
        """Route one operation payload; returns its result payload."""
        try:
            return self._route(op, payload)
        except (KeyError, TypeError, ValueError, AttributeError, IndexError) as exc:
            raise _typed(
                WireProtocolError(f"malformed arguments for operation {op!r}: {exc}"),
                "bad-request",
            ) from exc

    def _route(self, op: str, payload: dict[str, object]) -> dict[str, object]:
        if op == "ping":
            return {}
        if op == "stats":
            return {"stats": self._merged_stats()}
        if op not in SERVICE_OPS:
            raise _typed(
                ServiceError(
                    f"unknown service operation {op!r}; known: {sorted(SERVICE_OPS)}"
                ),
                "unknown-op",
            )
        if op == "save":
            owner = self._worker_of_shard(self._placement(payload["knowledge"]))  # type: ignore[arg-type]
            return owner.call("save", payload)
        if op == "save_many":
            return self._save_many(payload)
        if op == "fetch_many":
            return self._fetch_many(payload)
        if op in ("load", "delete"):
            owner = self._worker_of_shard(self._shard_of_id(payload["id"]))  # type: ignore[arg-type]
            return owner.call(op, payload)
        if op == "exists":
            try:
                index = self._shard_of_id(payload["id"])  # type: ignore[arg-type]
            except (ServiceError, PersistenceError):
                return {"exists": False}
            return self._worker_of_shard(index).call("exists", payload)
        if op in ("list_ids", "find_by_parameter"):
            ids: list[int] = []
            for worker in self.workers:
                ids.extend(worker.call(op, payload)["ids"])  # type: ignore[arg-type]
            ids.sort()
            return {"ids": ids}
        if op == "count":
            return {
                "count": sum(
                    int(worker.call("count", payload)["count"])  # type: ignore[arg-type]
                    for worker in self.workers
                )
            }
        # load_all: every worker returns its owned objects, merged in
        # global-id order — exactly the embedded service's ordering.
        objects: list[dict[str, object]] = []
        for worker in self.workers:
            objects.extend(worker.call("load_all", payload)["objects"])  # type: ignore[arg-type]
        objects.sort(key=lambda obj: int(obj["id"]))  # type: ignore[arg-type]
        return {"objects": objects}

    def _save_many(self, payload: dict[str, object]) -> dict[str, object]:
        objects = payload["objects"]  # type: ignore[index]
        if not objects:
            return {"ids": []}
        by_worker: dict[int, tuple[WorkerHandle, list[tuple[int, object]]]] = {}
        for position, packed in enumerate(objects):  # type: ignore[arg-type]
            worker = self._worker_of_shard(self._placement(packed))
            by_worker.setdefault(worker.index, (worker, []))[1].append(
                (position, packed)
            )
        ids: list[int] = [0] * len(objects)  # type: ignore[arg-type]
        for worker, group in (by_worker[i] for i in sorted(by_worker)):
            result = worker.call("save_many", {"objects": [o for _, o in group]})
            for (position, _), global_id in zip(group, result["ids"]):  # type: ignore[arg-type]
                ids[position] = int(global_id)
        return {"ids": ids}

    def _fetch_many(self, payload: dict[str, object]) -> dict[str, object]:
        wanted = [int(i) for i in payload["ids"]]  # type: ignore[union-attr]
        by_worker: dict[int, tuple[WorkerHandle, list[int]]] = {}
        for global_id in dict.fromkeys(wanted):
            worker = self._worker_of_shard(self._shard_of_id(global_id))
            by_worker.setdefault(worker.index, (worker, []))[1].append(global_id)
        fetched: dict[int, object] = {}
        for worker, group in (by_worker[i] for i in sorted(by_worker)):
            result = worker.call("fetch_many", {"ids": group})
            for global_id, packed in zip(group, result["objects"]):  # type: ignore[arg-type]
                fetched[global_id] = packed
        return {"objects": [fetched[i] for i in wanted]}

    def _merged_stats(self) -> dict[str, object]:
        merged: dict[str, object] = {
            "shards": self.num_shards,
            "worker_processes": len(self.workers),
            "shard_groups": [list(w.owned_shards) for w in self.workers],
            "workers": 0,
            "queue_depth": 0,
            "queue_size": 0,
            "cache_entries": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_evictions_stale": 0,
            "cache_evictions_capacity": 0,
            "epochs": [0] * self.num_shards,
            "rows_per_shard": {},
        }
        summed = (
            "workers", "queue_depth", "queue_size", "cache_entries",
            "cache_hits", "cache_misses",
            "cache_evictions_stale", "cache_evictions_capacity",
        )
        for worker in self.workers:
            stats = worker.call("stats", {})["stats"]
            for key in summed:
                merged[key] += int(stats.get(key, 0))  # type: ignore[operator]
            merged["rows_per_shard"].update(stats.get("rows_per_shard", {}))  # type: ignore[union-attr]
            epochs = stats.get("epochs") or []
            for shard in worker.owned_shards:  # the owner's epoch is the truth
                if shard < len(epochs):
                    merged["epochs"][shard] = int(epochs[shard])  # type: ignore[index]
        lookups = merged["cache_hits"] + merged["cache_misses"]  # type: ignore[operator]
        merged["cache_hit_rate"] = (
            round(merged["cache_hits"] / lookups, 4) if lookups else 0.0  # type: ignore[operator]
        )
        return merged


class KnowledgeServer:
    """TCP front end over shard-group worker processes.

    ``port=0`` binds an ephemeral port (``.port`` reports the real one).
    The server is a context manager; ``start()`` begins accepting,
    ``initiate_drain()`` (or SIGTERM via ``repro-serve``) starts the
    graceful shutdown, ``close()`` completes it.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int | None = None,
        worker_processes: int = 2,
        channels_per_worker: int = 2,
        worker_threads: int = 2,
        queue_size: int = 64,
        cache_size: int = 128,
        max_frame: int = MAX_FRAME_BYTES,
        request_timeout_s: float = 30.0,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.root = Path(root)
        self.metrics = metrics
        self.max_frame = max_frame
        self.request_timeout_s = request_timeout_s
        self._metrics_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._inflight = 0
        self._draining = False
        self._shutdown = False
        self._closed = False
        self._stop_event = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        self._open_conns: set[socket.socket] = set()
        self._active_conns = 0
        self.worker_returncodes: list[int] = []

        # Fix the shard layout up front so the workers *discover* it
        # instead of racing to create it.
        bootstrap = KnowledgeShardMap(self.root, shards)
        self.num_shards = bootstrap.num_shards
        bootstrap.close()

        n_workers = max(1, min(worker_processes, self.num_shards))
        groups: list[list[int]] = [[] for _ in range(n_workers)]
        for index in range(self.num_shards):
            groups[index % n_workers].append(index)
        self.workers = [
            self._spawn_worker(
                wi, owned, channels_per_worker, worker_threads, queue_size, cache_size
            )
            for wi, owned in enumerate(groups)
        ]
        for worker in self.workers:
            worker.handshake()
        self.router = ShardRouter(self.workers, self.num_shards)

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]

    # ------------------------------------------------------------------
    # worker processes
    # ------------------------------------------------------------------
    def _spawn_worker(
        self,
        worker_index: int,
        owned: list[int],
        channels_per_worker: int,
        worker_threads: int,
        queue_size: int,
        cache_size: int,
    ) -> WorkerHandle:
        pairs = [socket.socketpair() for _ in range(max(1, channels_per_worker))]
        child_fds = [child.fileno() for _, child in pairs]
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else f"{src_root}{os.pathsep}{existing}"
        )
        argv = [
            sys.executable, "-m", "repro.core.service.worker",
            "--store", str(self.root),
            "--shards", ",".join(str(i) for i in owned),
            "--fds", ",".join(str(fd) for fd in child_fds),
            "--threads", str(worker_threads),
            "--queue", str(queue_size),
            "--cache", str(cache_size),
            "--max-frame", str(self.max_frame),
        ]
        process = subprocess.Popen(argv, pass_fds=child_fds, env=env)
        parent_channels = []
        for parent, child in pairs:
            child.close()  # the worker owns its end now
            parent_channels.append(parent)
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=1.0,
            metrics=self.metrics, name=f"service-worker-{worker_index}",
        )
        return WorkerHandle(
            worker_index, owned, process, parent_channels,
            breaker=breaker, max_frame=self.max_frame,
            request_timeout_s=self.request_timeout_s,
        )

    # ------------------------------------------------------------------
    # accept loop + per-connection protocol
    # ------------------------------------------------------------------
    def start(self) -> "KnowledgeServer":
        """Begin accepting connections (idempotent)."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-serve-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._draining:
            try:
                ready, _, _ = select.select([self._listener], [], [], 0.2)
            except (OSError, ValueError):
                return
            if not ready:
                continue
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            self._track_connection(conn, opened=True)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            with self._state_lock:
                self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(self.request_timeout_s)
        try:
            while True:
                try:
                    ready, _, _ = select.select([conn], [], [], 0.25)
                except (OSError, ValueError):
                    return
                if not ready:
                    if self._shutdown:
                        return
                    continue
                received = [0]
                try:
                    request = read_frame(
                        conn, max_frame=self.max_frame,
                        on_bytes=lambda n: received.__setitem__(0, n),
                    )
                except TruncatedFrameError:
                    return  # mid-frame disconnect: nothing to answer
                except WireVersionError as exc:
                    # Answer in *our* version — the one thing both ends
                    # can parse — then hang up.
                    self._send(conn, {"id": None, "ok": False,
                                      "error": error_body(_typed(exc, "version-mismatch"))})
                    return
                except WireProtocolError as exc:
                    code = "frame-too-large" if "cap" in str(exc) else "bad-frame"
                    self._send(conn, {"id": None, "ok": False,
                                      "error": error_body(_typed(exc, code))})
                    return
                except (OSError, ValueError):
                    return
                if request is None:
                    return  # clean close at a frame boundary
                self._count_frame("in", received[0])
                if not self._send(conn, self._respond(request)):
                    return
        finally:
            self._track_connection(conn, opened=False)
            try:
                conn.close()
            except OSError:
                pass

    def _respond(self, request: dict[str, object]) -> dict[str, object]:
        request_id = request.get("id")
        op = str(request.get("op", ""))
        args = request.get("args")
        payload = args if isinstance(args, dict) else {}
        start = time.perf_counter()
        try:
            if op == "hello":
                result = self._hello(payload)
            elif self._draining:
                raise _typed(
                    ServiceTransportError(
                        "server is draining; finish against another endpoint "
                        "or retry once a replacement is up",
                        retryable=True,
                    ),
                    "draining",
                )
            else:
                with self._inflight_guard():
                    result = self.router.call(op, payload)
        except Exception as exc:  # noqa: BLE001 - typed error frame, never die
            self._observe_op(op, time.perf_counter() - start)
            return {"id": request_id, "ok": False, "error": error_body(exc)}
        self._observe_op(op, time.perf_counter() - start)
        return {"id": request_id, "ok": True, "result": result}

    def _hello(self, payload: dict[str, object]) -> dict[str, object]:
        offered = payload.get("protocols")
        if offered is not None and PROTOCOL not in offered:  # type: ignore[operator]
            raise _typed(
                WireProtocolError(
                    f"no common protocol: client offers {offered!r}, "
                    f"server speaks {PROTOCOL}"
                ),
                "version-mismatch",
            )
        return {
            "protocol": PROTOCOL,
            "transport": "tcp",
            "server": "repro-serve",
            "shards": self.num_shards,
            "worker_processes": len(self.workers),
            "draining": self._draining,
        }

    def _send(self, conn: socket.socket, body: dict[str, object]) -> bool:
        try:
            sent = write_frame(conn, body, max_frame=self.max_frame)
        except (OSError, WireProtocolError):
            return False
        self._count_frame("out", sent)
        return True

    @contextmanager
    def _inflight_guard(self):
        with self._idle:
            self._inflight += 1
        try:
            yield
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    # ------------------------------------------------------------------
    # service.transport.* metrics
    # ------------------------------------------------------------------
    def _track_connection(self, conn: socket.socket, *, opened: bool) -> None:
        with self._state_lock:
            if opened:
                self._open_conns.add(conn)
                self._active_conns += 1
            else:
                self._open_conns.discard(conn)
                self._active_conns -= 1
            active = self._active_conns
        if self.metrics is not None:
            with self._metrics_lock:
                if opened:
                    self.metrics.counter(
                        "service.transport.connections_total",
                        "client connections accepted",
                    ).inc()
                self.metrics.gauge(
                    "service.transport.connections_active",
                    "client connections currently open",
                ).set(active)

    def _count_frame(self, direction: str, nbytes: int) -> None:
        if self.metrics is None:
            return
        with self._metrics_lock:
            self.metrics.counter(
                "service.transport.frames_total",
                "wire frames by direction", direction=direction,
            ).inc()
            self.metrics.counter(
                "service.transport.bytes_total",
                "wire bytes by direction", direction=direction,
            ).inc(nbytes)

    def _observe_op(self, op: str, seconds: float) -> None:
        if self.metrics is None:
            return
        with self._metrics_lock:
            self.metrics.histogram(
                "service.transport.request_seconds",
                "wire round-trip time spent inside the server",
                wallclock=True, op=op,
            ).observe(seconds)

    # ------------------------------------------------------------------
    # lifecycle: drain, then close
    # ------------------------------------------------------------------
    def initiate_drain(self) -> None:
        """Stop accepting; new requests get typed ``draining`` errors."""
        with self._state_lock:
            if self._draining:
                return
            self._draining = True
        try:
            self._listener.close()
        except OSError:
            pass
        self._stop_event.set()

    def serve_forever(self) -> None:
        """Accept until :meth:`initiate_drain` is called, then close."""
        self.start()
        self._stop_event.wait()
        self.close()

    def close(self, *, drain_timeout_s: float = 10.0) -> None:
        """Finish in-flight requests, drain the workers, release sockets."""
        if self._closed:
            return
        self.initiate_drain()
        deadline = time.monotonic() + drain_timeout_s
        with self._idle:
            while self._inflight > 0 and time.monotonic() < deadline:
                self._idle.wait(timeout=0.1)
        self._shutdown = True
        for worker in self.workers:
            worker.close_channels()  # EOF: workers flush their shards
        self.worker_returncodes = []
        for worker in self.workers:
            try:
                self.worker_returncodes.append(
                    worker.process.wait(timeout=drain_timeout_s)
                )
            except subprocess.TimeoutExpired:  # pragma: no cover - safety net
                worker.process.kill()
                self.worker_returncodes.append(worker.process.wait())
        with self._state_lock:
            lingering = list(self._open_conns)
            threads = list(self._conn_threads)
        for conn in lingering:
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        for thread in threads:
            thread.join(timeout=2.0)
        self._closed = True

    def __enter__(self) -> "KnowledgeServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
