"""Sharded knowledge store: N databases behind one stable partition map.

§V-C lets knowledge live "either directly as a local SQLite database or
by specifying a SQL connection URL remotely" — but one SQLite file is
one writer.  To serve corpus-scale knowledge (the IO500 submission
study's thousands of runs, many concurrent readers) the store is split
into *shards*: independent :class:`~repro.core.persistence.database.
KnowledgeDatabase` files, each guarded by its own lock and its own
:class:`~repro.core.persistence.backend.ResilientBackend` circuit
breaker, so contention and failure stay local to one shard.

Placement is *stable*: a knowledge object's shard is derived by hashing
its partition key (``benchmark/system``) with the repository-wide
SHA-256 stream derivation, so the same object lands on the same shard
in every process on every run — no coordination service needed.  A
``shard_manifest`` table in ``manifest.db`` records the shard layout so
an existing store can be discovered (and rebalanced) without guessing
file names.

Knowledge ids become *global* ids that encode the owning shard:
``global = local * MAX_SHARDS + shard_index``.  Decoding needs no
lookup, and ids stay unique across shards without a central sequence.
"""

from __future__ import annotations

import sqlite3
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.core.persistence.backend import ResilientBackend
from repro.core.persistence.database import KnowledgeDatabase
from repro.core.persistence.repository import KnowledgeRepository
from repro.core.resilience import CircuitBreaker
from repro.util.errors import PersistenceError, ServiceError
from repro.util.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.knowledge import Knowledge
    from repro.core.metrics import MetricsRegistry

__all__ = [
    "MAX_SHARDS",
    "MANIFEST_SCHEMA_VERSION",
    "encode_knowledge_id",
    "decode_knowledge_id",
    "shard_key",
    "shard_index_for_key",
    "KnowledgeShard",
    "KnowledgeShardMap",
]

#: Global-id stride: the largest shard count the id encoding supports.
#: ``global = local * MAX_SHARDS + shard`` keeps decoding a pure mod/div.
MAX_SHARDS = 1024

#: Bump on incompatible ``shard_manifest`` layout changes.
MANIFEST_SCHEMA_VERSION = 1

_MANIFEST_DDL = """
CREATE TABLE IF NOT EXISTS shard_manifest (
    shard_index    INTEGER PRIMARY KEY,
    path           TEXT NOT NULL,
    key_space      TEXT NOT NULL DEFAULT 'benchmark/system',
    schema_version INTEGER NOT NULL DEFAULT 1
)
"""


def encode_knowledge_id(local_id: int, shard_index: int) -> int:
    """Fold a shard-local rowid and its shard into one global id."""
    if not 0 <= shard_index < MAX_SHARDS:
        raise ServiceError(f"shard index {shard_index} outside [0, {MAX_SHARDS})")
    if local_id < 1:
        raise ServiceError(f"local knowledge id must be >= 1, got {local_id}")
    return local_id * MAX_SHARDS + shard_index


def decode_knowledge_id(global_id: int) -> tuple[int, int]:
    """Split a global id back into ``(local_id, shard_index)``."""
    local_id, shard_index = divmod(int(global_id), MAX_SHARDS)
    if local_id < 1:
        raise ServiceError(
            f"{global_id} is not a service knowledge id (local part {local_id} < 1); "
            "was a plain single-database id passed to the service?"
        )
    return local_id, shard_index


def shard_key(knowledge: "Knowledge") -> str:
    """The stable partition key of one knowledge object.

    ``benchmark/system`` — the two dimensions the explorer filters by —
    so one system's runs of one benchmark cluster on one shard and a
    comparison query usually touches a single database.
    """
    system = (knowledge.system or {}).get("hostname", "") if knowledge.system else ""
    return f"{knowledge.benchmark}/{system}"


def shard_index_for_key(key: str, num_shards: int) -> int:
    """Deterministic shard assignment of one partition key.

    Derived from the repository-wide SHA-256 seed derivation — the same
    key maps to the same shard in every process and run, which is what
    lets a server route requests to shard-group workers without the
    workers sharing any state.
    """
    return derive_seed(0, "knowledge-shard", key) % num_shards


@dataclass
class KnowledgeShard:
    """One shard: its backend, repository, lock and write epoch."""

    index: int
    path: str
    backend: ResilientBackend
    repository: KnowledgeRepository
    lock: threading.RLock = field(default_factory=threading.RLock)
    epoch: int = 0


class KnowledgeShardMap:
    """Partitioned knowledge store with a discovery manifest.

    Opening a root directory that already holds a manifest *discovers*
    the existing layout; a fresh directory is initialised with
    ``num_shards`` shards.  Passing a conflicting ``num_shards`` for an
    existing store fails loudly (use :meth:`rebalance` to change the
    shard count).

    Every shard write must happen under that shard's ``lock`` — the
    single-writer discipline SQLite (and the resilient backend's rowid
    prediction) requires.  :class:`~repro.core.service.service.
    KnowledgeService` enforces this for its callers.
    """

    def __init__(
        self,
        root: str | Path,
        num_shards: int | None = None,
        *,
        key_space: str = "benchmark/system",
        metrics: "MetricsRegistry | None" = None,
        breaker_factory: Callable[[int], CircuitBreaker] | None = None,
    ) -> None:
        self.root = Path(root)
        self.metrics = metrics
        self.key_space = key_space
        self._breaker_factory = breaker_factory
        self._epoch_lock = threading.Lock()
        self.root.mkdir(parents=True, exist_ok=True)
        manifest_rows = self._read_manifest()
        if manifest_rows:
            if num_shards is not None and num_shards != len(manifest_rows):
                raise ServiceError(
                    f"store at {self.root} has {len(manifest_rows)} shard(s) but "
                    f"{num_shards} were requested; rebalance the store instead of "
                    "reopening it with a different shard count"
                )
            paths = [row[1] for row in sorted(manifest_rows)]
            self.key_space = manifest_rows[0][2]
        else:
            n = 2 if num_shards is None else num_shards
            if not 1 <= n <= MAX_SHARDS:
                raise ServiceError(f"num_shards must be in [1, {MAX_SHARDS}], got {n}")
            paths = [f"shard-{i:03d}.db" for i in range(n)]
            self._write_manifest(paths)
        self.shards: list[KnowledgeShard] = [
            self._open_shard(i, p) for i, p in enumerate(paths)
        ]

    # -- manifest ------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        """Where the shard-discovery manifest lives."""
        return self.root / "manifest.db"

    def _manifest_conn(self) -> sqlite3.Connection:
        try:
            conn = sqlite3.connect(self.manifest_path)
            conn.execute(_MANIFEST_DDL)
            return conn
        except sqlite3.Error as exc:
            raise PersistenceError(
                f"cannot open shard manifest {self.manifest_path}: {exc}"
            ) from exc

    def _read_manifest(self) -> list[tuple[int, str, str]]:
        if not self.manifest_path.exists():
            return []
        conn = self._manifest_conn()
        try:
            rows = conn.execute(
                "SELECT shard_index, path, key_space, schema_version "
                "FROM shard_manifest ORDER BY shard_index"
            ).fetchall()
        finally:
            conn.close()
        for _, _, _, version in rows:
            if version != MANIFEST_SCHEMA_VERSION:
                raise PersistenceError(
                    f"shard manifest {self.manifest_path} has schema version "
                    f"{version}; this build understands {MANIFEST_SCHEMA_VERSION}"
                )
        return [(int(i), str(p), str(ks)) for i, p, ks, _ in rows]

    def _write_manifest(self, paths: list[str]) -> None:
        conn = self._manifest_conn()
        try:
            conn.execute("DELETE FROM shard_manifest")
            conn.executemany(
                "INSERT INTO shard_manifest (shard_index, path, key_space, schema_version) "
                "VALUES (?, ?, ?, ?)",
                [
                    (i, p, self.key_space, MANIFEST_SCHEMA_VERSION)
                    for i, p in enumerate(paths)
                ],
            )
            conn.commit()
        finally:
            conn.close()

    def manifest(self) -> list[dict[str, object]]:
        """The manifest rows (for discovery tooling and ``repro-serve``)."""
        return [
            {
                "shard_index": shard.index,
                "path": shard.path,
                "key_space": self.key_space,
                "schema_version": MANIFEST_SCHEMA_VERSION,
            }
            for shard in self.shards
        ]

    # -- shard lifecycle -----------------------------------------------
    def _open_shard(self, index: int, rel_path: str) -> KnowledgeShard:
        db = KnowledgeDatabase(
            self.root / rel_path, metrics=self.metrics, check_same_thread=False
        )
        if self._breaker_factory is not None:
            breaker = self._breaker_factory(index)
        else:
            breaker = CircuitBreaker(
                failure_threshold=3, reset_timeout_s=1.0,
                metrics=self.metrics, name=f"shard-{index}",
            )
        backend = ResilientBackend(db, breaker=breaker, metrics=self.metrics)
        return KnowledgeShard(
            index=index, path=rel_path, backend=backend,
            repository=KnowledgeRepository(backend),
        )

    @property
    def num_shards(self) -> int:
        """How many shards the store is split into."""
        return len(self.shards)

    def close(self) -> None:
        """Close every shard backend (flushing degraded buffers)."""
        errors = []
        for shard in self.shards:
            with shard.lock:
                try:
                    shard.backend.close()
                except PersistenceError as exc:
                    errors.append(f"shard {shard.index}: {exc}")
        if errors:
            raise PersistenceError(
                "could not cleanly close shard(s): " + "; ".join(errors)
            )

    def __enter__(self) -> "KnowledgeShardMap":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- placement -----------------------------------------------------
    def shard_index_for_key(self, key: str) -> int:
        """Deterministic shard assignment of one partition key.

        Delegates to the module-level :func:`shard_index_for_key` so the
        TCP server's router computes the identical placement.
        """
        return shard_index_for_key(key, self.num_shards)

    def shard_for(self, knowledge: "Knowledge") -> KnowledgeShard:
        """The shard one knowledge object belongs on."""
        return self.shards[self.shard_index_for_key(shard_key(knowledge))]

    def shard_of(self, global_id: int) -> tuple[KnowledgeShard, int]:
        """Resolve a global id to ``(shard, local_id)``."""
        local_id, index = decode_knowledge_id(global_id)
        if index >= self.num_shards:
            raise PersistenceError(
                f"knowledge id {global_id} names shard {index} but the store "
                f"has only {self.num_shards} shard(s)"
            )
        return self.shards[index], local_id

    # -- epochs --------------------------------------------------------
    def epoch(self, shard_index: int) -> int:
        """The current write epoch of one shard."""
        with self._epoch_lock:
            return self.shards[shard_index].epoch

    def epochs(self) -> tuple[int, ...]:
        """Every shard's epoch, in shard order (cross-shard cache keys)."""
        with self._epoch_lock:
            return tuple(shard.epoch for shard in self.shards)

    def bump_epoch(self, shard_index: int) -> int:
        """Advance one shard's epoch after a committed write."""
        with self._epoch_lock:
            shard = self.shards[shard_index]
            shard.epoch += 1
            return shard.epoch

    # -- store-wide helpers --------------------------------------------
    def counts(self) -> list[int]:
        """Knowledge-object count per shard (COUNT fast path)."""
        out = []
        for shard in self.shards:
            with shard.lock:
                out.append(shard.repository.count())
        return out

    def rebalance(self, new_num_shards: int) -> int:
        """Repartition the store across a different shard count.

        Loads every knowledge object, recreates the shard files and
        re-saves each object under the new placement.  Global ids are
        reassigned (the local part restarts per shard).  **Not** safe
        under live traffic — stop the service first.  Returns the number
        of objects moved.
        """
        if not 1 <= new_num_shards <= MAX_SHARDS:
            raise ServiceError(
                f"num_shards must be in [1, {MAX_SHARDS}], got {new_num_shards}"
            )
        moved: list["Knowledge"] = []
        for shard in self.shards:
            with shard.lock:
                for knowledge in shard.repository.fetch_many(
                    shard.repository.list_ids()
                ):
                    knowledge.knowledge_id = None
                    moved.append(knowledge)
        self.close()
        old_paths = [self.root / shard.path for shard in self.shards]
        paths = [f"shard-{i:03d}.db" for i in range(new_num_shards)]
        for old in old_paths:
            old.unlink(missing_ok=True)
        self._write_manifest(paths)
        self.shards = [self._open_shard(i, p) for i, p in enumerate(paths)]
        for knowledge in moved:
            shard = self.shard_for(knowledge)
            with shard.lock:
                shard.repository.save(knowledge)
                self.bump_epoch(shard.index)
        return len(moved)
