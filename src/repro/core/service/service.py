"""The knowledge service: a concurrent, cache-fronted serving layer.

The ROADMAP north star is a knowledge base that serves "heavy traffic"
while ingestion keeps writing — the always-on store that corpus studies
and LLM-driven diagnosis front-ends presume.  This module is that
serving layer, embeddable in-process:

* requests enter a **bounded queue** (admission control): when the
  queue is full the service *sheds* the request with a typed
  :class:`~repro.util.errors.ServiceOverloadError` instead of letting
  callers pile onto a wedged SQLite file — overload degrades into
  client backoff, never a deadlock.
* a **worker pool** drains the queue.  Every shard access happens under
  that shard's lock (SQLite's single-writer discipline), so concurrency
  comes from spreading keys across shards and from the result cache.
* reads go through an :class:`~repro.core.service.cache.EpochLRUCache`;
  every committed write bumps the owning shard's epoch, lazily evicting
  stale entries on their next lookup.
* shard writes run on the shard map's
  :class:`~repro.core.persistence.backend.ResilientBackend`, so a
  wedged shard trips its circuit breaker and quarantines (writes buffer
  and replay on heal) instead of failing the whole cycle.

Every queue transition, shard latency and cache event is recorded in
the attached :class:`~repro.core.metrics.MetricsRegistry` under the
``service.*`` families.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.knowledge import Knowledge
from repro.core.persistence.scan import ScanQuery, merge_partial_payloads
from repro.core.persistence.transfer import knowledge_from_dict, knowledge_to_dict
from repro.core.service.cache import EpochLRUCache
from repro.core.service.shard import KnowledgeShard, KnowledgeShardMap, encode_knowledge_id
from repro.util.errors import (
    ConfigurationError,
    PersistenceError,
    ServiceError,
    ServiceOverloadError,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.metrics import MetricsRegistry

__all__ = ["KnowledgeService"]

_STOP = object()  # worker-shutdown sentinel


@dataclass(slots=True)
class _Request:
    op: str
    args: tuple
    future: Future


class KnowledgeService:
    """Concurrent serving front for a :class:`KnowledgeShardMap`.

    ``submit(op, *args)`` enqueues a request and returns a
    :class:`~concurrent.futures.Future`; a full queue raises
    :class:`ServiceOverloadError` immediately (admission control).
    :class:`~repro.core.service.client.ServiceClient` wraps this with
    deterministic-jitter backoff and a blocking API.

    The service starts its workers on construction and is a context
    manager; ``close()`` drains the queue, stops the workers and closes
    every shard (flushing any degraded-mode write buffers).
    """

    def __init__(
        self,
        shard_map: KnowledgeShardMap,
        *,
        workers: int = 4,
        queue_size: int = 64,
        cache_size: int = 128,
        metrics: "MetricsRegistry | None" = None,
        owned_shards: Sequence[int] | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise ConfigurationError(f"queue_size must be >= 1, got {queue_size}")
        self.shard_map = shard_map
        if owned_shards is None:
            self.owned_shards = tuple(range(shard_map.num_shards))
        else:
            indices = sorted({int(i) for i in owned_shards})
            if not indices:
                raise ConfigurationError("owned_shards must name at least one shard")
            for index in indices:
                if not 0 <= index < shard_map.num_shards:
                    raise ConfigurationError(
                        f"owned shard {index} outside the store's "
                        f"[0, {shard_map.num_shards}) shard range"
                    )
            self.owned_shards = tuple(indices)
        self._owned = [shard_map.shards[i] for i in self.owned_shards]
        self._owned_set = frozenset(self.owned_shards)
        self.metrics = metrics if metrics is not None else shard_map.metrics
        self.queue_size = queue_size
        self.cache = EpochLRUCache(cache_size, metrics=self.metrics)
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=queue_size)
        self._stats_lock = threading.Lock()
        self._closed = False
        self._ops = {
            "save": self._op_save,
            "save_many": self._op_save_many,
            "delete": self._op_delete,
            "load": self._op_load,
            "load_all": self._op_load_all,
            "fetch_many": self._op_fetch_many,
            "list_ids": self._op_list_ids,
            "find_by_parameter": self._op_find_by_parameter,
            "count": self._op_count,
            "exists": self._op_exists,
            "scan": self._op_scan,
        }
        if self.metrics is not None:
            self._depth_gauge = self.metrics.gauge(
                "service.queue_depth", "requests waiting in the service queue"
            )
            self._worker_gauge = self.metrics.gauge(
                "service.workers", "worker threads serving the queue"
            )
            self._worker_gauge.set(workers)
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"knowledge-service-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    # admission + dispatch
    # ------------------------------------------------------------------
    def submit(self, op: str, *args: object) -> "Future[object]":
        """Enqueue one request; returns its future.

        Raises :class:`ServiceOverloadError` when the bounded queue is
        full — the caller is expected to back off (the service client
        does, with deterministic jitter) rather than block.
        """
        if self._closed:
            raise ServiceError("knowledge service is closed")
        if op not in self._ops:
            raise ServiceError(
                f"unknown service operation {op!r}; known: {sorted(self._ops)}"
            )
        future: "Future[object]" = Future()
        try:
            self._queue.put_nowait(_Request(op=op, args=args, future=future))
        except queue.Full:
            self._count_request(op, "shed")
            raise ServiceOverloadError(
                f"service queue full ({self.queue_size} request(s) waiting); "
                "back off and retry"
            ) from None
        self._note_depth()
        return future

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                request: _Request = item  # type: ignore[assignment]
                self._note_depth()
                if not request.future.set_running_or_notify_cancel():
                    continue
                start = time.perf_counter()
                try:
                    result = self._ops[request.op](*request.args)
                except BaseException as exc:  # noqa: BLE001 - delivered via future
                    self._count_request(request.op, "error")
                    request.future.set_exception(exc)
                else:
                    self._count_request(request.op, "ok")
                    request.future.set_result(result)
                self._observe_latency(request.op, time.perf_counter() - start)
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------
    # metrics plumbing (exact under the stats lock)
    # ------------------------------------------------------------------
    def _note_depth(self) -> None:
        if self.metrics is not None:
            self._depth_gauge.set(self._queue.qsize())

    def _count_request(self, op: str, outcome: str) -> None:
        if self.metrics is not None:
            with self._stats_lock:
                self.metrics.counter(
                    "service.requests_total", "requests by operation and outcome",
                    op=op, outcome=outcome,
                ).inc()

    def _observe_latency(self, op: str, seconds: float) -> None:
        if self.metrics is not None:
            with self._stats_lock:
                self.metrics.histogram(
                    "service.request_seconds", "request service time",
                    wallclock=True, op=op,
                ).observe(seconds)

    def _observe_shard(self, shard: KnowledgeShard, seconds: float) -> None:
        if self.metrics is not None:
            with self._stats_lock:
                self.metrics.histogram(
                    "service.shard_request_seconds", "time spent inside one shard",
                    wallclock=True, shard=shard.index,
                ).observe(seconds)

    # ------------------------------------------------------------------
    # shard ownership (a networked worker serves a subset of the shards)
    # ------------------------------------------------------------------
    def _check_owned(self, shard_index: int) -> None:
        if shard_index not in self._owned_set:
            raise ServiceError(
                f"shard {shard_index} is not owned by this service "
                f"(owns {list(self.owned_shards)}); the request was "
                "routed to the wrong shard group"
            )

    # ------------------------------------------------------------------
    # write operations (per-shard lock, epoch bump after commit)
    # ------------------------------------------------------------------
    def _op_save(self, knowledge: Knowledge) -> int:
        shard = self.shard_map.shard_for(knowledge)
        self._check_owned(shard.index)
        start = time.perf_counter()
        with shard.lock:
            local_id = shard.repository.save(knowledge)
            self.shard_map.bump_epoch(shard.index)
        self._observe_shard(shard, time.perf_counter() - start)
        global_id = encode_knowledge_id(local_id, shard.index)
        knowledge.knowledge_id = global_id
        return global_id

    def _op_save_many(self, objects: Sequence[Knowledge]) -> list[int]:
        by_shard: dict[int, list[tuple[int, Knowledge]]] = {}
        for position, knowledge in enumerate(objects):
            shard = self.shard_map.shard_for(knowledge)
            self._check_owned(shard.index)
            by_shard.setdefault(shard.index, []).append((position, knowledge))
        global_ids: list[int] = [0] * len(objects)
        for index, group in sorted(by_shard.items()):
            shard = self.shard_map.shards[index]
            start = time.perf_counter()
            with shard.lock:
                local_ids = shard.repository.save_many([k for _, k in group])
                self.shard_map.bump_epoch(index)
            self._observe_shard(shard, time.perf_counter() - start)
            for (position, knowledge), local_id in zip(group, local_ids):
                gid = encode_knowledge_id(local_id, index)
                knowledge.knowledge_id = gid
                global_ids[position] = gid
        return global_ids

    def _op_delete(self, global_id: int) -> None:
        shard, local_id = self.shard_map.shard_of(global_id)
        self._check_owned(shard.index)
        start = time.perf_counter()
        with shard.lock:
            shard.repository.delete(local_id)
            self.shard_map.bump_epoch(shard.index)
        self._observe_shard(shard, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # read operations (read-through cache)
    # ------------------------------------------------------------------
    @staticmethod
    def _freeze(knowledge: Knowledge) -> tuple[dict, int | None]:
        return knowledge_to_dict(knowledge), knowledge.knowledge_id

    @staticmethod
    def _thaw(frozen: object) -> Knowledge:
        data, global_id = frozen  # type: ignore[misc]
        knowledge = knowledge_from_dict(data)
        knowledge.knowledge_id = global_id
        return knowledge

    def _op_load(self, global_id: int) -> Knowledge:
        shard, local_id = self.shard_map.shard_of(global_id)
        self._check_owned(shard.index)
        epochs = (self.shard_map.epoch(shard.index),)
        hit, frozen = self.cache.get(("load", global_id), epochs)
        if hit:
            return self._thaw(frozen)
        start = time.perf_counter()
        with shard.lock:
            knowledge = shard.repository.load(local_id)
        self._observe_shard(shard, time.perf_counter() - start)
        knowledge.knowledge_id = global_id
        self.cache.put(("load", global_id), epochs, self._freeze(knowledge))
        return knowledge

    def _op_list_ids(self, benchmark: str | None = None) -> list[int]:
        epochs = self.shard_map.epochs()
        hit, value = self.cache.get(("list_ids", benchmark), epochs)
        if hit:
            return list(value)  # type: ignore[arg-type]
        ids: list[int] = []
        for shard in self._owned:
            start = time.perf_counter()
            with shard.lock:
                local_ids = shard.repository.list_ids(benchmark)
            self._observe_shard(shard, time.perf_counter() - start)
            ids.extend(encode_knowledge_id(i, shard.index) for i in local_ids)
        ids.sort()
        self.cache.put(("list_ids", benchmark), epochs, tuple(ids))
        return ids

    def _op_load_all(self, benchmark: str | None = None) -> list[Knowledge]:
        # One batched fetch per shard (cache-aware), not a load() per id.
        return self._op_fetch_many(self._op_list_ids(benchmark))

    def _op_fetch_many(self, global_ids: Sequence[int]) -> list[Knowledge]:
        """Batched load: cached ids are served from the cache, the
        misses of each shard are fetched with one repository round-trip
        (``fetch_many``) under that shard's lock."""
        out: dict[int, Knowledge] = {}
        misses_by_shard: dict[int, list[int]] = {}
        for global_id in dict.fromkeys(int(i) for i in global_ids):
            shard, _ = self.shard_map.shard_of(global_id)
            self._check_owned(shard.index)
            epochs = (self.shard_map.epoch(shard.index),)
            hit, frozen = self.cache.get(("load", global_id), epochs)
            if hit:
                out[global_id] = self._thaw(frozen)
            else:
                misses_by_shard.setdefault(shard.index, []).append(global_id)
        for index, group in sorted(misses_by_shard.items()):
            shard = self.shard_map.shards[index]
            epochs = (self.shard_map.epoch(index),)
            local_ids = [self.shard_map.shard_of(gid)[1] for gid in group]
            start = time.perf_counter()
            with shard.lock:
                loaded = shard.repository.fetch_many(local_ids)
            self._observe_shard(shard, time.perf_counter() - start)
            for global_id, knowledge in zip(group, loaded):
                knowledge.knowledge_id = global_id
                self.cache.put(("load", global_id), epochs, self._freeze(knowledge))
                out[global_id] = knowledge
        return [out[int(i)] for i in global_ids]

    def _op_find_by_parameter(self, key: str, value: str) -> list[int]:
        """Global ids whose ``parameters[key] == value``, across shards.

        The campaign orchestrator's exactly-once token lookup — always
        answered from the shards, never the cache: a stale answer here
        could duplicate a benchmark run.
        """
        ids: list[int] = []
        for shard in self._owned:
            start = time.perf_counter()
            with shard.lock:
                local_ids = shard.repository.find_ids_by_parameter(key, value)
            self._observe_shard(shard, time.perf_counter() - start)
            ids.extend(encode_knowledge_id(i, shard.index) for i in local_ids)
        ids.sort()
        return ids

    def _op_count(self, benchmark: str | None = None) -> int:
        epochs = self.shard_map.epochs()
        hit, value = self.cache.get(("count", benchmark), epochs)
        if hit:
            return int(value)  # type: ignore[arg-type]
        total = 0
        for shard in self._owned:
            start = time.perf_counter()
            with shard.lock:
                total += shard.repository.count(benchmark)
            self._observe_shard(shard, time.perf_counter() - start)
        self.cache.put(("count", benchmark), epochs, total)
        return total

    def _op_scan(self, query: ScanQuery) -> dict[str, object]:
        """Partial aggregate states for ``query`` over the owned shards.

        Each shard evaluates the scan down in SQL (never materialising
        knowledge objects); the per-shard states merge here, and merge
        again in the router when several shard-group workers each
        answer for their subset.  The merged partials are cached keyed
        on the canonical query payload + every owned shard's epoch.
        """
        cache_key = ("scan", json.dumps(query.to_payload(), sort_keys=True))
        epochs = self.shard_map.epochs()
        hit, value = self.cache.get(cache_key, epochs)
        if hit:
            return dict(value)  # type: ignore[arg-type]
        parts: list[dict[str, object]] = []
        for shard in self._owned:
            start = time.perf_counter()
            with shard.lock:
                parts.append(shard.repository.scan_partial(query))
            self._observe_shard(shard, time.perf_counter() - start)
        merged = merge_partial_payloads(parts)
        self.cache.put(cache_key, epochs, merged)
        return merged

    def _op_exists(self, global_id: int) -> bool:
        try:
            shard, local_id = self.shard_map.shard_of(global_id)
        except (ServiceError, PersistenceError):
            return False
        self._check_owned(shard.index)
        epochs = (self.shard_map.epoch(shard.index),)
        hit, value = self.cache.get(("exists", global_id), epochs)
        if hit:
            return bool(value)
        start = time.perf_counter()
        with shard.lock:
            present = shard.repository.exists(local_id)
        self._observe_shard(shard, time.perf_counter() - start)
        self.cache.put(("exists", global_id), epochs, present)
        return present

    # ------------------------------------------------------------------
    # administration (runs in the caller's thread, not through the queue)
    # ------------------------------------------------------------------
    def warm_up(self, limit: int | None = None) -> int:
        """Preload up to ``limit`` knowledge objects into the cache.

        Uses the COUNT fast path to skip empty shards without touching
        any rows, then loads ids in global order through the cache.
        Returns how many objects were loaded.
        """
        if self._op_count() == 0:
            return 0
        warmed = 0
        for global_id in self._op_list_ids():
            if limit is not None and warmed >= limit:
                break
            self._op_load(global_id)
            warmed += 1
        return warmed

    def stats(self) -> dict[str, object]:
        """A point-in-time operational summary (for ``repro-serve``).

        ``rows_per_shard`` is keyed by shard index (as strings: the dict
        crosses JSON on the wire) and covers only the *owned* shards, so
        a server can merge its shard-group workers' stats into one
        store-wide view without double counting.
        """
        rows: dict[str, int] = {}
        for shard in self._owned:
            with shard.lock:
                rows[str(shard.index)] = shard.repository.count()
        return {
            "shards": self.shard_map.num_shards,
            "owned_shards": list(self.owned_shards),
            "workers": len(self._workers),
            "queue_depth": self._queue.qsize(),
            "queue_size": self.queue_size,
            "cache_entries": len(self.cache),
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_hit_rate": round(self.cache.hit_rate, 4),
            "cache_evictions_stale": self.cache.evictions_stale,
            "cache_evictions_capacity": self.cache.evictions_capacity,
            "epochs": list(self.shard_map.epochs()),
            "rows_per_shard": rows,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Drain the queue, stop the workers and close every shard."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put(_STOP)
        for thread in self._workers:
            thread.join()
        self.shard_map.close()

    def __enter__(self) -> "KnowledgeService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
