"""Service client: blocking API with deterministic-jitter backoff.

The explorer and usage modules should not care whether knowledge comes
from one local SQLite file or from the sharded service — §V-C's "local
or remote" choice is a URL.  This module adds the service flavour to
the existing URL-resolution path::

    knowledge+service:///var/lib/repro/store?shards=4&workers=8&cache=256

:class:`ServiceClient` turns the service's future-based ``submit`` into
the blocking repository-shaped API (``load`` / ``load_all`` /
``list_ids`` / ``count`` / ``exists`` / ``save`` / ``save_many`` /
``delete``) that those callers already speak, and absorbs admission
control: a shed request (:class:`~repro.util.errors.
ServiceOverloadError`) is retried under a deterministic-jitter
:class:`~repro.core.resilience.RetryPolicy` — same seed, same backoff
schedule — instead of surfacing to the user.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as _FutureTimeoutError
from typing import TYPE_CHECKING, Callable, Sequence
from urllib.parse import parse_qsl

from repro.core.resilience import RetryPolicy, retry
from repro.core.service.service import KnowledgeService
from repro.core.service.shard import KnowledgeShardMap
from repro.util.errors import DeadlineError, ServiceError, ServiceOverloadError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.knowledge import Knowledge
    from repro.core.metrics import MetricsRegistry

__all__ = [
    "SERVICE_URL_SCHEME",
    "is_service_url",
    "parse_service_url",
    "open_service",
    "ServiceClient",
]

SERVICE_URL_SCHEME = "knowledge+service"

#: URL query parameters understood by :func:`parse_service_url`.
_URL_OPTIONS = ("shards", "workers", "queue", "cache")


def is_service_url(target: object) -> bool:
    """Whether ``target`` is a ``knowledge+service://`` URL."""
    return (
        isinstance(target, str)
        and target.partition("://")[0] == SERVICE_URL_SCHEME
        and "://" in target
    )


def parse_service_url(url: str) -> tuple[str, dict[str, int]]:
    """Split a service URL into ``(root_directory, options)``.

    Follows the same path convention as the ``sqlite://`` resolver
    (three slashes mean an absolute path) and validates option names so
    a typo fails loudly instead of being silently ignored.
    """
    scheme, sep, rest = url.partition("://")
    if not sep or scheme != SERVICE_URL_SCHEME:
        raise ServiceError(
            f"not a knowledge-service URL: {url!r} (expected "
            f"{SERVICE_URL_SCHEME}://...)"
        )
    path_part, _, query = rest.partition("?")
    path = path_part.lstrip("/")
    if not path:
        raise ServiceError(f"service URL {url!r} has no store directory")
    head = f"{scheme}://{path_part}"
    root = "/" + path if head.count("/") >= 3 else path
    options: dict[str, int] = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        if key not in _URL_OPTIONS:
            raise ServiceError(
                f"unknown service URL option {key!r}; known: {list(_URL_OPTIONS)}"
            )
        try:
            options[key] = int(value)
        except ValueError:
            raise ServiceError(
                f"service URL option {key}={value!r} is not an integer"
            ) from None
    return root, options


def open_service(
    target: str,
    *,
    metrics: "MetricsRegistry | None" = None,
    shards: int | None = None,
    workers: int = 4,
    queue: int = 64,
    cache: int = 128,
) -> KnowledgeService:
    """Open (or create) a knowledge service from a URL or root directory.

    URL options override the keyword defaults; an existing store's
    shard count is discovered from its manifest when ``shards`` is
    omitted.
    """
    options: dict[str, int] = {}
    root = target
    if is_service_url(target):
        root, options = parse_service_url(target)
    shard_map = KnowledgeShardMap(
        root, options.get("shards", shards), metrics=metrics
    )
    return KnowledgeService(
        shard_map,
        workers=options.get("workers", workers),
        queue_size=options.get("queue", queue),
        cache_size=options.get("cache", cache),
        metrics=metrics,
    )


def _overload_only(exc: BaseException) -> bool:
    return isinstance(exc, ServiceOverloadError)


class ServiceClient:
    """Blocking facade over :class:`KnowledgeService` with backoff.

    Only admission-control sheds are retried (they happen *before* the
    request is enqueued, so a retry can never double-apply a write);
    execution errors surface unchanged.  ``timeout_s`` bounds each wait
    on a result, raising :class:`DeadlineError` on expiry.
    """

    def __init__(
        self,
        service: KnowledgeService,
        *,
        retry_policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
        timeout_s: float | None = None,
    ) -> None:
        self.service = service
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=8, base_delay_s=0.005, max_delay_s=0.25,
            salt="service-client", retryable=_overload_only,
        )
        self.timeout_s = timeout_s
        self._sleep = sleep

    @classmethod
    def open(
        cls,
        target: str,
        *,
        metrics: "MetricsRegistry | None" = None,
        **service_options: object,
    ) -> "ServiceClient":
        """Open a client (and its embedded service) from a URL or path."""
        return cls(open_service(target, metrics=metrics, **service_options))  # type: ignore[arg-type]

    def _call(self, op: str, *args: object) -> object:
        def attempt() -> object:
            future = self.service.submit(op, *args)
            try:
                return future.result(timeout=self.timeout_s)
            except _FutureTimeoutError:
                future.cancel()
                raise DeadlineError(
                    f"service request {op!r} exceeded its "
                    f"{self.timeout_s:g}s client deadline"
                ) from None

        return retry(
            attempt, self.retry_policy, sleep=self._sleep,
            metrics=self.service.metrics, site="service-client",
        )

    # -- repository-shaped API -----------------------------------------
    def save(self, knowledge: "Knowledge") -> int:
        """Persist one knowledge object; returns its global id."""
        return self._call("save", knowledge)  # type: ignore[return-value]

    def save_many(self, objects: Sequence["Knowledge"]) -> list[int]:
        """Persist several objects (one transaction per touched shard)."""
        return self._call("save_many", list(objects))  # type: ignore[return-value]

    def load(self, knowledge_id: int) -> "Knowledge":
        """Load one knowledge object by global id."""
        return self._call("load", knowledge_id)  # type: ignore[return-value]

    def load_all(self, benchmark: str | None = None) -> "list[Knowledge]":
        """Load every stored knowledge object."""
        return self._call("load_all", benchmark)  # type: ignore[return-value]

    def fetch_many(self, ids: Sequence[int]) -> "list[Knowledge]":
        """Batched load of several objects (one round-trip per shard)."""
        return self._call("fetch_many", [int(i) for i in ids])  # type: ignore[return-value]

    def list_ids(self, benchmark: str | None = None) -> list[int]:
        """All global knowledge ids, optionally filtered by benchmark."""
        return self._call("list_ids", benchmark)  # type: ignore[return-value]

    def find_ids_by_parameter(self, key: str, value: str) -> list[int]:
        """Global ids whose ``parameters[key] == value`` (uncached)."""
        return self._call("find_by_parameter", key, value)  # type: ignore[return-value]

    def count(self, benchmark: str | None = None) -> int:
        """Number of stored knowledge objects (COUNT fast path)."""
        return self._call("count", benchmark)  # type: ignore[return-value]

    def exists(self, knowledge_id: int) -> bool:
        """Whether a global knowledge id is present."""
        return self._call("exists", knowledge_id)  # type: ignore[return-value]

    def delete(self, knowledge_id: int) -> None:
        """Delete one knowledge object by global id."""
        self._call("delete", knowledge_id)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Close the underlying service (and its shards)."""
        self.service.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
