"""Service client: blocking API over a local *or* remote transport.

The explorer and usage modules should not care whether knowledge comes
from one local SQLite file, an in-process sharded service or a server
on another host — §V-C's "local or remote" choice is a URL::

    knowledge+service:///var/lib/repro/store?shards=4&workers=8&cache=256
    knowledge+tcp://db-node:9477/?pool=4&timeout_ms=30000

Both flavours run the same code path: :class:`ServiceClient` encodes
each operation with the :mod:`repro.core.service.ops` codec, hands the
payload to a transport (:class:`~repro.core.service.ops.LocalTransport`
around an embedded :class:`~repro.core.service.service.
KnowledgeService`, or :class:`~repro.core.service.transport.
TcpTransport` speaking ``repro.wire/v1`` to ``repro-serve --listen``)
and decodes the result back into the repository-shaped blocking API
(``load`` / ``load_all`` / ``list_ids`` / ``count`` / ``exists`` /
``save`` / ``save_many`` / ``delete``).

Failures are absorbed the same way on both paths, under one
deterministic-jitter :class:`~repro.core.resilience.RetryPolicy`:

* an admission-control shed (:class:`~repro.util.errors.
  ServiceOverloadError`) is always retried — it happens before the
  request is enqueued, so a retry can never double-apply;
* a *retryable* transport fault (connection refused/reset, short read,
  timeout — :class:`~repro.util.errors.ServiceTransportError` with
  ``transient=True``) is retried too; the transport marks post-send
  faults on mutating ops non-retryable, and those surface;
* retries are counted per kind under ``service.client.retries_total``
  and every backoff sleep is clamped to the per-request ``timeout_s``
  deadline, so a retrying client can never overshoot its budget.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Sequence
from urllib.parse import parse_qsl

from repro.core.resilience import Deadline, RetryPolicy, retry
from repro.core.service.ops import LocalTransport, decode_result, encode_args
from repro.core.service.service import KnowledgeService
from repro.core.service.shard import KnowledgeShardMap
from repro.core.service.transport import TcpTransport
from repro.util.errors import (
    DeadlineError,
    ServiceError,
    ServiceOverloadError,
    ServiceTransportError,
    WireProtocolError,
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.knowledge import Knowledge
    from repro.core.metrics import MetricsRegistry
    from repro.core.persistence.scan import ScanQuery, ScanResult

__all__ = [
    "SERVICE_URL_SCHEME",
    "TCP_URL_SCHEME",
    "is_service_url",
    "is_tcp_url",
    "parse_service_url",
    "parse_tcp_url",
    "open_service",
    "ServiceClient",
]

SERVICE_URL_SCHEME = "knowledge+service"
TCP_URL_SCHEME = "knowledge+tcp"

#: URL query parameters understood by :func:`parse_service_url`.
_URL_OPTIONS = ("shards", "workers", "queue", "cache")

#: URL query parameters understood by :func:`parse_tcp_url`.
_TCP_URL_OPTIONS = ("pool", "timeout_ms", "connect_timeout_ms")


def _has_scheme(target: object, scheme: str) -> bool:
    return (
        isinstance(target, str)
        and "://" in target
        and target.partition("://")[0] == scheme
    )


def is_service_url(target: object) -> bool:
    """Whether ``target`` is a ``knowledge+service://`` URL."""
    return _has_scheme(target, SERVICE_URL_SCHEME)


def is_tcp_url(target: object) -> bool:
    """Whether ``target`` is a ``knowledge+tcp://`` URL."""
    return _has_scheme(target, TCP_URL_SCHEME)


def parse_service_url(url: str) -> tuple[str, dict[str, int]]:
    """Split a service URL into ``(root_directory, options)``.

    Follows the same path convention as the ``sqlite://`` resolver
    (three slashes mean an absolute path) and validates option names so
    a typo fails loudly instead of being silently ignored.
    """
    scheme, sep, rest = url.partition("://")
    if not sep or scheme != SERVICE_URL_SCHEME:
        raise ServiceError(
            f"not a knowledge-service URL: {url!r} (expected "
            f"{SERVICE_URL_SCHEME}://...)"
        )
    path_part, _, query = rest.partition("?")
    path = path_part.lstrip("/")
    if not path:
        raise ServiceError(f"service URL {url!r} has no store directory")
    head = f"{scheme}://{path_part}"
    root = "/" + path if head.count("/") >= 3 else path
    options: dict[str, int] = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        if key not in _URL_OPTIONS:
            raise ServiceError(
                f"unknown service URL option {key!r}; known: {list(_URL_OPTIONS)}"
            )
        try:
            options[key] = int(value)
        except ValueError:
            raise ServiceError(
                f"service URL option {key}={value!r} is not an integer"
            ) from None
    return root, options


def parse_tcp_url(url: str) -> tuple[str, int, dict[str, int]]:
    """Split a ``knowledge+tcp://host:port/`` URL into its parts."""
    scheme, sep, rest = url.partition("://")
    if not sep or scheme != TCP_URL_SCHEME:
        raise ServiceError(
            f"not a knowledge-tcp URL: {url!r} (expected {TCP_URL_SCHEME}://host:port/)"
        )
    authority, _, tail = rest.partition("/")
    path, _, query = tail.partition("?")
    if path:
        raise ServiceError(
            f"knowledge-tcp URL {url!r} must not carry a path — the server "
            "chose the store when it started"
        )
    host, colon, port_text = authority.rpartition(":")
    if not colon or not host:
        raise ServiceError(
            f"knowledge-tcp URL {url!r} must name host:port "
            f"(e.g. {TCP_URL_SCHEME}://127.0.0.1:9477/)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ServiceError(
            f"knowledge-tcp URL port {port_text!r} is not an integer"
        ) from None
    options: dict[str, int] = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        if key not in _TCP_URL_OPTIONS:
            raise ServiceError(
                f"unknown knowledge-tcp URL option {key!r}; "
                f"known: {list(_TCP_URL_OPTIONS)}"
            )
        try:
            options[key] = int(value)
        except ValueError:
            raise ServiceError(
                f"knowledge-tcp URL option {key}={value!r} is not an integer"
            ) from None
    return host, port, options


def open_service(
    target: str,
    *,
    metrics: "MetricsRegistry | None" = None,
    shards: int | None = None,
    workers: int = 4,
    queue: int = 64,
    cache: int = 128,
) -> KnowledgeService:
    """Open (or create) an embedded knowledge service from a URL or path.

    URL options override the keyword defaults; an existing store's
    shard count is discovered from its manifest when ``shards`` is
    omitted.  (Remote ``knowledge+tcp://`` URLs have no embedded
    service — open those with :meth:`ServiceClient.open`.)
    """
    options: dict[str, int] = {}
    root = target
    if is_service_url(target):
        root, options = parse_service_url(target)
    shard_map = KnowledgeShardMap(
        root, options.get("shards", shards), metrics=metrics
    )
    return KnowledgeService(
        shard_map,
        workers=options.get("workers", workers),
        queue_size=options.get("queue", queue),
        cache_size=options.get("cache", cache),
        metrics=metrics,
    )


def _default_retryable(exc: BaseException) -> bool:
    """Overload sheds always; transport faults when marked transient."""
    if isinstance(exc, ServiceOverloadError):
        return True
    return isinstance(exc, ServiceTransportError) and bool(
        getattr(exc, "transient", False)
    )


def _typed(exc: Exception, code: str) -> Exception:
    exc.wire_code = code  # type: ignore[attr-defined]
    return exc


def _server_retry_after(exc: BaseException) -> float | None:
    """Honor a server-supplied ``retry_after`` hint over our own schedule.

    ``quarantine`` and ``crash_loop`` error frames carry the server's
    remaining breaker window as ``retry_after_s`` — retrying sooner is
    guaranteed to bounce off the breaker, and retrying much later wastes
    the request's deadline.  The :func:`~repro.core.resilience.retry`
    deadline clamp still applies on top.
    """
    hint = getattr(exc, "retry_after_s", None)
    if isinstance(hint, (int, float)) and hint > 0:
        return float(hint)
    return None


def _retry_kind(exc: BaseException) -> str:
    if isinstance(exc, ServiceOverloadError):
        return "overload"
    if isinstance(exc, ServiceTransportError):
        return "transport"
    return "other"


class ServiceClient:
    """Blocking facade over a service transport, with backoff.

    Accepts either an embedded :class:`KnowledgeService` (wrapped in a
    :class:`LocalTransport`) or any transport object exposing
    ``call(op, payload, timeout_s=)`` / ``close()``.  ``timeout_s`` is
    a *per-request deadline*: it bounds each transport wait **and**
    clamps every retry backoff sleep, raising :class:`DeadlineError`
    once the budget is spent.
    """

    def __init__(
        self,
        service: "KnowledgeService | LocalTransport | TcpTransport",
        *,
        retry_policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
        timeout_s: float | None = None,
    ) -> None:
        if isinstance(service, KnowledgeService):
            self.transport = LocalTransport(service)
        else:
            self.transport = service  # type: ignore[assignment]
        self.service: "KnowledgeService | None" = getattr(
            self.transport, "service", None
        )
        self.metrics = getattr(self.transport, "metrics", None)
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=8, base_delay_s=0.005, max_delay_s=0.25,
            salt="service-client", retryable=_default_retryable,
        )
        self.timeout_s = timeout_s
        self._sleep = sleep

    @classmethod
    def open(
        cls,
        target: str,
        *,
        metrics: "MetricsRegistry | None" = None,
        retry_policy: RetryPolicy | None = None,
        timeout_s: float | None = None,
        **service_options: object,
    ) -> "ServiceClient":
        """Open a client from a URL or path — embedded or remote.

        ``knowledge+tcp://host:port/`` dials a running server;
        everything else opens an embedded service in this process.
        """
        if is_tcp_url(target):
            host, port, options = parse_tcp_url(target)
            transport = TcpTransport(
                host, port,
                pool_size=options.get("pool", 4),
                timeout_s=(
                    options["timeout_ms"] / 1000.0
                    if "timeout_ms" in options else 30.0
                ),
                connect_timeout_s=(
                    options["connect_timeout_ms"] / 1000.0
                    if "connect_timeout_ms" in options else 5.0
                ),
                metrics=metrics,
            )
            return cls(transport, retry_policy=retry_policy, timeout_s=timeout_s)
        return cls(
            open_service(target, metrics=metrics, **service_options),  # type: ignore[arg-type]
            retry_policy=retry_policy,
            timeout_s=timeout_s,
        )

    # ------------------------------------------------------------------
    # one code path: encode -> transport (with retry) -> decode
    # ------------------------------------------------------------------
    def _count_retry(self, exc: BaseException) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "service.client.retries_total",
                "client retries by failure kind", kind=_retry_kind(exc),
            ).inc()

    def _call(self, op: str, *args: object) -> object:
        payload = encode_args(op, args)
        deadline = Deadline(self.timeout_s) if self.timeout_s is not None else None

        def attempt() -> dict[str, object]:
            remaining: float | None = None
            if deadline is not None:
                remaining = deadline.remaining_s
                if remaining <= 0:
                    raise DeadlineError(
                        f"service request {op!r} exceeded its "
                        f"{self.timeout_s:g}s client deadline"
                    )
            return self.transport.call(op, payload, timeout_s=remaining)

        def on_retry(attempt_n: int, exc: BaseException, delay_s: float) -> None:
            self._count_retry(exc)

        result = retry(
            attempt, self.retry_policy, sleep=self._sleep, on_retry=on_retry,
            deadline=deadline, metrics=self.metrics, site="service-client",
            delay_override=_server_retry_after,
        )
        try:
            return decode_result(op, result)  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as exc:
            # A response that parsed as JSON but no longer has the shape
            # the codec promised (e.g. a corrupted-in-flight frame whose
            # mangled bytes still decode) is a protocol fault, not a
            # caller bug — surface it as the typed wire error.
            raise _typed(
                WireProtocolError(
                    f"malformed {op!r} result payload from the service: {exc!r}"
                ),
                "bad-frame",
            ) from exc

    # -- repository-shaped API -----------------------------------------
    def save(self, knowledge: "Knowledge") -> int:
        """Persist one knowledge object; returns its global id."""
        global_id = int(self._call("save", knowledge))  # type: ignore[arg-type]
        knowledge.knowledge_id = global_id
        return global_id

    def save_many(self, objects: Sequence["Knowledge"]) -> list[int]:
        """Persist several objects (one transaction per touched shard)."""
        batch = list(objects)
        ids: list[int] = self._call("save_many", batch)  # type: ignore[assignment]
        for knowledge, global_id in zip(batch, ids):
            knowledge.knowledge_id = global_id
        return ids

    def load(self, knowledge_id: int) -> "Knowledge":
        """Load one knowledge object by global id."""
        return self._call("load", knowledge_id)  # type: ignore[return-value]

    def load_all(self, benchmark: str | None = None) -> "list[Knowledge]":
        """Load every stored knowledge object."""
        return self._call("load_all", benchmark)  # type: ignore[return-value]

    def fetch_many(self, ids: Sequence[int]) -> "list[Knowledge]":
        """Batched load of several objects (one round-trip per shard)."""
        return self._call("fetch_many", [int(i) for i in ids])  # type: ignore[return-value]

    def list_ids(self, benchmark: str | None = None) -> list[int]:
        """All global knowledge ids, optionally filtered by benchmark."""
        return self._call("list_ids", benchmark)  # type: ignore[return-value]

    def find_ids_by_parameter(self, key: str, value: str) -> list[int]:
        """Global ids whose ``parameters[key] == value`` (uncached)."""
        return self._call("find_by_parameter", key, value)  # type: ignore[return-value]

    def count(self, benchmark: str | None = None) -> int:
        """Number of stored knowledge objects (COUNT fast path)."""
        return self._call("count", benchmark)  # type: ignore[return-value]

    def exists(self, knowledge_id: int) -> bool:
        """Whether a global knowledge id is present."""
        return self._call("exists", knowledge_id)  # type: ignore[return-value]

    def delete(self, knowledge_id: int) -> None:
        """Delete one knowledge object by global id."""
        self._call("delete", knowledge_id)

    def scan(self, query: "ScanQuery") -> "ScanResult":
        """Run a columnar aggregate scan across every shard.

        Only mergeable partial aggregate states cross the transport —
        per shard-group worker on the TCP path, merged by the router
        and finalized here — so a fleet-wide percentile table costs a
        few KiB of state on the wire instead of every knowledge object.
        Same results as ``KnowledgeRepository.scan`` on the same rows.
        """
        from repro.core.persistence.scan import finalize_partials

        partials = self._call("scan", query)
        return finalize_partials(query, partials, source="service")  # type: ignore[arg-type]

    # -- service-level introspection -----------------------------------
    def stats(self) -> dict[str, object]:
        """Operational stats of the backing service (local or remote)."""
        return self._call("stats")  # type: ignore[return-value]

    def ping(self) -> bool:
        """Round-trip liveness probe (True, or a typed error raised)."""
        self._call("ping")
        return True

    def health(self) -> dict[str, object]:
        """Per-worker liveness and supervision state.

        Against a ``repro-serve`` server: status, per-worker pid,
        breaker state, shards owned, respawn count and last heal time.
        Against an embedded service: a minimal healthy stub.
        """
        return self._call("health")  # type: ignore[return-value]

    @property
    def server_info(self) -> dict[str, object]:
        """What the transport negotiated on connect (empty if unknown)."""
        return dict(getattr(self.transport, "server_info", {}) or {})

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Close the transport (and an embedded service's shards)."""
        self.transport.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
