"""Client-side TCP transport for ``knowledge+tcp://`` URLs.

:class:`TcpTransport` gives :class:`~repro.core.service.client.
ServiceClient` the same ``call(op, payload)`` surface as the in-process
:class:`~repro.core.service.ops.LocalTransport`, but over a bounded
pool of ``repro.wire/v1`` connections to a ``repro-serve --listen``
server:

* **bounded pool** — at most ``pool_size`` concurrent connections;
  idle sockets are reused, a dead one is discarded and redialed.
* **version negotiation** — every new connection opens with ``hello``
  offering this build's protocols; a server that cannot speak any of
  them answers a typed ``version-mismatch`` error and the dial fails
  loudly instead of misparsing frames later.
* **typed transport faults** — connection refused/reset, short reads
  and timeouts raise :class:`~repro.util.errors.ServiceTransportError`.
  Faults *before* the request was written are always retryable; faults
  after a **mutating** op (``save``/``save_many``/``delete``) left this
  process are not — the server may have committed, and retrying could
  double-apply.  Typed error frames re-raise as their registered
  exception classes (an overload shed by a remote worker is still a
  :class:`~repro.util.errors.ServiceOverloadError` here).
* **endpoint breaker** — repeated transport faults trip a circuit
  breaker so a dead server costs one fast typed error, not a connect
  timeout per request.
* **metrics** — dials, frames, bytes and per-op round-trip latency are
  recorded under the same ``service.transport.*`` family the server
  uses, so one report reads both sides.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from typing import TYPE_CHECKING

from repro.core.resilience import CircuitBreaker
from repro.core.service.ops import MUTATING_OPS
from repro.core.service.wire import (
    MAX_FRAME_BYTES,
    PROTOCOL,
    TruncatedFrameError,
    WireProtocolError,
    raise_wire_error,
    read_frame,
    write_frame,
)
from repro.util.errors import ConfigurationError, ServiceError, ServiceTransportError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.metrics import MetricsRegistry

__all__ = ["TcpTransport"]


def _typed(exc: Exception, code: str) -> Exception:
    exc.wire_code = code  # type: ignore[attr-defined]
    return exc


class TcpTransport:
    """Pooled ``repro.wire/v1`` client for one server endpoint."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool_size: int = 4,
        timeout_s: float | None = 30.0,
        connect_timeout_s: float = 5.0,
        max_frame: int = MAX_FRAME_BYTES,
        metrics: "MetricsRegistry | None" = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if pool_size < 1:
            raise ConfigurationError(f"pool_size must be >= 1, got {pool_size}")
        self.host = host
        self.port = int(port)
        self.pool_size = pool_size
        self.timeout_s = timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.max_frame = max_frame
        self.metrics = metrics
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=3, reset_timeout_s=1.0,
            metrics=metrics, name=f"tcp-{host}:{port}",
        )
        self.server_info: dict[str, object] = {}
        self._slots = threading.BoundedSemaphore(pool_size)
        self._idle: "deque[socket.socket]" = deque()
        self._lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        self._seq = 0
        self._closed = False

    # ------------------------------------------------------------------
    # connection pool
    # ------------------------------------------------------------------
    def _dial(self) -> socket.socket:
        """Open one connection and negotiate the protocol version."""
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s
            )
        except OSError as exc:
            raise ServiceTransportError(
                f"cannot connect to knowledge server {self.host}:{self.port}: "
                f"{exc}",
                retryable=True,
            ) from exc
        self._count("service.transport.connections_total",
                    "server connections dialed")
        try:
            write_frame(
                sock,
                {"id": 0, "op": "hello", "args": {"protocols": [PROTOCOL]}},
                max_frame=self.max_frame,
            )
            response = read_frame(sock, max_frame=self.max_frame)
        except (OSError, WireProtocolError) as exc:
            sock.close()
            raise ServiceTransportError(
                f"protocol negotiation with {self.host}:{self.port} failed: {exc}",
                retryable=isinstance(exc, OSError),
            ) from exc
        if response is None:
            sock.close()
            raise ServiceTransportError(
                f"server {self.host}:{self.port} closed the connection "
                "during protocol negotiation",
                retryable=True,
            )
        if not response.get("ok"):
            sock.close()
            error = response.get("error")
            raise_wire_error(error if isinstance(error, dict) else {})
        info = response.get("result")
        info = info if isinstance(info, dict) else {}
        if info.get("protocol") != PROTOCOL:
            sock.close()
            raise _typed(
                WireProtocolError(
                    f"server {self.host}:{self.port} negotiated protocol "
                    f"{info.get('protocol')!r}; this client speaks {PROTOCOL}"
                ),
                "version-mismatch",
            )
        self.server_info = info
        return sock

    def _checkout(self, timeout_s: float | None) -> socket.socket:
        wait = timeout_s if timeout_s is not None else self.connect_timeout_s * 4
        if not self._slots.acquire(timeout=wait):
            raise ServiceTransportError(
                f"connection pool to {self.host}:{self.port} exhausted "
                f"after {wait:g}s",
                retryable=True,
            )
        try:
            with self._lock:
                if self._idle:
                    return self._idle.popleft()
            try:
                return self._dial()
            except BaseException:
                # A failed dial is an endpoint fault: it must settle the
                # breaker (a claimed half-open probe that records neither
                # success nor failure would quarantine the endpoint
                # forever).  Pool exhaustion above is local and does not.
                self.breaker.record_failure()
                raise
        except BaseException:
            self._slots.release()
            raise

    def _checkin(self, sock: socket.socket, *, reusable: bool) -> None:
        if reusable and not self._closed:
            with self._lock:
                self._idle.append(sock)
        else:
            try:
                sock.close()
            except OSError:
                pass
        self._slots.release()

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def call(
        self, op: str, payload: dict[str, object], *, timeout_s: float | None = None
    ) -> dict[str, object]:
        """One wire round-trip; raises typed errors (never hangs forever)."""
        if self._closed:
            raise ServiceError("tcp transport is closed")
        if not self.breaker.allow():
            exc = ServiceTransportError(
                f"knowledge server {self.host}:{self.port} is quarantined "
                "by the client's circuit breaker after repeated transport "
                "faults; backing off",
                retryable=True,
            )
            # Same contract as a server-sent quarantine frame: tell the
            # retry loop exactly how long the breaker window has left.
            exc.retry_after_s = self.breaker.retry_after_s
            raise _typed(exc, "quarantine")
        effective = timeout_s if timeout_s is not None else self.timeout_s
        start = time.perf_counter()
        sock = self._checkout(effective)  # transport errors here are pre-send
        with self._lock:
            self._seq += 1
            request_id = self._seq
        sent = False
        try:
            sock.settimeout(effective)
            body = {"id": request_id, "op": op, "args": payload}
            sent_bytes = write_frame(sock, body, max_frame=self.max_frame)
            sent = True
            self._count_frame("out", sent_bytes)
            received = [0]
            response = read_frame(
                sock, max_frame=self.max_frame,
                on_bytes=lambda n: received.__setitem__(0, n),
            )
        except WireProtocolError as exc:
            # The stream is desynchronized or the server sent garbage —
            # the socket is unusable either way.
            self.breaker.record_failure()
            self._checkin(sock, reusable=False)
            if isinstance(exc, TruncatedFrameError):
                raise ServiceTransportError(
                    f"server {self.host}:{self.port} disconnected mid-frame "
                    f"during {op!r}",
                    retryable=op not in MUTATING_OPS,
                ) from exc
            raise
        except OSError as exc:
            self.breaker.record_failure()
            self._checkin(sock, reusable=False)
            raise ServiceTransportError(
                f"transport fault during {op!r} to {self.host}:{self.port}: "
                f"{exc}",
                retryable=(not sent) or op not in MUTATING_OPS,
            ) from exc
        if response is None:
            self.breaker.record_failure()
            self._checkin(sock, reusable=False)
            raise ServiceTransportError(
                f"server {self.host}:{self.port} closed the connection "
                f"instead of answering {op!r}",
                retryable=op not in MUTATING_OPS,
            )
        self._count_frame("in", received[0])
        self._observe_op(op, time.perf_counter() - start)
        if response.get("id") != request_id:
            self.breaker.record_failure()
            self._checkin(sock, reusable=False)
            raise _typed(
                WireProtocolError(
                    f"server answered request {response.get('id')!r} "
                    f"while {request_id!r} was in flight"
                ),
                "bad-frame",
            )
        self._checkin(sock, reusable=True)
        self.breaker.record_success()  # the endpoint answered, typed or not
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        error = response.get("error")
        raise_wire_error(error if isinstance(error, dict) else {})
        raise AssertionError("raise_wire_error always raises")  # pragma: no cover

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _count(self, name: str, help_text: str, **labels: object) -> None:
        if self.metrics is not None:
            with self._metrics_lock:
                self.metrics.counter(name, help_text, **labels).inc()

    def _count_frame(self, direction: str, nbytes: int) -> None:
        if self.metrics is None:
            return
        with self._metrics_lock:
            self.metrics.counter(
                "service.transport.frames_total",
                "wire frames by direction", direction=direction,
            ).inc()
            self.metrics.counter(
                "service.transport.bytes_total",
                "wire bytes by direction", direction=direction,
            ).inc(nbytes)

    def _observe_op(self, op: str, seconds: float) -> None:
        if self.metrics is None:
            return
        with self._metrics_lock:
            self.metrics.histogram(
                "service.transport.request_seconds",
                "wire round-trip time seen by the client",
                wallclock=True, op=op,
            ).observe(seconds)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every pooled connection (in-flight calls finish first)."""
        self._closed = True
        with self._lock:
            idle = list(self._idle)
            self._idle.clear()
        for sock in idle:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
