"""Read-through result cache with epoch-based invalidation.

The knowledge service sits between many readers and a handful of
SQLite shards; most explorer traffic re-reads the same objects, so a
small LRU in front of the shards absorbs the hot set.  Invalidation is
*epoch-based*: every committed shard write bumps that shard's epoch
(:meth:`~repro.core.service.shard.KnowledgeShardMap.bump_epoch`), and a
cache entry remembers the epoch vector it was filled under.  A lookup
whose stored epochs no longer match the live epochs evicts the entry
lazily and reports a miss — no write ever has to enumerate which cached
keys it clobbered.

All mutation happens under one internal lock, which also makes the
hit/miss/eviction counters exact (they are mirrored into
``service.cache_*`` metric families when a registry is attached).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.metrics import MetricsRegistry

__all__ = ["EpochLRUCache"]


class EpochLRUCache:
    """Bounded LRU keyed by request, invalidated by shard epochs.

    ``capacity=0`` disables caching (every lookup misses, stores are
    dropped) so the service can run cache-less without special-casing.
    """

    def __init__(
        self, capacity: int, metrics: "MetricsRegistry | None" = None
    ) -> None:
        if capacity < 0:
            raise ConfigurationError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, tuple[tuple[int, ...], object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions_stale = 0
        self.evictions_capacity = 0
        if metrics is not None:
            # Pre-create the families single-threaded so concurrent
            # workers only ever *increment* existing series.
            self._hits = metrics.counter(
                "service.cache_hits_total", "result-cache lookups served from memory"
            )
            self._misses = metrics.counter(
                "service.cache_misses_total", "result-cache lookups that hit a shard"
            )
            self._stale = metrics.counter(
                "service.cache_evictions_total", "result-cache evictions", reason="stale"
            )
            self._capacity_evicted = metrics.counter(
                "service.cache_evictions_total", "result-cache evictions", reason="capacity"
            )
            self._size = metrics.gauge(
                "service.cache_size", "entries currently cached"
            )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, epochs: tuple[int, ...]) -> tuple[bool, object]:
        """Look up ``key`` as of ``epochs``; returns ``(hit, value)``.

        A stored entry whose epoch vector differs from ``epochs`` is
        stale: it is evicted on the spot and the lookup is a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == epochs:
                self._entries.move_to_end(key)
                self.hits += 1
                if self.metrics is not None:
                    self._hits.inc()
                return True, entry[1]
            if entry is not None:  # present but written-over: lazy eviction
                del self._entries[key]
                self.evictions_stale += 1
                if self.metrics is not None:
                    self._stale.inc()
                    self._size.set(len(self._entries))
            self.misses += 1
            if self.metrics is not None:
                self._misses.inc()
            return False, None

    def put(self, key: Hashable, epochs: tuple[int, ...], value: object) -> None:
        """Store ``key`` as observed under ``epochs``."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = (epochs, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions_capacity += 1
                if self.metrics is not None:
                    self._capacity_evicted.inc()
            if self.metrics is not None:
                self._size.set(len(self._entries))

    def clear(self) -> None:
        """Drop every entry (counts nothing as an eviction)."""
        with self._lock:
            self._entries.clear()
            if self.metrics is not None:
                self._size.set(0)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any traffic)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
