"""Resilience primitives shared by every layer of the knowledge cycle.

The paper pitches the cycle as an *automated, long-running* workflow on
a production cluster, where broken nodes and degraded iterations are
first-class phenomena (Figs. 5-6) — so failures must be data, not
aborts.  Three primitives cover the recurring shapes:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* jitter: the sleep schedule for a given seed is
  bit-reproducible, matching the repository-wide determinism contract.
* :class:`Deadline` — a wall-time budget handed to a phase; cooperative
  code calls :meth:`Deadline.check` at convenient points and the
  pipeline enforces it post-hoc on phase boundaries.
* :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine that stops hammering a failing dependency and probes it again
  after a cool-down.

:func:`retry` ties a policy to a callable; the persistence layer
(:class:`~repro.core.persistence.backend.ResilientBackend`) and the
phase pipeline (:class:`~repro.core.pipeline.PhasePipeline`) both build
on these.  Clocks and sleeps are injectable everywhere so tests run in
zero wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

from repro.util.errors import ConfigurationError, DeadlineError
from repro.util.rng import stream

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids a cycle)
    from repro.core.metrics import MetricsRegistry

__all__ = [
    "default_retryable",
    "RetryPolicy",
    "retry",
    "Deadline",
    "CircuitBreaker",
]


def default_retryable(exc: BaseException) -> bool:
    """Retry exactly the errors that declare themselves transient.

    Injected hard faults (:mod:`repro.pfs.faults`) and database errors
    wrapped by the persistence layer carry a ``transient`` attribute;
    anything else — assertion failures, configuration errors, parse
    errors — is permanent and retrying would only repeat it.
    """
    return bool(getattr(exc, "transient", False))


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    try plus up to two retries.  The delay before retry *n* (1-based)
    is ``base_delay_s * multiplier**(n-1)`` capped at ``max_delay_s``,
    perturbed by a jitter factor drawn from the seed-derived stream
    ``(seed, "retry-jitter", salt, n)`` — so two runs with the same
    seed *and* salt sleep the exact same schedule, while different
    seeds or salts decorrelate.  ``salt`` identifies the call site
    (``"phase:generation"``, ``"persistence"`` …): without it every
    consumer sharing the default seed would sleep an *identical*
    schedule — exactly the thundering herd jitter exists to prevent.
    The phase pipeline and the resilient persistence backend salt their
    policies automatically when the salt is left empty.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1
    seed: int = 42
    salt: str = ""
    retryable: Callable[[BaseException], bool] = field(default=default_retryable)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1), got {self.jitter}")

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether this policy considers ``exc`` worth another attempt."""
        return self.retryable(exc)

    def with_salt(self, salt: str) -> "RetryPolicy":
        """A copy of this policy whose jitter stream is keyed by ``salt``."""
        return replace(self, salt=salt)

    def delay_s(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        base = min(self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s)
        if self.jitter == 0.0 or base == 0.0:
            return base
        u = stream(self.seed, "retry-jitter", self.salt, attempt).random()
        return base * (1.0 + self.jitter * (2.0 * u - 1.0))

    def delays_s(self) -> list[float]:
        """The full deterministic sleep schedule (one entry per retry)."""
        return [self.delay_s(n) for n in range(1, self.max_attempts)]


def retry(
    fn: Callable[[], object],
    policy: RetryPolicy,
    *,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
    deadline: "Deadline | None" = None,
    metrics: "MetricsRegistry | None" = None,
    site: str = "retry",
    delay_override: Callable[[BaseException], float | None] | None = None,
):
    """Call ``fn`` under ``policy``; returns its result or re-raises.

    ``on_retry(attempt, exc, delay_s)`` fires before each backoff sleep.
    A ``deadline`` stops retrying (re-raising the last error) once the
    budget is spent, even if attempts remain — and every backoff sleep
    is *clamped* to the remaining budget, so retrying can never
    overshoot the deadline (sleeping the full exponential delay with
    0.1 s left used to blow the budget by the whole delay).  With a
    ``metrics`` registry, retries and backoff totals are counted under
    the ``site`` label.

    ``delay_override(exc)`` lets the *failure itself* dictate the next
    backoff: when it returns a non-None number of seconds, that replaces
    the policy's exponential delay for this one retry (the deadline
    clamp still applies).  The service client uses this to honor a
    server-supplied ``retry_after`` hint on ``quarantine``/``crash_loop``
    errors — the server knows its breaker window; the client's own
    schedule is just a guess.
    """
    attempt = 1
    while True:
        try:
            return fn()
        except BaseException as exc:
            if attempt >= policy.max_attempts or not policy.is_retryable(exc):
                raise
            delay = policy.delay_s(attempt)
            if delay_override is not None:
                hinted = delay_override(exc)
                if hinted is not None and hinted >= 0:
                    delay = hinted
            if deadline is not None:
                remaining = deadline.remaining_s
                if remaining <= 0:
                    # Budget spent: re-raise immediately, no parting sleep.
                    raise
                delay = min(delay, remaining)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if metrics is not None:
                metrics.counter(
                    "resilience.retries_total", "retries performed", site=site
                ).inc()
                metrics.counter(
                    "resilience.backoff_seconds_total",
                    "deterministic backoff slept", site=site,
                ).inc(delay)
            sleep(delay)
            attempt += 1


class Deadline:
    """A wall-time budget with an injectable clock.

    ``budget_s=None`` means unlimited (every query says there is time
    left), so callers can thread one object through unconditionally.
    """

    def __init__(
        self,
        budget_s: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_s is not None and budget_s <= 0:
            raise ConfigurationError(f"deadline budget must be positive, got {budget_s}")
        self.budget_s = budget_s
        self._clock = clock
        self._start = clock()

    @property
    def elapsed_s(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self._start

    @property
    def remaining_s(self) -> float:
        """Seconds left in the budget (``inf`` when unlimited)."""
        if self.budget_s is None:
            return float("inf")
        return self.budget_s - self.elapsed_s

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.remaining_s <= 0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineError` if the budget is spent."""
        if self.expired:
            raise DeadlineError(
                f"{what} exceeded its {self.budget_s:g}s deadline "
                f"({self.elapsed_s:.3f}s elapsed)"
            )


#: Numeric encoding of breaker states for the state gauge.
_STATE_CODES = {"closed": 0.0, "half-open": 1.0, "open": 2.0}


class CircuitBreaker:
    """Closed / open / half-open failure gate with an injectable clock.

    ``record_failure`` moves the breaker to OPEN after
    ``failure_threshold`` consecutive failures; while OPEN, ``allow()``
    is false.  Once ``reset_timeout_s`` has elapsed the breaker becomes
    HALF_OPEN and admits exactly *one* in-flight probe per half-open
    window: the first ``allow()`` claims the probe slot and further
    calls are rejected until ``record_success``/``record_failure``
    reports the probe's outcome, closing or re-opening the circuit.
    (Admitting every caller while half-open would stampede the very
    dependency the breaker is protecting.)  ``allow()`` therefore has a
    side effect in HALF_OPEN; use :attr:`state` for a pure peek.

    With a ``metrics`` registry, every state transition is counted in
    ``resilience.breaker_transitions_total{name,from,to}`` and the
    current state is mirrored in ``resilience.breaker_state{name}``
    (0 = closed, 1 = half-open, 2 = open).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: "MetricsRegistry | None" = None,
        name: str = "breaker",
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s < 0:
            raise ConfigurationError(
                f"reset_timeout_s must be >= 0, got {reset_timeout_s}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.name = name
        self.metrics = metrics
        self._clock = clock
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probe_in_flight = False

    def _transition(self, new_state: str) -> None:
        old = self._state
        self._state = new_state
        if old != new_state:
            self._probe_in_flight = False  # each window gets a fresh probe slot
            if self.metrics is not None:
                self.metrics.counter(
                    "resilience.breaker_transitions_total",
                    "circuit-breaker state transitions",
                    name=self.name, **{"from": old, "to": new_state},
                ).inc()
                self.metrics.gauge(
                    "resilience.breaker_state",
                    "0=closed 1=half-open 2=open", name=self.name,
                ).set(_STATE_CODES[new_state])

    @property
    def state(self) -> str:
        """Current state; OPEN decays to HALF_OPEN after the timeout.

        Reading the state never claims the half-open probe slot — only
        :meth:`allow` does.
        """
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._transition(self.HALF_OPEN)
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures recorded since the last success."""
        return self._failures

    @property
    def retry_after_s(self) -> float:
        """Seconds until an OPEN circuit admits its half-open probe.

        0.0 while CLOSED or HALF_OPEN — there is nothing to wait for.
        This is the honest ``retry_after`` hint a server can hand a
        client: retrying sooner is guaranteed to bounce off ``allow()``.
        """
        if self._state != self.OPEN:
            return 0.0
        return max(
            0.0, self.reset_timeout_s - (self._clock() - self._opened_at)
        )

    def allow(self) -> bool:
        """Whether a call may proceed (CLOSED, or *the* HALF_OPEN probe).

        While HALF_OPEN only the first caller is admitted; everyone
        else is rejected until the probe reports via
        ``record_success``/``record_failure``.
        """
        state = self.state
        if state == self.OPEN:
            return False
        if state == self.HALF_OPEN:
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
        return True

    def record_success(self) -> None:
        """A call succeeded: close the circuit and forget failures."""
        self._failures = 0
        self._transition(self.CLOSED)
        self._probe_in_flight = False

    def record_failure(self) -> None:
        """A call failed: trip OPEN at the threshold or on a failed probe."""
        self._failures += 1
        if self.state == self.HALF_OPEN or self._failures >= self.failure_threshold:
            self._transition(self.OPEN)
            self._opened_at = self._clock()
        self._probe_in_flight = False
