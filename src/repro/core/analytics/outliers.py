"""Outlier mining over the fleet (Treasure-Trove + usage example II).

Two miners:

* :func:`score_outliers` — columnar: z-scores over the IO500 total
  scores straight from :meth:`fetch_score_columns`, no objects.
* :func:`run_outliers` — object-level: the existing
  :class:`~repro.core.usage.anomaly.RunComparisonDetector` over
  comparable IOR/mdtest runs, fed by the (now batched) ``load_all``.
  The scan layer narrows *which* runs to materialise; the detector
  then works at full fidelity on that shortlist.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.knowledge import Knowledge
from repro.core.persistence.io500_repo import IO500Repository
from repro.core.usage.anomaly import RunComparisonDetector
from repro.util.stats import zscores

__all__ = ["score_outliers", "run_outliers"]


def score_outliers(
    io5: IO500Repository, *, threshold_z: float = 2.0
) -> list[tuple[int, float, float]]:
    """IO500 runs whose total score is anomalously low for the fleet.

    Returns ``(iofh_id, score_total, z)`` triples with ``z`` below
    ``-threshold_z``, most anomalous first.
    """
    columns = io5.fetch_score_columns()
    totals = columns["score_total"]
    if not totals:
        return []
    z = zscores(totals)
    flagged = [
        (int(iofh_id), float(total), float(score))
        for iofh_id, total, score in zip(columns["iofh_id"], totals, z)
        if score < -threshold_z
    ]
    return sorted(flagged, key=lambda item: item[2])


def run_outliers(
    runs: Sequence[Knowledge],
    *,
    operation: str = "write",
    threshold_z: float = 2.0,
) -> list[tuple[Knowledge, float]]:
    """Anomalously slow runs among comparable knowledge objects.

    Filters to runs that actually report ``operation`` (the detector
    requires it), then delegates to :class:`RunComparisonDetector`.
    Returns ``(run, z)`` pairs, most anomalous first; an empty list
    when fewer than three comparable runs exist.
    """
    comparable = [
        k for k in runs
        if any(s.operation == operation for s in k.summaries)
    ]
    if len(comparable) < 3:
        return []
    detector = RunComparisonDetector(threshold_z=threshold_z)
    return sorted(
        detector.detect(comparable, operation=operation),
        key=lambda pair: pair[1],
    )
