"""Cross-metric correlation and scoring-balance analysis.

The Treasure-Trove paper's two headline observations about the IO500
corpus: (1) sub-benchmark results correlate strongly within their
bandwidth/metadata families and weakly across them, and (2) the total
score's geometric-mean construction lets a bandwidth-heavy system mask
weak metadata performance (and vice versa).  Both analyses run here
over the columnar score/testcase feeds.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.persistence.io500_repo import IO500Repository
from repro.util.errors import UsageError

__all__ = ["correlation_matrix", "io500_correlations", "scoring_balance"]


def correlation_matrix(
    series: Mapping[str, Sequence[float]]
) -> tuple[list[str], np.ndarray]:
    """Pearson correlation matrix over equal-length named series.

    Constant series (zero variance) would make ``corrcoef`` emit NaN;
    their off-diagonal entries are defined as 0.0 instead so the matrix
    stays renderable and mergeable downstream.
    """
    names = list(series)
    if len(names) < 2:
        raise UsageError("need at least two series to correlate")
    lengths = {len(series[n]) for n in names}
    if len(lengths) != 1:
        raise UsageError(
            f"series lengths differ: { {n: len(series[n]) for n in names} }"
        )
    if lengths == {0}:
        raise UsageError("cannot correlate empty series")
    data = np.asarray([list(series[n]) for n in names], dtype=float)
    with np.errstate(invalid="ignore", divide="ignore"):
        matrix = np.corrcoef(data)
    matrix = np.atleast_2d(matrix)
    constant = data.std(axis=1) == 0
    for i in np.nonzero(constant)[0]:
        matrix[i, :] = 0.0
        matrix[:, i] = 0.0
        matrix[i, i] = 1.0
    return names, matrix


def io500_correlations(
    io5: IO500Repository, *, include_geometry: bool = True
) -> tuple[list[str], np.ndarray]:
    """Correlation matrix over every IO500 testcase + score series.

    Series are aligned run-by-run on ``IOFH_id``; runs missing a
    testcase are dropped from all series (pairwise-complete alignment
    would make the matrix non-positive-semidefinite).
    """
    columns = io5.fetch_score_columns()
    ids = columns["iofh_id"]
    if len(ids) < 3:
        raise UsageError("need at least three IO500 runs to correlate")
    by_testcase = io5.fetch_testcase_columns()
    complete = [
        i for i in ids
        if all(i in values for values in by_testcase.values())
    ]
    series: dict[str, list[float]] = {}
    for name in sorted(by_testcase):
        series[name] = [by_testcase[name][i] for i in complete]
    index_of = {iofh_id: pos for pos, iofh_id in enumerate(ids)}
    rows = [index_of[i] for i in complete]
    for score in ("score_bw", "score_md", "score_total"):
        series[score] = [columns[score][r] for r in rows]
    if include_geometry:
        series["num_nodes"] = [float(columns["num_nodes"][r]) for r in rows]
    return correlation_matrix(series)


def scoring_balance(io5: IO500Repository) -> dict[str, float]:
    """How balanced the fleet's bandwidth and metadata scores are.

    Reports the distribution of ``score_bw / score_md`` (the paper's
    balance ratio: ≫1 means bandwidth-heavy systems dominate), plus the
    largest relative deviation of ``score_total`` from
    ``sqrt(score_bw · score_md)`` — a consistency check that submitted
    totals actually follow the geometric-mean construction.
    """
    columns = io5.fetch_score_columns()
    bw = np.asarray(columns["score_bw"], dtype=float)
    md = np.asarray(columns["score_md"], dtype=float)
    total = np.asarray(columns["score_total"], dtype=float)
    if bw.size == 0:
        raise UsageError("no IO500 runs to analyse")
    if (md <= 0).any() or (bw <= 0).any():
        raise UsageError("IO500 scores must be strictly positive")
    ratio = bw / md
    expected = np.sqrt(bw * md)
    deviation = np.abs(total - expected) / expected
    return {
        "runs": float(bw.size),
        "ratio_mean": float(ratio.mean()),
        "ratio_median": float(np.median(ratio)),
        "ratio_p5": float(np.percentile(ratio, 5)),
        "ratio_p95": float(np.percentile(ratio, 95)),
        "bw_heavy_fraction": float((ratio > 1.0).mean()),
        "geomean_max_rel_error": float(deviation.max()),
    }
