"""Fleet-scale knowledge-base analytics (ROADMAP item 2).

Reproduces the "Treasure Trove of Performance" IO500 analyses over the
repro knowledge base: per-sub-benchmark percentile/CDF distributions,
cross-metric correlation matrices, scoring-balance analysis and outlier
mining — all fed by the columnar paths
(:meth:`~repro.core.persistence.repository.KnowledgeRepository.scan`,
:meth:`~repro.core.persistence.io500_repo.IO500Repository.fetch_score_columns`)
so a 100k-run store is analysed without materialising 100k objects.
"""

from repro.core.analytics.correlation import (
    correlation_matrix,
    io500_correlations,
    scoring_balance,
)
from repro.core.analytics.distributions import (
    QUANTILES,
    cdf_table,
    io500_distributions,
    metric_distributions,
    percentile_table,
)
from repro.core.analytics.fleet import synthesize_fleet
from repro.core.analytics.outliers import run_outliers, score_outliers
from repro.core.analytics.report import analytics_report

__all__ = [
    "QUANTILES",
    "percentile_table",
    "cdf_table",
    "metric_distributions",
    "io500_distributions",
    "correlation_matrix",
    "io500_correlations",
    "scoring_balance",
    "run_outliers",
    "score_outliers",
    "analytics_report",
    "synthesize_fleet",
]
