"""Percentile and CDF distributions (Treasure-Trove §"distributions").

Two feeds, one shape:

* :func:`metric_distributions` — IOR/mdtest summary metrics via the
  columnar :class:`~repro.core.persistence.scan.ScanQuery` pushdown
  (works identically against an embedded repository, an in-process
  service or ``knowledge+tcp://``).
* :func:`io500_distributions` — per-sub-benchmark (ior-easy-write,
  mdtest-hard-stat, …) exact percentile tables from the IO500 columnar
  fetch, no run objects materialised.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence

import numpy as np

from repro.core.persistence.io500_repo import IO500Repository
from repro.core.persistence.scan import ScanQuery, ScanResult

__all__ = [
    "QUANTILES",
    "percentile_table",
    "cdf_table",
    "metric_distributions",
    "io500_distributions",
]

#: The quantiles every distribution table reports.
QUANTILES = (1.0, 5.0, 25.0, 50.0, 75.0, 95.0, 99.0)


class _Scannable(Protocol):  # pragma: no cover - typing only
    def scan(self, query: ScanQuery) -> ScanResult: ...


def percentile_table(
    values: Sequence[float], quantiles: Sequence[float] = QUANTILES
) -> dict[str, float]:
    """Exact count/mean/stddev/min/max plus the requested percentiles."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot build a percentile table of an empty series")
    out = {
        "count": float(arr.size),
        "mean": float(arr.mean()),
        "stddev": float(arr.std(ddof=0)),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
    for q, v in zip(quantiles, np.percentile(arr, list(quantiles))):
        out[f"p{q:g}"] = float(v)
    return out


def cdf_table(
    values: Sequence[float], points: int = 20
) -> list[tuple[float, float]]:
    """An empirical CDF sampled at ``points`` evenly spaced fractions.

    Returns ``(value, fraction)`` pairs: ``fraction`` of observations
    are ≤ ``value``.  Useful for the explorer's textual CDF plots and
    for diffing two fleets' distributions.
    """
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("cannot build a CDF of an empty series")
    if points < 2:
        raise ValueError(f"points must be >= 2, got {points}")
    fractions = np.linspace(1.0 / points, 1.0, points)
    ranks = np.minimum(arr.size - 1, (fractions * arr.size).astype(int))
    return [(float(arr[r]), float(f)) for r, f in zip(ranks, fractions)]


def metric_distributions(
    store: _Scannable,
    *,
    metric: str = "bw_mean",
    group_by: Sequence[str] = ("benchmark", "operation"),
    benchmark: str | None = None,
    percentiles: Sequence[float] = QUANTILES,
) -> ScanResult:
    """Grouped distribution of one summary metric via the scan pushdown.

    ``store`` is anything exposing ``scan()`` — a
    :class:`KnowledgeRepository` or a :class:`ServiceClient` — so the
    same call analyses a local file or a remote fleet store.
    Percentiles come from the mergeable sketch (~1% relative error);
    count/mean/stddev/min/max are exact.
    """
    query = ScanQuery(
        metric=metric,
        benchmark=benchmark,
        group_by=tuple(group_by),
        percentiles=tuple(percentiles),
    )
    return store.scan(query)


def io500_distributions(
    io5: IO500Repository, quantiles: Sequence[float] = QUANTILES
) -> dict[str, dict[str, float]]:
    """Per-sub-benchmark percentile tables over every stored IO500 run.

    One columnar JOIN feeds all the testcase series; an additional
    three synthetic series cover the run-level scores
    (``score_total``/``score_bw``/``score_md``).
    """
    tables: dict[str, dict[str, float]] = {}
    by_testcase = io5.fetch_testcase_columns()
    for name in sorted(by_testcase):
        tables[name] = percentile_table(
            list(by_testcase[name].values()), quantiles
        )
    columns = io5.fetch_score_columns()
    for score in ("score_total", "score_bw", "score_md"):
        if columns[score]:
            tables[score] = percentile_table(columns[score], quantiles)
    return tables


def distribution_rows(
    tables: Mapping[str, Mapping[str, float]]
) -> tuple[list[str], list[list[object]]]:
    """Flatten percentile tables into (headers, rows) for rendering."""
    keys: list[str] = []
    for table in tables.values():
        for key in table:
            if key not in keys:
                keys.append(key)
    headers = ["series"] + keys
    rows = [
        [name] + [table.get(key) for key in keys]
        for name, table in tables.items()
    ]
    return headers, rows
