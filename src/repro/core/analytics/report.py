"""The ``repro-explore --analytics`` text report.

One screenful per analysis family: grouped metric distributions (via
the scan pushdown), run outliers, and — when an IO500 repository is
available (embedded mode; the TCP service serves IOR-style knowledge
only) — per-sub-benchmark percentile tables, the cross-metric
correlation matrix, scoring balance and score outliers.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.core.analytics.correlation import io500_correlations, scoring_balance
from repro.core.analytics.distributions import (
    QUANTILES,
    distribution_rows,
    io500_distributions,
    metric_distributions,
)
from repro.core.analytics.outliers import run_outliers, score_outliers
from repro.core.knowledge import Knowledge
from repro.core.persistence.io500_repo import IO500Repository
from repro.core.persistence.scan import ScanQuery, ScanResult
from repro.util.errors import UsageError
from repro.util.tables import render_kv, render_table

__all__ = ["analytics_report"]

_REPORT_QUANTILES = (5.0, 25.0, 50.0, 75.0, 95.0)


class _KnowledgeStore(Protocol):  # pragma: no cover - typing only
    def scan(self, query: ScanQuery) -> ScanResult: ...

    def load_all(self, benchmark: str | None = None) -> list[Knowledge]: ...

    def count(self, benchmark: str | None = None) -> int: ...


def _distribution_section(store: _KnowledgeStore, metric: str) -> list[str]:
    result = metric_distributions(
        store,
        metric=metric,
        group_by=("benchmark", "operation"),
        percentiles=_REPORT_QUANTILES,
    )
    if not result.rows:
        return [f"  ({metric}: no knowledge objects)"]
    value_keys = ["count", "mean", "stddev"] + [
        f"p{q:g}" for q in _REPORT_QUANTILES
    ]
    headers = ["benchmark", "operation"] + value_keys
    rows = [
        [row.group["benchmark"], row.group["operation"]]
        + [row.values[key] for key in value_keys]
        for row in result.rows
    ]
    return [
        f"  {metric} by benchmark/operation (source: {result.source})",
        render_table(headers, rows, indent="  "),
    ]


def _outlier_section(store: _KnowledgeStore, threshold_z: float) -> list[str]:
    # Compare like with like: a degraded 16-node run is not an outlier
    # against 1-node runs, so the detector runs per (benchmark, nodes)
    # cohort — the scan layer's group-by semantics, applied to mining.
    lines: list[str] = []
    cohorts: dict[tuple[str, int], list[Knowledge]] = {}
    for knowledge in store.load_all():
        cohorts.setdefault(
            (knowledge.benchmark, knowledge.num_nodes), []
        ).append(knowledge)
    for (benchmark, nodes), runs in sorted(cohorts.items()):
        for operation in ("write", "read"):
            flagged = run_outliers(
                runs, operation=operation, threshold_z=threshold_z
            )
            for knowledge, z in flagged[:5]:
                lines.append(
                    f"  {operation}: id {knowledge.knowledge_id} "
                    f"({benchmark}, {nodes} node(s)) "
                    f"bw_mean {knowledge.summary(operation).bw_mean:.1f} "
                    f"MiB/s, z = {z:.2f}"
                )
    if not lines:
        lines.append(f"  (no runs below z = -{threshold_z:g})")
    return lines


def _io500_sections(io5: IO500Repository, threshold_z: float) -> list[str]:
    lines = ["", "IO500 sub-benchmark distributions"]
    tables = io500_distributions(io5, QUANTILES)
    headers, rows = distribution_rows(tables)
    lines.append(render_table(headers, rows, indent="  "))
    lines.append("")
    lines.append("IO500 cross-metric correlation")
    try:
        names, matrix = io500_correlations(io5)
    except UsageError as exc:
        lines.append(f"  ({exc})")
    else:
        corr_rows = [
            [name] + [float(matrix[i, j]) for j in range(len(names))]
            for i, name in enumerate(names)
        ]
        lines.append(
            render_table(["series"] + names, corr_rows, indent="  ")
        )
    lines.append("")
    lines.append("IO500 scoring balance")
    lines.append(render_kv(scoring_balance(io5), indent="  "))
    lines.append("")
    lines.append(f"IO500 score outliers (z < -{threshold_z:g})")
    flagged = score_outliers(io5, threshold_z=threshold_z)
    if flagged:
        for iofh_id, total, z in flagged[:10]:
            lines.append(
                f"  run {iofh_id}: score_total {total:.3f}, z = {z:.2f}"
            )
    else:
        lines.append("  (none)")
    return lines


def analytics_report(
    store: _KnowledgeStore,
    io5: IO500Repository | None = None,
    *,
    metrics: Sequence[str] = ("bw_mean", "ops_mean"),
    threshold_z: float = 2.0,
) -> str:
    """Render the full fleet-analytics report as monospace text.

    ``store`` is a :class:`KnowledgeRepository` or a
    :class:`~repro.core.service.client.ServiceClient` — the
    distribution section runs entirely over the scan pushdown either
    way.  ``io5`` adds the IO500 sections (embedded mode only).
    """
    lines = [f"Fleet analytics ({store.count()} knowledge object(s))", ""]
    lines.append("Metric distributions")
    if store.count() == 0:
        lines.append("  (empty store)")
    else:
        for metric in metrics:
            lines.extend(_distribution_section(store, metric))
        lines.append("")
        lines.append(f"Run outliers (z < -{threshold_z:g})")
        lines.extend(_outlier_section(store, threshold_z))
    if io5 is not None and io5.list_ids():
        lines.extend(_io500_sections(io5, threshold_z))
    return "\n".join(lines)
