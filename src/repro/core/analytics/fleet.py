"""Deterministic synthetic fleets for analytics tests and benchmarks.

The Treasure-Trove analyses only get interesting at fleet scale — many
systems, varied stripe/RAID configurations, a sprinkling of degraded
runs.  :func:`synthesize_fleet` manufactures such a fleet from a single
root seed: every run's noise, filesystem layout and fault draw comes
from a :func:`repro.util.rng.stream` keyed on the run index, so the
same seed always yields byte-identical knowledge objects (and therefore
byte-identical analytics), while different seeds give statistically
independent fleets.
"""

from __future__ import annotations

from repro.core.knowledge import (
    FilesystemInfo,
    IO500Knowledge,
    IO500Testcase,
    Knowledge,
    KnowledgeResult,
    KnowledgeSummary,
)
from repro.util.rng import stream
from repro.util.stats import geomean, summarize

__all__ = [
    "STRIPE_PATTERNS",
    "RAID_SCHEMES",
    "IO500_BW_PHASES",
    "IO500_MD_PHASES",
    "synthesize_fleet",
]

#: BeeGFS-style stripe layouts the fleet cycles through.
STRIPE_PATTERNS = ("4x512K", "8x1M", "16x1M")

#: RAID schemes of the backing storage targets.
RAID_SCHEMES = ("RAID0", "RAID10", "RAID6")

#: IO500 bandwidth phases (GiB/s) — score_bw is their geometric mean.
IO500_BW_PHASES = (
    "ior-easy-write",
    "ior-hard-write",
    "ior-easy-read",
    "ior-hard-read",
)

#: IO500 metadata phases (kIOPS) — score_md is their geometric mean.
IO500_MD_PHASES = (
    "mdtest-easy-write",
    "mdtest-hard-write",
    "mdtest-easy-stat",
    "mdtest-hard-stat",
    "mdtest-easy-delete",
    "mdtest-hard-delete",
    "find",
)

#: One degraded run per this many healthy ones (the planted outliers
#: the anomaly miners are expected to recover).
_FAULT_EVERY = 25


def _fleet_geometry(rng) -> tuple[int, int]:
    nodes = int(2 ** rng.integers(0, 5))  # 1..16
    tasks_per_node = int(rng.choice((4, 8, 16)))
    return nodes, nodes * tasks_per_node


def _filesystem(rng, index: int) -> FilesystemInfo:
    return FilesystemInfo(
        fs_type="beegfs",
        entry_type="directory",
        entry_id=f"0-{index:06X}-1",
        metadata_node=f"meta{int(rng.integers(1, 5)):02d}",
        stripe_pattern=str(rng.choice(STRIPE_PATTERNS)),
        chunk_size="512K",
        num_targets=int(rng.choice((4, 8, 16, 24))),
        raid_scheme=str(rng.choice(RAID_SCHEMES)),
        storage_pool="default",
    )


def _system(rng, index: int) -> dict[str, object]:
    return {
        "hostname": f"node{int(rng.integers(0, 64)):03d}",
        "system_name": f"cluster-{index % 4}",
        "architecture": "x86_64",
        "processor_cores": int(rng.choice((32, 64, 128))),
    }


def _summary(operation: str, samples, iterations: int) -> KnowledgeSummary:
    bw = summarize(samples)
    ops = summarize([s * 8.0 for s in samples])
    return KnowledgeSummary(
        operation=operation,
        api="POSIX",
        bw_max=bw.maximum,
        bw_min=bw.minimum,
        bw_mean=bw.mean,
        bw_stddev=bw.stddev,
        ops_max=ops.maximum,
        ops_min=ops.minimum,
        ops_mean=ops.mean,
        ops_stddev=ops.stddev,
        iterations=iterations,
        results=[
            KnowledgeResult(
                iteration=i, bandwidth_mib=float(s), iops=float(s) * 8.0,
                total_time_s=1024.0 / max(float(s), 1e-9),
            )
            for i, s in enumerate(samples)
        ],
    )


def _ior_run(root_seed: int, index: int) -> Knowledge:
    rng = stream(root_seed, "fleet", "ior", index)
    nodes, tasks = _fleet_geometry(rng)
    fs = _filesystem(rng, index)
    # Throughput scales with node count and stripe width, with
    # log-normal run-to-run noise; every _FAULT_EVERY-th run is
    # degraded (a planted outlier for the anomaly miners).
    base = 900.0 * nodes ** 0.8 * (1.0 + 0.05 * fs.num_targets)
    degraded = index % _FAULT_EVERY == _FAULT_EVERY - 1
    scale = 0.35 if degraded else 1.0
    iterations = 3
    write = base * scale * rng.lognormal(0.0, 0.08, iterations)
    read = base * scale * 1.15 * rng.lognormal(0.0, 0.06, iterations)
    benchmark = "ior" if index % 3 else "mdtest"
    return Knowledge(
        benchmark,
        command=f"{benchmark} -a POSIX",
        api=str(rng.choice(("POSIX", "MPIIO"))),
        num_nodes=nodes,
        num_tasks=tasks,
        tasks_per_node=tasks // nodes,
        parameters={
            "fleet_index": index,
            "stripe_pattern": fs.stripe_pattern,
            "raid_scheme": fs.raid_scheme,
            "fault_seed": int(rng.integers(0, 2**31)),
            "degraded": degraded,
        },
        summaries=[
            _summary("write", [float(v) for v in write], iterations),
            _summary("read", [float(v) for v in read], iterations),
        ],
        filesystem=fs,
        system=_system(rng, index),
    )


def _io500_run(root_seed: int, index: int) -> IO500Knowledge:
    rng = stream(root_seed, "fleet", "io500", index)
    nodes, tasks = _fleet_geometry(rng)
    degraded = index % _FAULT_EVERY == _FAULT_EVERY - 1
    scale = 0.3 if degraded else 1.0
    testcases: list[IO500Testcase] = []
    bw_values: list[float] = []
    md_values: list[float] = []
    for name in IO500_BW_PHASES:
        hard = 0.25 if "hard" in name else 1.0
        value = float(
            2.0 * nodes ** 0.75 * hard * scale * rng.lognormal(0.0, 0.15)
        )
        bw_values.append(value)
        testcases.append(
            IO500Testcase(
                name=name, value=value, unit="GiB/s",
                time_s=float(rng.uniform(280.0, 420.0)),
                options={"api": "POSIX", "transferSize": "1m"},
            )
        )
    for name in IO500_MD_PHASES:
        hard = 0.4 if "hard" in name else 1.0
        value = float(
            30.0 * nodes ** 0.6 * hard * scale * rng.lognormal(0.0, 0.2)
        )
        md_values.append(value)
        testcases.append(
            IO500Testcase(
                name=name, value=value, unit="kIOPS",
                time_s=float(rng.uniform(280.0, 420.0)),
                options={"api": "POSIX"},
            )
        )
    score_bw = geomean(bw_values)
    score_md = geomean(md_values)
    return IO500Knowledge(
        score_total=(score_bw * score_md) ** 0.5,
        score_bw=score_bw,
        score_md=score_md,
        num_nodes=nodes,
        num_tasks=tasks,
        timestamp=1.7e9 + index * 3600.0,
        version="io500-sc23",
        testcases=testcases,
        system=_system(rng, index),
    )


def synthesize_fleet(
    root_seed: int, *, runs: int = 120, io500_runs: int | None = None
) -> tuple[list[Knowledge], list[IO500Knowledge]]:
    """Manufacture a deterministic synthetic fleet.

    Returns ``runs`` IOR/mdtest knowledge objects (varied node counts,
    stripe patterns, RAID schemes and APIs, with one degraded run in
    every 25) and ``io500_runs`` IO500 runs (default ``runs // 2``)
    whose scores follow the IO500 geometric-mean construction.  Same
    seed, same fleet — across processes and platforms.
    """
    if runs < 0:
        raise ValueError(f"runs must be >= 0, got {runs}")
    n_io500 = runs // 2 if io500_runs is None else io500_runs
    knowledge = [_ior_run(root_seed, i) for i in range(runs)]
    io500 = [_io500_run(root_seed, i) for i in range(n_io500)]
    return knowledge, io500
