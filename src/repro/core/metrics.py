"""Process-local metrics registry + span tracing for the knowledge cycle.

The paper treats the cycle as an *automated, long-running* workflow, so
the cycle's own behaviour must be observable data — exactly the
philosophy Darshan applies to application I/O.  This module provides
the self-profiling substrate:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — the three
  instrument kinds, grouped into labelled families by a
  :class:`MetricsRegistry`.  Histogram bucket boundaries are *fixed and
  deterministic* (no adaptive binning), so two runs with the same seed
  produce byte-identical snapshots modulo wall-clock values.
* :class:`Span` — a named timed region.  ``registry.span(...)`` times a
  block and folds it into the ``span.duration_seconds`` histogram; the
  :class:`MetricsTracer` adapter unifies this span model with the
  existing :class:`~repro.iostack.tracing.Tracer` protocol, turning
  every I/O stack event (a micro-span) into op/byte counters.
* :class:`MetricsObserver` — the pipeline bridge: per-phase durations,
  attempts, retries and outcomes as metrics.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain sorted dicts
with a schema version, rendered by :meth:`MetricsRegistry.to_json` with
sorted keys — stable enough to diff across runs.  Families carrying
wall-clock time are flagged ``wallclock`` so :func:`scrub_wallclock`
can normalise a snapshot for byte-identical comparison; everything else
(retry counts, simulated I/O durations, rows written) is deterministic
under the repository-wide seed contract.
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.pipeline import CycleContext, Phase, PhaseObserver
from repro.iostack.tracing import Tracer, TraceEvent
from repro.util.errors import ConfigurationError

__all__ = [
    "SCHEMA",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "MetricsRegistry",
    "MetricsTracer",
    "MetricsObserver",
    "scrub_wallclock",
    "render_metrics_report",
]

#: Snapshot schema identifier; bump on incompatible layout changes.
SCHEMA = "repro.metrics/v1"

#: Fixed deterministic histogram boundaries (seconds-flavoured but
#: unit-agnostic): roughly log-spaced from 1 ms to 60 s.  Fixed bucket
#: edges are what keeps snapshots comparable across runs and versions.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 60.0,
)


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (counts, totals)."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: tuple[tuple[str, str], ...]) -> None:
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(f"counters only go up; got inc({amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down (depths, states)."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: tuple[tuple[str, str], ...]) -> None:
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.value -= amount


class Histogram:
    """A distribution over fixed, deterministic bucket boundaries.

    ``bucket_counts[i]`` counts observations ``<= boundaries[i]``
    (non-cumulative); the final slot counts the overflow.  ``count`` and
    ``sum`` track totals exactly like Prometheus histograms.
    """

    __slots__ = ("labels", "boundaries", "bucket_counts", "count", "sum")

    def __init__(
        self,
        labels: tuple[tuple[str, str], ...],
        boundaries: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram boundaries must be strictly increasing, got {boundaries!r}"
            )
        self.labels = labels
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Fold one observation into the distribution."""
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value

    def observe_many(self, values: Sequence[float] | np.ndarray) -> None:
        """Vectorized fold of a batch of observations (one numpy pass)."""
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        idx = np.searchsorted(self.boundaries, arr, side="left")
        for i, n in zip(*np.unique(idx, return_counts=True)):
            self.bucket_counts[int(i)] += int(n)
        self.count += int(arr.size)
        self.sum += float(arr.sum())


@dataclass(slots=True)
class Span:
    """One named timed region (the tracing unit of the cycle itself).

    A :class:`~repro.iostack.tracing.TraceEvent` is the I/O-stack
    special case of a span — name ``module.op``, duration ``end -
    start`` — which is exactly how :class:`MetricsTracer` folds stack
    events into the same histograms.
    """

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    start_s: float = 0.0
    end_s: float = 0.0

    @property
    def duration_s(self) -> float:
        """Wall time covered by the span."""
        return self.end_s - self.start_s


class _Family:
    """One named metric family: a kind plus its labelled series."""

    __slots__ = ("name", "kind", "help", "wallclock", "boundaries", "series")

    def __init__(self, name, kind, help_text, wallclock, boundaries=None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.wallclock = wallclock
        self.boundaries = boundaries
        self.series: dict[tuple[tuple[str, str], ...], object] = {}


_NAME_OK = set("abcdefghijklmnopqrstuvwxyz0123456789._")


class MetricsRegistry:
    """Process-local registry of counters, gauges, histograms and spans.

    Instruments are created lazily on first use and identified by
    ``(family name, sorted labels)``; re-requesting the same series
    returns the same object.  ``clock`` is injectable (tests run spans
    in zero wall time).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._families: dict[str, _Family] = {}
        self._clock = clock
        # Guards family/series *creation* so concurrent service workers
        # can never overwrite each other's instruments.  Increments on
        # an existing instrument stay lock-free.
        self._create_lock = threading.Lock()
        self.spans_finished = 0

    # -- instrument factories ------------------------------------------
    def _family(self, name, kind, help_text, wallclock, boundaries=None) -> _Family:
        if not name or set(name) - _NAME_OK:
            raise ConfigurationError(
                f"metric name must be lowercase dotted ([a-z0-9._]), got {name!r}"
            )
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, wallclock, boundaries)
            self._families[name] = family
        elif family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", /, *, wallclock: bool = False,
                **labels: object) -> Counter:
        """Get or create the counter series ``name{labels}``."""
        key = _label_key({k: str(v) for k, v in labels.items()})
        with self._create_lock:
            family = self._family(name, "counter", help, wallclock)
            series = family.series.get(key)
            if series is None:
                series = family.series[key] = Counter(key)
        return series  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", /, *, wallclock: bool = False,
              **labels: object) -> Gauge:
        """Get or create the gauge series ``name{labels}``."""
        key = _label_key({k: str(v) for k, v in labels.items()})
        with self._create_lock:
            family = self._family(name, "gauge", help, wallclock)
            series = family.series.get(key)
            if series is None:
                series = family.series[key] = Gauge(key)
        return series  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "", /, *,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  wallclock: bool = False, **labels: object) -> Histogram:
        """Get or create the histogram series ``name{labels}``."""
        key = _label_key({k: str(v) for k, v in labels.items()})
        with self._create_lock:
            family = self._family(name, "histogram", help, wallclock, tuple(buckets))
            series = family.series.get(key)
            if series is None:
                series = family.series[key] = Histogram(key, family.boundaries)
        return series  # type: ignore[return-value]

    # -- span tracing --------------------------------------------------
    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[Span]:
        """Time a block as a :class:`Span`.

        The finished span lands in the ``span.duration_seconds``
        histogram and the ``span.calls_total`` counter, labelled with
        the span name plus any extra labels.
        """
        str_labels = {k: str(v) for k, v in labels.items()}
        span = Span(name=name, labels=str_labels, start_s=self._clock())
        try:
            yield span
        finally:
            span.end_s = self._clock()
            self.record_span(span)

    def record_span(self, span: Span) -> None:
        """Fold one finished span into the span metrics."""
        self.counter("span.calls_total", "finished spans", span=span.name,
                     **span.labels).inc()
        self.histogram("span.duration_seconds", "span wall time", wallclock=True,
                       span=span.name, **span.labels).observe(span.duration_s)
        self.spans_finished += 1

    # -- snapshots -----------------------------------------------------
    def snapshot(self) -> dict:
        """A plain, sorted, schema-versioned dict of everything observed.

        Deterministic layout: families sorted by name, series by label
        tuples.  Values in families flagged ``wallclock`` are the only
        run-to-run varying parts (see :func:`scrub_wallclock`).
        """
        out: dict = {"schema": SCHEMA, "counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._families):
            family = self._families[name]
            series_out = []
            for key in sorted(family.series):
                inst = family.series[key]
                row: dict = {"labels": dict(key)}
                if family.kind == "histogram":
                    row["buckets"] = [
                        [b, c] for b, c in zip(inst.boundaries, inst.bucket_counts)
                    ] + [["+inf", inst.bucket_counts[-1]]]
                    row["count"] = inst.count
                    row["sum"] = inst.sum
                else:
                    row["value"] = inst.value
                series_out.append(row)
            out[family.kind + "s"][name] = {
                "help": family.help,
                "wallclock": family.wallclock,
                "series": series_out,
            }
        return out

    def to_json(self) -> str:
        """The snapshot as stable JSON (sorted keys, trailing newline)."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n"

    def write_json(self, path: str | Path) -> None:
        """Write the JSON snapshot to ``path``."""
        Path(path).write_text(self.to_json(), encoding="utf-8")


def scrub_wallclock(snapshot: dict) -> dict:
    """A deep copy of ``snapshot`` with wall-clock values normalised.

    Families flagged ``wallclock: true`` get their values, sums and
    bucket counts zeroed (observation *counts* stay: how many times a
    phase ran is deterministic; how long it took is not).  Two runs of
    the same seed must produce byte-identical JSON after scrubbing —
    the acceptance check CI enforces.
    """
    out = json.loads(json.dumps(snapshot))
    for kind in ("counters", "gauges", "histograms"):
        for family in out.get(kind, {}).values():
            if not family.get("wallclock"):
                continue
            for row in family["series"]:
                if "value" in row:
                    row["value"] = 0.0
                if "sum" in row:
                    row["sum"] = 0.0
                if "buckets" in row:
                    row["buckets"] = [[b, 0] for b, _ in row["buckets"]]
    return out


# ----------------------------------------------------------------------
# Tracer bridge: I/O stack events -> metrics
# ----------------------------------------------------------------------
class MetricsTracer(Tracer):
    """Adapter unifying the :class:`Tracer` protocol with the registry.

    Every stack event is a micro-span: op and byte counters per
    ``(module, op)`` plus a duration histogram over the *simulated*
    clock (deterministic, so these survive :func:`scrub_wallclock`).
    ``record_batch`` is vectorized — one numpy pass per batch, matching
    the hot-path contract of the counter-oriented tracers.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def record(self, event: TraceEvent) -> None:
        """Fold one stack event into the I/O metric families."""
        reg = self.registry
        reg.counter("io.ops_total", "I/O operations observed",
                    module=event.module, op=event.op).inc(event.count)
        reg.counter("io.bytes_total", "bytes moved",
                    module=event.module, op=event.op).inc(event.length * event.count)
        reg.histogram("io.op_duration_seconds", "simulated op durations",
                      module=event.module, op=event.op).observe(event.duration)

    def record_batch(self, module, op, rank, path, offset0, nbytes,
                     durations, t0) -> None:
        """Vectorized fold of N identical back-to-back ops."""
        arr = np.asarray(durations, dtype=float)
        n = int(arr.size)
        if n == 0:
            return
        reg = self.registry
        reg.counter("io.ops_total", "I/O operations observed",
                    module=module, op=op).inc(n)
        reg.counter("io.bytes_total", "bytes moved",
                    module=module, op=op).inc(n * nbytes)
        reg.histogram("io.op_duration_seconds", "simulated op durations",
                      module=module, op=op).observe_many(arr)


# ----------------------------------------------------------------------
# Pipeline bridge: phase transitions -> metrics
# ----------------------------------------------------------------------
class MetricsObserver(PhaseObserver):
    """Pipeline observer that turns phase transitions into metrics.

    Per phase: run counts by outcome (``ok`` / ``error``), retry counts,
    deterministic backoff-sleep totals, artifact counts, and a
    wall-clock duration histogram.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def on_phase_retry(self, phase: Phase, context: CycleContext, attempt: int,
                       error: BaseException, delay_s: float) -> None:
        """Count one retry and its (deterministic) backoff sleep."""
        self.registry.counter("pipeline.phase_retries_total",
                              "phase attempts that were retried",
                              phase=phase.name).inc()
        self.registry.counter("pipeline.retry_backoff_seconds_total",
                              "deterministic backoff slept before retries",
                              phase=phase.name).inc(delay_s)

    def on_phase_finish(self, phase: Phase, context: CycleContext,
                        duration_s: float, artifacts: int) -> None:
        """Count one completed phase run with its products."""
        self.registry.counter("pipeline.phase_runs_total", "phase executions",
                              phase=phase.name, outcome="ok").inc()
        self.registry.counter("pipeline.phase_artifacts_total",
                              "artifacts produced by phases",
                              phase=phase.name).inc(artifacts)
        self.registry.histogram("pipeline.phase_duration_seconds",
                                "phase wall time", wallclock=True,
                                phase=phase.name).observe(duration_s)

    def on_phase_error(self, phase: Phase, context: CycleContext,
                       duration_s: float, error: BaseException) -> None:
        """Count one exhausted phase failure."""
        self.registry.counter("pipeline.phase_runs_total", "phase executions",
                              phase=phase.name, outcome="error").inc()
        self.registry.histogram("pipeline.phase_duration_seconds",
                                "phase wall time", wallclock=True,
                                phase=phase.name).observe(duration_s)


# ----------------------------------------------------------------------
# text report (the knowledge-explorer `--metrics` view)
# ----------------------------------------------------------------------
def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _counter_total(snapshot: Mapping, name: str, **match: str) -> float:
    """Sum a counter family's series whose labels include ``match``."""
    family = snapshot.get("counters", {}).get(name)
    if not family:
        return 0.0
    total = 0.0
    for row in family["series"]:
        labels = row.get("labels", {})
        if all(labels.get(k) == v for k, v in match.items()):
            total += row["value"]
    return total


def _service_section(snapshot: Mapping) -> list[str]:
    """The knowledge-service digest: cache hit-rate, queue, shed load.

    Rendered only when the snapshot carries ``service.*`` families —
    i.e. the run actually went through the serving layer.
    """
    names = [
        name
        for kind in ("counters", "gauges", "histograms")
        for name in snapshot.get(kind, {})
    ]
    if not any(name.startswith("service.") for name in names):
        return []
    hits = _counter_total(snapshot, "service.cache_hits_total")
    misses = _counter_total(snapshot, "service.cache_misses_total")
    lookups = hits + misses
    hit_rate = hits / lookups if lookups else 0.0
    stale = _counter_total(snapshot, "service.cache_evictions_total", reason="stale")
    capacity = _counter_total(snapshot, "service.cache_evictions_total", reason="capacity")
    shed = _counter_total(snapshot, "service.requests_total", outcome="shed")
    served = _counter_total(snapshot, "service.requests_total", outcome="ok")
    errors = _counter_total(snapshot, "service.requests_total", outcome="error")
    depth = 0.0
    depth_family = snapshot.get("gauges", {}).get("service.queue_depth")
    if depth_family and depth_family["series"]:
        depth = depth_family["series"][0]["value"]
    title = "Knowledge service"
    lines = [
        "",
        title,
        "-" * len(title),
        f"  cache hit rate   {hit_rate:.1%} "
        f"({_fmt_value(hits)} hit(s) / {_fmt_value(lookups)} lookup(s))",
        f"  cache evictions  {_fmt_value(stale)} stale (epoch), "
        f"{_fmt_value(capacity)} capacity",
        f"  requests         {_fmt_value(served)} ok, {_fmt_value(errors)} error(s), "
        f"{_fmt_value(shed)} shed (overload)",
        f"  queue depth      {_fmt_value(depth)}",
    ]
    lines += _transport_lines(snapshot)
    lines += _supervisor_lines(snapshot)
    lines += _chaos_lines(snapshot)
    return lines


def _supervisor_lines(snapshot: Mapping) -> list[str]:
    """Self-healing digest, when the run was supervised.

    ``service.supervisor.*`` families come from the
    :class:`~repro.core.service.server.WorkerSupervisor`: respawned
    worker processes, crash-looped shard groups, and the time-to-heal
    histogram (detection to healthy, labeled by heal mode).
    """
    respawns = _counter_total(snapshot, "service.supervisor.respawns_total")
    crash_loops = _counter_total(
        snapshot, "service.supervisor.crash_loops_total"
    )
    heal = snapshot.get("histograms", {}).get("service.supervisor.heal_seconds")
    if not (respawns or crash_loops or (heal and heal["series"])):
        return []
    lines = [
        f"  worker respawns  {_fmt_value(respawns)} "
        f"({_fmt_value(crash_loops)} crash-looped group(s))",
    ]
    if heal and heal["series"]:
        count = sum(row["count"] for row in heal["series"])
        total = sum(row["sum"] for row in heal["series"])
        mean_ms = (total / count) * 1e3 if count else 0.0
        lines.append(
            f"  time to heal     {_fmt_value(count)} heal(s), "
            f"mean {mean_ms:.0f} ms"
        )
    return lines


def _chaos_lines(snapshot: Mapping) -> list[str]:
    """Injected-fault digest, when a chaos proxy was in the path."""
    family = snapshot.get("counters", {}).get("service.chaos.faults_total")
    if not family or not family["series"]:
        return []
    total = _counter_total(snapshot, "service.chaos.faults_total")
    by_kind = ", ".join(
        f"{row['labels'].get('kind', '?')}: {_fmt_value(row['value'])}"
        for row in sorted(
            family["series"], key=lambda r: r["labels"].get("kind", "")
        )
    )
    return [f"  chaos faults     {_fmt_value(total)} ({by_kind})"]


def _transport_lines(snapshot: Mapping) -> list[str]:
    """Wire-transport digest lines, when the run crossed a socket.

    The ``service.transport.*`` families are emitted by both sides of
    the ``repro.wire/v1`` link — :class:`~repro.core.service.server.
    KnowledgeServer` and ``TcpTransport`` share the metric names — so
    this renders the same shape for server and client snapshots.
    """
    names = [
        name
        for kind in ("counters", "gauges", "histograms")
        for name in snapshot.get(kind, {})
    ]
    if not any(name.startswith("service.transport.") for name in names):
        return []
    conns = _counter_total(snapshot, "service.transport.connections_total")
    frames_in = _counter_total(snapshot, "service.transport.frames_total",
                               direction="in")
    frames_out = _counter_total(snapshot, "service.transport.frames_total",
                                direction="out")
    bytes_in = _counter_total(snapshot, "service.transport.bytes_total",
                              direction="in")
    bytes_out = _counter_total(snapshot, "service.transport.bytes_total",
                               direction="out")
    retries = _counter_total(snapshot, "service.client.retries_total")
    lines = [
        f"  wire connections {_fmt_value(conns)}",
        f"  wire frames      {_fmt_value(frames_in)} in / "
        f"{_fmt_value(frames_out)} out "
        f"({_fmt_value(bytes_in)} B in / {_fmt_value(bytes_out)} B out)",
    ]
    if retries:
        kinds = snapshot.get("counters", {}).get("service.client.retries_total")
        by_kind = ", ".join(
            f"{row['labels'].get('kind', '?')}: {_fmt_value(row['value'])}"
            for row in sorted(kinds["series"],
                              key=lambda r: r["labels"].get("kind", ""))
        )
        lines.append(f"  client retries   {_fmt_value(retries)} ({by_kind})")
    latency = snapshot.get("histograms", {}).get(
        "service.transport.request_seconds"
    )
    if latency and latency["series"]:
        count = sum(row["count"] for row in latency["series"])
        total = sum(row["sum"] for row in latency["series"])
        mean_us = (total / count) * 1e6 if count else 0.0
        lines.append(
            f"  wire latency     {_fmt_value(count)} request(s), "
            f"mean {mean_us:.0f} us"
        )
    return lines


def _campaign_section(snapshot: Mapping) -> list[str]:
    """The campaign digest: per-state jobs, queue depth, reclaims.

    Rendered only when the snapshot carries ``campaign.*`` families —
    i.e. the run went through the campaign orchestrator.
    """
    names = [
        name
        for kind in ("counters", "gauges", "histograms")
        for name in snapshot.get(kind, {})
    ]
    if not any(name.startswith("campaign.") for name in names):
        return []
    states = {}
    jobs_family = snapshot.get("gauges", {}).get("campaign.jobs")
    if jobs_family:
        for row in jobs_family["series"]:
            states[row.get("labels", {}).get("state", "?")] = row["value"]
    state_text = ", ".join(
        f"{_fmt_value(states[s])} {s}"
        for s in ("DONE", "FAILED", "RUNNING", "READY", "RESTARTING", "CREATED")
        if s in states
    ) or "none recorded"
    transitions = _counter_total(snapshot, "campaign.transitions_total")
    retries = _counter_total(snapshot, "campaign.transitions_total", to="RESTARTING")
    reclaims = _counter_total(snapshot, "campaign.reclaims_total")
    title = "Campaign orchestrator"
    lines = [
        "",
        title,
        "-" * len(title),
        f"  jobs by state    {state_text}",
        f"  transitions      {_fmt_value(transitions)} total, "
        f"{_fmt_value(retries)} restart(s)",
        f"  lease reclaims   {_fmt_value(reclaims)}",
    ]
    lines += _fleet_lines(snapshot)
    return lines


def _fleet_lines(snapshot: Mapping) -> list[str]:
    """Fleet digest lines (only when ``fleet.*`` families are present)."""
    names = [
        name
        for kind in ("counters", "gauges", "histograms")
        for name in snapshot.get(kind, {})
    ]
    has_fleet = any(name.startswith("fleet.") for name in names)
    steals = _counter_total(snapshot, "campaign.steals_total")
    if not has_fleet and not steals:
        return []
    launchers_family = snapshot.get("gauges", {}).get("fleet.launchers")
    launchers = (
        launchers_family["series"][0]["value"]
        if launchers_family and launchers_family["series"]
        else 0
    )
    respawns = _counter_total(snapshot, "fleet.respawns_total")
    crash_loops = _counter_total(snapshot, "fleet.crash_loops_total")
    lost = _counter_total(snapshot, "fleet.leases_lost_total")
    kills = _counter_total(snapshot, "fleet.chaos.faults_total")
    return [
        f"  fleet            {_fmt_value(launchers)} launcher(s) live, "
        f"{_fmt_value(respawns)} respawn(s), "
        f"{_fmt_value(crash_loops)} crash-loop(s)",
        f"  lease steals     {_fmt_value(steals)} stolen, "
        f"{_fmt_value(lost)} abandoned by losers, "
        f"{_fmt_value(kills)} chaos kill(s)",
    ]


def render_metrics_report(snapshot: Mapping) -> str:
    """Render one metrics snapshot as a human-readable text report."""
    if not isinstance(snapshot, Mapping) or "schema" not in snapshot:
        raise ConfigurationError(
            "not a metrics snapshot: missing the 'schema' field "
            f"(expected {SCHEMA!r})"
        )
    schema = snapshot["schema"]
    lines = [f"Metrics snapshot ({schema})", "=" * 40]
    lines += _service_section(snapshot)
    lines += _campaign_section(snapshot)
    for kind, title in (("counters", "Counters"), ("gauges", "Gauges")):
        families = snapshot.get(kind, {})
        if not families:
            continue
        lines += ["", title, "-" * len(title)]
        for name in sorted(families):
            family = families[name]
            for row in family["series"]:
                label = f"{name}{_fmt_labels(row.get('labels', {}))}"
                lines.append(f"  {label:<58} {_fmt_value(row['value'])}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines += ["", "Histograms", "-" * len("Histograms")]
        for name in sorted(histograms):
            family = histograms[name]
            for row in family["series"]:
                label = f"{name}{_fmt_labels(row.get('labels', {}))}"
                count, total = row["count"], row["sum"]
                mean = total / count if count else 0.0
                lines.append(
                    f"  {label:<58} count={count} sum={total:.6g} mean={mean:.6g}"
                )
    return "\n".join(lines)
