"""Phase IV: the knowledge explorer (viewer, comparison, charts, export)."""

from repro.core.explorer.bbox_chart import bounding_box_chart
from repro.core.explorer.boxplot import overview_boxplot
from repro.core.explorer.charts import (
    BoxSeries,
    ChartSpec,
    HeatmapData,
    Series,
    render_ascii,
    render_svg,
)
from repro.core.explorer.comparison import SUMMARY_METRICS, ComparisonView
from repro.core.explorer.diff import FieldDiff, KnowledgeDiff, diff_knowledge
from repro.core.explorer.export import export_image
from repro.core.explorer.heatmap import dxt_activity_heatmap, knowledge_heatmap
from repro.core.explorer.io500_viewer import IO500Viewer
from repro.core.explorer.report import render_dashboard, write_dashboard
from repro.core.explorer.viewer import RESULT_METRICS, KnowledgeViewer

__all__ = [
    "ChartSpec",
    "Series",
    "BoxSeries",
    "HeatmapData",
    "render_ascii",
    "render_svg",
    "KnowledgeViewer",
    "RESULT_METRICS",
    "ComparisonView",
    "diff_knowledge",
    "KnowledgeDiff",
    "FieldDiff",
    "SUMMARY_METRICS",
    "IO500Viewer",
    "overview_boxplot",
    "bounding_box_chart",
    "knowledge_heatmap",
    "dxt_activity_heatmap",
    "export_image",
    "render_dashboard",
    "write_dashboard",
]
