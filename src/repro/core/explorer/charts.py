"""Chart model and renderers for the knowledge explorer.

The paper's explorer visualizes knowledge "as an interactive graph"
and can "export it as an image file" (§V-D).  The explorer here is a
library, so a chart is a declarative :class:`ChartSpec` (the data a web
front end would receive) with two renderers: monospace ASCII for
terminals and reports, and SVG for the image-file export.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import AnalysisError
from repro.util.stats import BoxplotStats

__all__ = ["Series", "BoxSeries", "HeatmapData", "ChartSpec", "render_ascii", "render_svg"]

_KINDS = ("line", "bar", "boxplot", "heatmap")


@dataclass(frozen=True, slots=True)
class Series:
    """One named data series of a line/bar chart."""

    name: str
    x: tuple[object, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise AnalysisError(
                f"series {self.name!r}: {len(self.x)} x values vs {len(self.y)} y values"
            )
        if not self.y:
            raise AnalysisError(f"series {self.name!r} is empty")


@dataclass(frozen=True, slots=True)
class BoxSeries:
    """One box of a boxplot chart."""

    name: str
    stats: BoxplotStats


@dataclass(frozen=True, slots=True)
class HeatmapData:
    """Grid data of a heatmap chart: values[row][col]."""

    x_labels: tuple[str, ...]
    y_labels: tuple[str, ...]
    values: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.y_labels):
            raise AnalysisError(
                f"heatmap has {len(self.values)} rows but {len(self.y_labels)} y labels"
            )
        for row in self.values:
            if len(row) != len(self.x_labels):
                raise AnalysisError(
                    f"heatmap row has {len(row)} cells but {len(self.x_labels)} x labels"
                )
        if not self.values or not self.x_labels:
            raise AnalysisError("heatmap needs at least one row and one column")

    def flat(self) -> list[float]:
        """All cell values."""
        return [v for row in self.values for v in row]


@dataclass(slots=True)
class ChartSpec:
    """A renderer-independent chart description."""

    kind: str
    title: str
    x_label: str = ""
    y_label: str = ""
    series: list[Series] = field(default_factory=list)
    boxes: list[BoxSeries] = field(default_factory=list)
    heatmap: HeatmapData | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise AnalysisError(f"unknown chart kind {self.kind!r}; known: {_KINDS}")

    def validate(self) -> None:
        """Check the spec holds the data its kind needs."""
        if self.kind == "boxplot":
            if not self.boxes:
                raise AnalysisError("boxplot chart needs at least one box")
        elif self.kind == "heatmap":
            if self.heatmap is None:
                raise AnalysisError("heatmap chart needs heatmap data")
        elif not self.series:
            raise AnalysisError(f"{self.kind} chart needs at least one series")


# ----------------------------------------------------------------------
# ASCII renderer
# ----------------------------------------------------------------------
_MARKS = "*o+x#@%&"


def render_ascii(spec: ChartSpec, width: int = 72, height: int = 16) -> str:
    """Render a chart as monospace text."""
    spec.validate()
    if spec.kind == "boxplot":
        return _ascii_boxplot(spec, width)
    if spec.kind == "heatmap":
        return _ascii_heatmap(spec)
    lo, hi = _y_range(spec)
    canvas = [[" "] * width for _ in range(height)]
    n_points = max(len(s.y) for s in spec.series)
    for si, series in enumerate(spec.series):
        mark = _MARKS[si % len(_MARKS)]
        for i, value in enumerate(series.y):
            col = int(i / max(n_points - 1, 1) * (width - 1))
            row = height - 1 - int((value - lo) / (hi - lo) * (height - 1)) if hi > lo else height // 2
            canvas[row][col] = mark
    lines = [spec.title, f"y: {spec.y_label}  [{lo:.2f} .. {hi:.2f}]"]
    lines += ["|" + "".join(row) for row in canvas]
    lines.append("+" + "-" * width)
    lines.append(f"x: {spec.x_label}")
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]} {s.name}" for i, s in enumerate(spec.series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def _ascii_boxplot(spec: ChartSpec, width: int) -> str:
    values = []
    for b in spec.boxes:
        values += [b.stats.minimum, b.stats.maximum]
    lo, hi = min(values), max(values)
    span = max(hi - lo, 1e-12)
    name_w = max(len(b.name) for b in spec.boxes)
    plot_w = max(width - name_w - 2, 20)

    def pos(v: float) -> int:
        return int((v - lo) / span * (plot_w - 1))

    lines = [spec.title, f"{spec.y_label}  [{lo:.2f} .. {hi:.2f}]"]
    for b in spec.boxes:
        row = [" "] * plot_w
        for x in range(pos(b.stats.whisker_low), pos(b.stats.whisker_high) + 1):
            row[x] = "-"
        for x in range(pos(b.stats.q1), pos(b.stats.q3) + 1):
            row[x] = "="
        row[pos(b.stats.median)] = "|"
        for o in b.stats.outliers:
            row[pos(o)] = "o"
        lines.append(f"{b.name.ljust(name_w)} {''.join(row)}")
    return "\n".join(lines)


_SHADES = " .:-=+*#%@"


def _ascii_heatmap(spec: ChartSpec) -> str:
    hm = spec.heatmap
    assert hm is not None
    flat = hm.flat()
    lo, hi = min(flat), max(flat)
    span = max(hi - lo, 1e-12)
    name_w = max(len(y) for y in hm.y_labels)
    lines = [spec.title, f"{spec.y_label} \\ {spec.x_label}   [{lo:.2f} .. {hi:.2f}]"]
    for y_label, row in zip(hm.y_labels, hm.values):
        cells = "".join(
            _SHADES[min(len(_SHADES) - 1, int((v - lo) / span * (len(_SHADES) - 1)))] * 2
            for v in row
        )
        lines.append(f"{y_label.rjust(name_w)} |{cells}|")
    lines.append(" " * name_w + "  " + " ".join(x[:1] for x in hm.x_labels))
    lines.append("x: " + ", ".join(hm.x_labels))
    return "\n".join(lines)


def _y_range(spec: ChartSpec) -> tuple[float, float]:
    ys = [v for s in spec.series for v in s.y]
    lo, hi = min(ys), max(ys)
    if lo == hi:
        lo, hi = lo - 1.0, hi + 1.0
    pad = (hi - lo) * 0.05
    return max(0.0, lo - pad) if lo >= 0 else lo - pad, hi + pad


# ----------------------------------------------------------------------
# SVG renderer (the image-file export)
# ----------------------------------------------------------------------
_PALETTE = ("#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c")


def render_svg(spec: ChartSpec, width: int = 640, height: int = 400) -> str:
    """Render a chart as a standalone SVG document."""
    spec.validate()
    margin = 60
    plot_w, plot_h = width - 2 * margin, height - 2 * margin
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="20" text-anchor="middle" font-size="14" '
        f'font-family="sans-serif">{_esc(spec.title)}</text>',
    ]
    if spec.kind == "boxplot":
        parts += _svg_boxplot(spec, margin, plot_w, plot_h)
    elif spec.kind == "heatmap":
        parts += _svg_heatmap(spec, margin, plot_w, plot_h)
    else:
        parts += _svg_xy(spec, margin, plot_w, plot_h)
    # axis labels
    parts.append(
        f'<text x="{margin + plot_w / 2}" y="{height - 8}" text-anchor="middle" '
        f'font-size="11" font-family="sans-serif">{_esc(spec.x_label)}</text>'
    )
    parts.append(
        f'<text x="14" y="{margin + plot_h / 2}" text-anchor="middle" font-size="11" '
        f'font-family="sans-serif" transform="rotate(-90 14 {margin + plot_h / 2})">'
        f"{_esc(spec.y_label)}</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;").replace('"', "&quot;")
    )


def _svg_axes(margin: int, plot_w: int, plot_h: int, lo: float, hi: float) -> list[str]:
    parts = [
        f'<line x1="{margin}" y1="{margin}" x2="{margin}" y2="{margin + plot_h}" stroke="black"/>',
        f'<line x1="{margin}" y1="{margin + plot_h}" x2="{margin + plot_w}" '
        f'y2="{margin + plot_h}" stroke="black"/>',
    ]
    for frac in np.linspace(0, 1, 5):
        y = margin + plot_h - frac * plot_h
        value = lo + frac * (hi - lo)
        parts.append(
            f'<text x="{margin - 6}" y="{y + 4}" text-anchor="end" font-size="10" '
            f'font-family="sans-serif">{value:.1f}</text>'
        )
        parts.append(
            f'<line x1="{margin}" y1="{y}" x2="{margin + plot_w}" y2="{y}" '
            f'stroke="#dddddd" stroke-width="0.5"/>'
        )
    return parts


def _svg_xy(spec: ChartSpec, margin: int, plot_w: int, plot_h: int) -> list[str]:
    lo, hi = _y_range(spec)
    parts = _svg_axes(margin, plot_w, plot_h, lo, hi)
    n_points = max(len(s.y) for s in spec.series)

    def xpos(i: int) -> float:
        return margin + (i + 0.5) / n_points * plot_w

    def ypos(v: float) -> float:
        return margin + plot_h - (v - lo) / (hi - lo) * plot_h

    if spec.kind == "line":
        for si, series in enumerate(spec.series):
            color = _PALETTE[si % len(_PALETTE)]
            points = " ".join(f"{xpos(i):.1f},{ypos(v):.1f}" for i, v in enumerate(series.y))
            parts.append(
                f'<polyline points="{points}" fill="none" stroke="{color}" stroke-width="2"/>'
            )
            for i, v in enumerate(series.y):
                parts.append(
                    f'<circle cx="{xpos(i):.1f}" cy="{ypos(v):.1f}" r="3" fill="{color}"/>'
                )
    else:  # bar
        n_series = len(spec.series)
        group_w = plot_w / n_points
        bar_w = group_w * 0.8 / n_series
        for si, series in enumerate(spec.series):
            color = _PALETTE[si % len(_PALETTE)]
            for i, v in enumerate(series.y):
                x = margin + i * group_w + group_w * 0.1 + si * bar_w
                y = ypos(v)
                parts.append(
                    f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                    f'height="{margin + plot_h - y:.1f}" fill="{color}"/>'
                )
    # x tick labels from the first series
    first = spec.series[0]
    for i, label in enumerate(first.x):
        parts.append(
            f'<text x="{xpos(i):.1f}" y="{margin + plot_h + 14}" text-anchor="middle" '
            f'font-size="10" font-family="sans-serif">{_esc(str(label))}</text>'
        )
    # legend
    for si, series in enumerate(spec.series):
        color = _PALETTE[si % len(_PALETTE)]
        y = margin + 12 * si
        parts.append(f'<rect x="{margin + plot_w - 110}" y="{y}" width="10" height="10" fill="{color}"/>')
        parts.append(
            f'<text x="{margin + plot_w - 96}" y="{y + 9}" font-size="10" '
            f'font-family="sans-serif">{_esc(series.name)}</text>'
        )
    return parts


def _svg_boxplot(spec: ChartSpec, margin: int, plot_w: int, plot_h: int) -> list[str]:
    values = []
    for b in spec.boxes:
        values += [b.stats.minimum, b.stats.maximum]
    lo, hi = min(values), max(values)
    if lo == hi:
        lo, hi = lo - 1, hi + 1
    pad = (hi - lo) * 0.05
    lo, hi = lo - pad, hi + pad
    parts = _svg_axes(margin, plot_w, plot_h, lo, hi)
    n = len(spec.boxes)

    def ypos(v: float) -> float:
        return margin + plot_h - (v - lo) / (hi - lo) * plot_h

    for i, box in enumerate(spec.boxes):
        color = _PALETTE[i % len(_PALETTE)]
        cx = margin + (i + 0.5) / n * plot_w
        half = min(plot_w / n * 0.3, 40)
        s = box.stats
        parts += [
            f'<line x1="{cx}" y1="{ypos(s.whisker_low)}" x2="{cx}" y2="{ypos(s.q1)}" stroke="black"/>',
            f'<line x1="{cx}" y1="{ypos(s.q3)}" x2="{cx}" y2="{ypos(s.whisker_high)}" stroke="black"/>',
            f'<line x1="{cx - half / 2}" y1="{ypos(s.whisker_low)}" x2="{cx + half / 2}" '
            f'y2="{ypos(s.whisker_low)}" stroke="black"/>',
            f'<line x1="{cx - half / 2}" y1="{ypos(s.whisker_high)}" x2="{cx + half / 2}" '
            f'y2="{ypos(s.whisker_high)}" stroke="black"/>',
            f'<rect x="{cx - half}" y="{ypos(s.q3)}" width="{2 * half}" '
            f'height="{abs(ypos(s.q1) - ypos(s.q3)):.1f}" fill="{color}" fill-opacity="0.5" '
            f'stroke="black"/>',
            f'<line x1="{cx - half}" y1="{ypos(s.median)}" x2="{cx + half}" '
            f'y2="{ypos(s.median)}" stroke="black" stroke-width="2"/>',
        ]
        for o in s.outliers:
            parts.append(f'<circle cx="{cx}" cy="{ypos(o)}" r="3" fill="none" stroke="black"/>')
        parts.append(
            f'<text x="{cx}" y="{margin + plot_h + 14}" text-anchor="middle" font-size="10" '
            f'font-family="sans-serif">{_esc(box.name)}</text>'
        )
    return parts


def _svg_heatmap(spec: ChartSpec, margin: int, plot_w: int, plot_h: int) -> list[str]:
    hm = spec.heatmap
    assert hm is not None
    flat = hm.flat()
    lo, hi = min(flat), max(flat)
    span = max(hi - lo, 1e-12)
    ncols, nrows = len(hm.x_labels), len(hm.y_labels)
    cell_w, cell_h = plot_w / ncols, plot_h / nrows
    parts = []
    for r, row in enumerate(hm.values):
        for c, v in enumerate(row):
            # Sequential single-hue ramp: light to saturated blue.
            t = (v - lo) / span
            red = int(247 - t * (247 - 33))
            green = int(251 - t * (251 - 102))
            blue = int(255 - t * (255 - 172))
            x = margin + c * cell_w
            y = margin + r * cell_h
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{cell_w:.1f}" height="{cell_h:.1f}" '
                f'fill="rgb({red},{green},{blue})" stroke="white" stroke-width="0.5">'
                f"<title>{_esc(hm.y_labels[r])} / {_esc(hm.x_labels[c])}: {v:.2f}</title></rect>"
            )
    for c, label in enumerate(hm.x_labels):
        parts.append(
            f'<text x="{margin + (c + 0.5) * cell_w:.1f}" y="{margin + plot_h + 14}" '
            f'text-anchor="middle" font-size="10" font-family="sans-serif">{_esc(label)}</text>'
        )
    for r, label in enumerate(hm.y_labels):
        parts.append(
            f'<text x="{margin - 6}" y="{margin + (r + 0.5) * cell_h + 3:.1f}" '
            f'text-anchor="end" font-size="10" font-family="sans-serif">{_esc(label)}</text>'
        )
    return parts
