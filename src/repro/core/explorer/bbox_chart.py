"""Bounding-box visualization (the §VI chart-type extension).

"the GUI of the knowledge explorer will be extended ... [to] support
... additional chart types, including heat map and bounding box."
The chart shows one band per boundary test case (from the reference
runs) with the observed run's value overlaid; observations outside
their band render as outliers — the complete Fig. 6 picture.
"""

from __future__ import annotations

from repro.core.explorer.charts import BoxSeries, ChartSpec
from repro.core.knowledge import IO500Knowledge
from repro.core.usage.bounding_box import BoundingBox
from repro.util.errors import AnalysisError
from repro.util.stats import BoxplotStats

__all__ = ["bounding_box_chart"]


def bounding_box_chart(
    box: BoundingBox, observed: IO500Knowledge | None = None
) -> ChartSpec:
    """Render a bounding box (optionally with an observed run) as a chart.

    Each band becomes a box whose body spans [low, high] with the mean
    as the midline; an observed value outside its band appears as an
    outlier marker.
    """
    if not box.bands:
        raise AnalysisError("bounding box has no bands")
    boxes = []
    for name in sorted(box.bands):
        band = box.bands[name]
        outliers: tuple[float, ...] = ()
        lo, hi = band.low, band.high
        if observed is not None:
            value = observed.value(name)
            if not band.contains(value):
                outliers = (value,)
                lo, hi = min(lo, value), max(hi, value)
        boxes.append(
            BoxSeries(
                name=name,
                stats=BoxplotStats(
                    minimum=lo,
                    q1=band.low,
                    median=band.mean,
                    q3=band.high,
                    maximum=hi,
                    whisker_low=band.low,
                    whisker_high=band.high,
                    outliers=outliers,
                ),
            )
        )
    title = "IO500 bounding box"
    if observed is not None:
        flagged = box.anomalies(observed)
        title += f" — observed run {'ANOMALOUS: ' + ', '.join(flagged) if flagged else 'within expectation'}"
    return ChartSpec(
        kind="boxplot",
        title=title,
        x_label="boundary test case",
        y_label="GiB/s",
        boxes=boxes,
    )
