"""Knowledge diff: field-by-field comparison of two runs.

The §V-E1 loop is modify-and-rerun; the natural next question is "what
changed, and what did it buy?".  :func:`diff_knowledge` compares two
knowledge objects — pattern parameters, run geometry, and per-operation
performance with relative deltas — into a compact report the explorer
(or a human in a terminal) renders directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.knowledge import Knowledge
from repro.util.errors import AnalysisError
from repro.util.tables import render_table

__all__ = ["FieldDiff", "KnowledgeDiff", "diff_knowledge"]


@dataclass(frozen=True, slots=True)
class FieldDiff:
    """One differing field."""

    field: str
    left: object
    right: object
    relative_change: float | None  # None for non-numeric fields

    def describe(self) -> str:
        """One-line description."""
        if self.relative_change is None:
            return f"{self.field}: {self.left!r} -> {self.right!r}"
        return (
            f"{self.field}: {self.left} -> {self.right} "
            f"({self.relative_change:+.1%})"
        )


@dataclass(slots=True)
class KnowledgeDiff:
    """All differences between two knowledge objects."""

    left_id: int | None
    right_id: int | None
    configuration: list[FieldDiff]
    performance: list[FieldDiff]

    @property
    def identical_configuration(self) -> bool:
        """Whether the two runs used the same configuration."""
        return not self.configuration

    def render(self) -> str:
        """Monospace report of the diff."""
        lines = [f"Knowledge #{self.left_id} vs #{self.right_id}"]
        if self.configuration:
            lines.append("Configuration changes:")
            lines.append(
                render_table(
                    ["field", "left", "right"],
                    [[d.field, d.left, d.right] for d in self.configuration],
                    indent="  ",
                )
            )
        else:
            lines.append("Configuration: identical")
        if self.performance:
            lines.append("Performance:")
            lines.append(
                render_table(
                    ["metric", "left", "right", "change"],
                    [
                        [
                            d.field,
                            d.left,
                            d.right,
                            f"{d.relative_change:+.1%}" if d.relative_change is not None else "-",
                        ]
                        for d in self.performance
                    ],
                    indent="  ",
                )
            )
        return "\n".join(lines) + "\n"


_CONFIG_FIELDS = ("benchmark", "api", "test_file", "file_per_proc", "num_nodes", "num_tasks")
_PERF_METRICS = ("bw_mean", "bw_max", "bw_min", "ops_mean")


def _numeric_diff(field: str, left: float, right: float) -> FieldDiff | None:
    if left == right:
        return None
    rel = (right - left) / left if left else None
    return FieldDiff(field=field, left=left, right=right, relative_change=rel)


def diff_knowledge(left: Knowledge, right: Knowledge) -> KnowledgeDiff:
    """Compare two knowledge objects.

    Configuration differences cover the run attributes and all pattern
    parameters (union of both sides); performance differences cover
    every operation either side ran, with relative change computed
    right-versus-left.
    """
    if left is right:
        raise AnalysisError("cannot diff a knowledge object against itself")
    config: list[FieldDiff] = []
    for field in _CONFIG_FIELDS:
        lv, rv = getattr(left, field), getattr(right, field)
        if lv != rv:
            config.append(FieldDiff(field=field, left=lv, right=rv, relative_change=None))
    for key in sorted(set(left.parameters) | set(right.parameters)):
        lv, rv = left.parameters.get(key), right.parameters.get(key)
        if lv != rv:
            config.append(
                FieldDiff(field=f"param:{key}", left=lv, right=rv, relative_change=None)
            )

    performance: list[FieldDiff] = []
    ops = {s.operation for s in left.summaries} | {s.operation for s in right.summaries}
    for op in sorted(ops):
        try:
            ls = left.summary(op)
            rs = right.summary(op)
        except Exception:  # noqa: BLE001 - one side lacks the operation
            performance.append(
                FieldDiff(field=f"{op}", left="present" if any(
                    s.operation == op for s in left.summaries) else "absent",
                    right="present" if any(
                        s.operation == op for s in right.summaries) else "absent",
                    relative_change=None)
            )
            continue
        for metric in _PERF_METRICS:
            d = _numeric_diff(f"{op}.{metric}", float(getattr(ls, metric)), float(getattr(rs, metric)))
            if d is not None:
                performance.append(d)
    return KnowledgeDiff(
        left_id=left.knowledge_id,
        right_id=right.knowledge_id,
        configuration=config,
        performance=performance,
    )
