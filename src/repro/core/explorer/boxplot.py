"""Boxplot overview chart.

§V-D: "when selecting a knowledge object, an overview chart is
automatically created at the same time, where the individual knowledge
object[s] are displayed on the basis of their throughput with
corresponding min, max, mean as a boxplot."
"""

from __future__ import annotations

from repro.core.explorer.charts import BoxSeries, ChartSpec
from repro.core.knowledge import Knowledge
from repro.util.errors import AnalysisError

__all__ = ["overview_boxplot"]


def overview_boxplot(objects: list[Knowledge], operation: str = "write") -> ChartSpec:
    """One box per knowledge object over its per-iteration throughput."""
    boxes = []
    for k in objects:
        try:
            summary = k.summary(operation)
        except Exception:  # noqa: BLE001 - object lacks this operation
            continue
        label = f"#{k.knowledge_id}" if k.knowledge_id is not None else k.benchmark
        boxes.append(BoxSeries(name=label, stats=summary.boxplot()))
    if not boxes:
        raise AnalysisError(f"no knowledge object has a {operation!r} summary")
    return ChartSpec(
        kind="boxplot",
        title=f"Throughput overview ({operation})",
        x_label="knowledge object",
        y_label="throughput (MiB/s)",
        boxes=boxes,
    )
