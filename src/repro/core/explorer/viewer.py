"""The knowledge viewer (single-run analysis, §V-D).

"By selecting the command used for the benchmark, all related
benchmarks and file system information, as well as the corresponding
benchmark summary are displayed immediately. ... our knowledge explorer
offers the ability to display detailed performance statistics for each
operation and iteration."
"""

from __future__ import annotations

from repro.core.explorer.charts import ChartSpec, Series
from repro.core.knowledge import Knowledge
from repro.util.errors import AnalysisError
from repro.util.tables import render_kv, render_table

__all__ = ["KnowledgeViewer"]

#: Per-iteration metrics the viewer can plot; §V-E2 names several of
#: these explicitly ("other metrics like closeTime, latency, totalTime,
#: wrRdTime can be displayed").
RESULT_METRICS = {
    "bandwidth_mib": "Throughput (MiB/s)",
    "iops": "Operations (ops/s)",
    "latency_s": "Latency (s)",
    "open_time_s": "openTime (s)",
    "wrrd_time_s": "wrRdTime (s)",
    "close_time_s": "closeTime (s)",
    "total_time_s": "totalTime (s)",
}


class KnowledgeViewer:
    """Formats and charts one knowledge object."""

    def render(self, knowledge: Knowledge) -> str:
        """Full textual view: run info, file system, summaries, details."""
        sections = [self._header(knowledge)]
        if knowledge.filesystem is not None:
            sections.append("File system information:")
            sections.append(render_kv(knowledge.filesystem.as_dict(), indent="  "))
        if knowledge.system is not None:
            sections.append("System information:")
            sections.append(render_kv(knowledge.system, indent="  "))
        sections.append("Summary:")
        sections.append(self._summary_table(knowledge))
        sections.append("Details per iteration:")
        sections.append(self._details_table(knowledge))
        return "\n".join(sections) + "\n"

    def _header(self, knowledge: Knowledge) -> str:
        pairs = {
            "benchmark": knowledge.benchmark,
            "command": knowledge.command or "-",
            "api": knowledge.api,
            "test file": knowledge.test_file or "-",
            "access": "file-per-process" if knowledge.file_per_proc else "single-shared-file",
            "nodes": knowledge.num_nodes,
            "tasks": knowledge.num_tasks,
        }
        if knowledge.knowledge_id is not None:
            pairs["knowledge id"] = knowledge.knowledge_id
        return render_kv(pairs)

    def _summary_table(self, knowledge: Knowledge) -> str:
        headers = ["operation", "bw max", "bw min", "bw mean", "bw stddev", "ops mean", "iters"]
        rows = [
            [s.operation, s.bw_max, s.bw_min, s.bw_mean, s.bw_stddev, s.ops_mean, s.iterations]
            for s in knowledge.summaries
        ]
        return render_table(headers, rows, indent="  ")

    def _details_table(self, knowledge: Knowledge) -> str:
        headers = ["operation", "iter", "bw(MiB/s)", "ops/s", "latency", "open", "wr/rd", "close", "total"]
        rows = []
        for s in knowledge.summaries:
            for r in sorted(s.results, key=lambda r: r.iteration):
                rows.append(
                    [
                        s.operation,
                        r.iteration,
                        r.bandwidth_mib,
                        r.iops,
                        r.latency_s,
                        r.open_time_s,
                        r.wrrd_time_s,
                        r.close_time_s,
                        r.total_time_s,
                    ]
                )
        return render_table(headers, rows, float_fmt=".4f", indent="  ")

    def iteration_chart(
        self, knowledge: Knowledge, metric: str = "bandwidth_mib", kind: str = "line"
    ) -> ChartSpec:
        """Chart one metric over iterations for every operation.

        This is the paper's Fig. 5 view: "the throughput in MiB and the
        number of ops for reads and writes over 6 iterations are
        visualized as an interactive chart."
        """
        if metric not in RESULT_METRICS:
            raise AnalysisError(
                f"unknown metric {metric!r}; available: {sorted(RESULT_METRICS)}"
            )
        series = []
        for s in knowledge.summaries:
            rows = sorted(s.results, key=lambda r: r.iteration)
            series.append(
                Series(
                    name=s.operation,
                    x=tuple(r.iteration + 1 for r in rows),  # 1-based, as in the paper
                    y=tuple(r.metric(metric) for r in rows),
                )
            )
        if not series:
            raise AnalysisError("knowledge object has no summaries to chart")
        return ChartSpec(
            kind=kind,
            title=f"{knowledge.benchmark}: {RESULT_METRICS[metric]} per iteration",
            x_label="iteration",
            y_label=RESULT_METRICS[metric],
            series=series,
        )
