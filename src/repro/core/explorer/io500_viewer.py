"""The IO500 viewer of the knowledge explorer.

§V-D: "For IO500, we provide an extra viewer in our knowledge explorer
... it can additionally visualize score value and different test cases
for each IO500 execution."  Besides single-run views it charts test
cases across several runs — the data behind the paper's Fig. 6.
"""

from __future__ import annotations

from repro.core.explorer.charts import BoxSeries, ChartSpec, Series
from repro.core.knowledge import IO500Knowledge
from repro.util.errors import AnalysisError
from repro.util.stats import boxplot_stats
from repro.util.tables import render_kv, render_table

__all__ = ["IO500Viewer"]


class IO500Viewer:
    """Formats and charts IO500 knowledge objects."""

    def render(self, knowledge: IO500Knowledge) -> str:
        """Textual view of one IO500 run: scores plus all test cases."""
        header = render_kv(
            {
                "IOFH id": knowledge.iofh_id if knowledge.iofh_id is not None else "-",
                "version": knowledge.version or "-",
                "nodes": knowledge.num_nodes,
                "tasks": knowledge.num_tasks,
                "score (total)": knowledge.score_total,
                "score (bandwidth GiB/s)": knowledge.score_bw,
                "score (metadata kIOPS)": knowledge.score_md,
            }
        )
        rows = [[t.name, t.value, t.unit, t.time_s] for t in knowledge.testcases]
        table = render_table(["test case", "value", "unit", "time(s)"], rows, indent="  ")
        return f"{header}\nTest cases:\n{table}\n"

    def score_chart(self, runs: list[IO500Knowledge]) -> ChartSpec:
        """Total/bandwidth/metadata scores across runs."""
        if not runs:
            raise AnalysisError("need at least one IO500 run")
        x = tuple(self._label(r, i) for i, r in enumerate(runs))
        return ChartSpec(
            kind="bar",
            title="IO500 scores",
            x_label="run",
            y_label="score",
            series=[
                Series(name="total", x=x, y=tuple(r.score_total for r in runs)),
                Series(name="bandwidth", x=x, y=tuple(r.score_bw for r in runs)),
                Series(name="metadata", x=x, y=tuple(r.score_md for r in runs)),
            ],
        )

    def testcase_chart(
        self, runs: list[IO500Knowledge], testcases: tuple[str, ...]
    ) -> ChartSpec:
        """Selected test cases across runs (one series per test case)."""
        if not runs:
            raise AnalysisError("need at least one IO500 run")
        x = tuple(self._label(r, i) for i, r in enumerate(runs))
        series = [
            Series(name=name, x=x, y=tuple(r.value(name) for r in runs))
            for name in testcases
        ]
        if not series:
            raise AnalysisError("no test cases selected")
        return ChartSpec(
            kind="bar",
            title="IO500 test cases across runs",
            x_label="run",
            y_label="result",
            series=series,
        )

    def boundary_boxplot(
        self,
        runs: list[IO500Knowledge],
        testcases: tuple[str, ...] = (
            "ior-easy-write",
            "ior-hard-write",
            "ior-easy-read",
            "ior-hard-read",
        ),
    ) -> ChartSpec:
        """Distribution of the boundary test cases over repeated runs.

        The Fig. 6 view: the variance of ior-easy/ior-hard write vs.
        the flat reads, with anomalous runs appearing as outliers.
        """
        if len(runs) < 2:
            raise AnalysisError("boundary boxplot needs at least two runs")
        boxes = []
        for name in testcases:
            values = [r.value(name) for r in runs]
            boxes.append(BoxSeries(name=name, stats=boxplot_stats(values)))
        return ChartSpec(
            kind="boxplot",
            title="IO500 boundary test cases",
            x_label="test case",
            y_label="GiB/s",
            boxes=boxes,
        )

    @staticmethod
    def _label(run: IO500Knowledge, index: int) -> str:
        return f"#{run.iofh_id}" if run.iofh_id is not None else f"run{index}"
