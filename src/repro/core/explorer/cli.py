"""Command-line knowledge explorer (the §V-D tool as a CLI).

Usage::

    repro-explore knowledge.db --list
    repro-explore knowledge.db --view 3
    repro-explore knowledge.db --compare 1 2 3 --x-axis xfersize --metric bw_mean
    repro-explore knowledge.db --diff 1 2
    repro-explore knowledge.db --view 3 --chart /tmp/run3.svg
    repro-explore --metrics metrics.json
    repro-explore knowledge.db --analytics
    repro-explore 'knowledge+service:///var/lib/repro/store' --list
    repro-explore /var/lib/repro/store --service --view 2048
    repro-explore 'knowledge+tcp://db-node:9477/' --list

A ``knowledge+service://`` URL (or the ``--service`` flag on a store
directory) routes every read through the sharded knowledge service —
same commands, cache-fronted concurrent store.  A ``knowledge+tcp://``
URL reaches a ``repro-serve --listen`` server in another process or on
another host; the explorer commands are identical.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.explorer.comparison import ComparisonView
from repro.core.explorer.charts import render_ascii
from repro.core.explorer.export import export_image
from repro.core.explorer.io500_viewer import IO500Viewer
from repro.core.explorer.viewer import KnowledgeViewer
from repro.core.persistence.database import KnowledgeDatabase
from repro.core.persistence.io500_repo import IO500Repository
from repro.core.persistence.repository import KnowledgeRepository
from repro.core.service.client import ServiceClient, is_service_url, is_tcp_url
from repro.util.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro-explore argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-explore", description="Explore a knowledge database."
    )
    parser.add_argument(
        "database", nargs="?", default=None,
        help="SQLite knowledge database path or URL",
    )
    parser.add_argument("--list", action="store_true", help="list stored knowledge")
    parser.add_argument("--view", type=int, default=None, help="show one knowledge object")
    parser.add_argument("--io500", type=int, default=None, help="show one IO500 run")
    parser.add_argument(
        "--compare", type=int, nargs="+", default=None, help="compare knowledge ids"
    )
    parser.add_argument(
        "--diff", type=int, nargs=2, default=None, metavar=("LEFT", "RIGHT"),
        help="field-by-field diff of two knowledge ids",
    )
    parser.add_argument("--x-axis", default="knowledge_id", help="comparison x axis")
    parser.add_argument("--metric", default="bw_mean", help="comparison y metric")
    parser.add_argument("--chart", default=None, help="export the view's chart as SVG")
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="render a text report of a repro-cycle --metrics-json snapshot",
    )
    parser.add_argument(
        "--service", action="store_true",
        help="treat DATABASE as a sharded knowledge-service store "
             "(implied by knowledge+service:// URLs)",
    )
    parser.add_argument(
        "--analytics", action="store_true",
        help="fleet analytics report: percentile distributions, "
             "correlations, scoring balance and outliers (runs over the "
             "columnar scan API, local or via knowledge+tcp://)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(list(sys.argv[1:] if argv is None else argv))
    if args.metrics is not None:
        import json

        from repro.core.metrics import render_metrics_report

        try:
            with open(args.metrics, encoding="utf-8") as fh:
                snapshot = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read metrics snapshot {args.metrics}: {exc}",
                  file=sys.stderr)
            return 1
        try:
            print(render_metrics_report(snapshot))
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.database is None:
            return 0
    if args.database is None:
        print("error: a knowledge database is required (or use --metrics)",
              file=sys.stderr)
        return 2
    try:
        if is_tcp_url(args.database):
            # Remote server: no local store to sanity-check — the URL is
            # the store, and connect errors surface as typed transport
            # faults below.
            with ServiceClient.open(args.database) as client:
                return _explore(args, client, None)
        if args.service or is_service_url(args.database):
            from pathlib import Path

            from repro.core.service.client import parse_service_url

            root = args.database
            if is_service_url(root):
                root = parse_service_url(root)[0]
            if not (Path(root) / "manifest.db").exists():
                print(f"error: {root} is not a knowledge-service store "
                      "(no manifest.db); create one with repro-serve",
                      file=sys.stderr)
                return 1
            with ServiceClient.open(args.database) as client:
                return _explore(args, client, None)
        with KnowledgeDatabase(args.database) as db:
            return _explore(args, KnowledgeRepository(db), IO500Repository(db))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _explore(args, repo, io5) -> int:
    """Run one explorer command against a repository-shaped source.

    ``repo`` is either a :class:`KnowledgeRepository` (single database)
    or a :class:`ServiceClient` (sharded service) — both speak the same
    ``load``/``list_ids``/``count`` API.  ``io5`` is ``None`` in
    service mode (IO500 knowledge is not served by the service yet).
    """
    spec = None
    if args.analytics:
        from repro.core.analytics import analytics_report

        # The distribution tables run over the scan pushdown either
        # way; IO500 sections need the embedded repositories (io5 is
        # None through the service).
        print(analytics_report(repo, io5))
        return 0
    if args.view is not None:
        knowledge = repo.load(args.view)
        print(KnowledgeViewer().render(knowledge))
        spec = KnowledgeViewer().iteration_chart(knowledge)
        print(render_ascii(spec))
    elif args.io500 is not None:
        if io5 is None:
            print("error: --io500 is not available through the knowledge service",
                  file=sys.stderr)
            return 2
        print(IO500Viewer().render(io5.load(args.io500)))
    elif args.diff:
        from repro.core.explorer.diff import diff_knowledge

        left, right = (repo.load(i) for i in args.diff)
        print(diff_knowledge(left, right).render())
    elif args.compare:
        # Batched read: one round-trip per table (or per shard through
        # the service) instead of a full load() per compared id.
        view = ComparisonView(repo.fetch_many(args.compare))
        print(view.table())
        spec = view.chart(x_axis=args.x_axis, y_metric=args.metric)
        print(render_ascii(spec))
    else:  # default / --list
        # COUNT fast path for the header: no row deserialisation just
        # to size the knowledge base.
        print(f"{repo.count()} knowledge object(s): {repo.list_ids()}")
        if io5 is not None:
            io5_ids = io5.list_ids()
            print(f"{len(io5_ids)} IO500 run(s): {io5_ids}")
        else:
            # stats() is transport-neutral: the same summary whether the
            # service is embedded or a TCP round-trip away.
            stats = repo.stats()
            rows = stats.get("rows_per_shard", {})
            per_shard = ", ".join(
                f"shard {int(i)}: {rows[i]}" for i in sorted(rows, key=int)
            )
            print(f"served from {stats['shards']} shard(s) ({per_shard})")

    if args.chart:
        if spec is None:
            print("error: --chart needs --view or --compare", file=sys.stderr)
            return 2
        export_image(spec, args.chart)
        print(f"chart exported to {args.chart}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
