"""The comparison view of the knowledge explorer (§V-D).

"Our tool offers the ability to select any number of knowledge objects
and compares them based on defined metrics.  Therefore, the user can
select the axes of the chart at runtime ... for the y-axis applied
option and for x-axis focused metrics can be selected."  Filtering and
sorting of knowledge objects is supported "to find similar knowledge
object[s] and perform fine-grained evaluations".
"""

from __future__ import annotations

from typing import Callable

from repro.core.explorer.boxplot import overview_boxplot
from repro.core.explorer.charts import ChartSpec, Series
from repro.core.knowledge import Knowledge
from repro.util.errors import AnalysisError
from repro.util.tables import render_table

__all__ = ["ComparisonView", "SUMMARY_METRICS"]

#: y-axis metrics selectable at runtime.
SUMMARY_METRICS = ("bw_mean", "bw_max", "bw_min", "bw_stddev", "ops_mean", "ops_max", "ops_min")

#: x-axis options: knowledge attributes first, then pattern parameters.
_ATTRIBUTE_AXES = ("knowledge_id", "api", "num_tasks", "num_nodes", "benchmark", "command")


class ComparisonView:
    """Compares any number of knowledge objects on selectable axes."""

    def __init__(self, knowledge_objects: list[Knowledge]) -> None:
        if not knowledge_objects:
            raise AnalysisError("comparison needs at least one knowledge object")
        self.objects = list(knowledge_objects)

    # ------------------------------------------------------------------
    # filter / sort (return new views, original untouched)
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[Knowledge], bool]) -> "ComparisonView":
        """Keep only objects matching the predicate."""
        selected = [k for k in self.objects if predicate(k)]
        if not selected:
            raise AnalysisError("filter removed every knowledge object")
        return ComparisonView(selected)

    def filter_by(self, **attrs: object) -> "ComparisonView":
        """Keep objects whose attributes/parameters equal the given values."""

        def predicate(k: Knowledge) -> bool:
            for name, expected in attrs.items():
                actual = getattr(k, name, None)
                if actual is None:
                    actual = k.parameters.get(name)
                if actual != expected:
                    return False
            return True

        return self.filter(predicate)

    def sort_by(
        self, metric: str = "bw_mean", operation: str = "write", descending: bool = True
    ) -> "ComparisonView":
        """Sort objects by a summary metric of one operation."""
        self._check_metric(metric)
        ordered = sorted(
            self.objects,
            key=lambda k: self._metric_value(k, operation, metric),
            reverse=descending,
        )
        return ComparisonView(ordered)

    # ------------------------------------------------------------------
    # axis access
    # ------------------------------------------------------------------
    def _check_metric(self, metric: str) -> None:
        if metric not in SUMMARY_METRICS:
            raise AnalysisError(
                f"unknown metric {metric!r}; selectable: {SUMMARY_METRICS}"
            )

    def _metric_value(self, k: Knowledge, operation: str, metric: str) -> float:
        return float(getattr(k.summary(operation), metric))

    def _axis_value(self, k: Knowledge, axis: str) -> object:
        if axis in _ATTRIBUTE_AXES:
            return getattr(k, axis)
        value = k.parameters.get(axis)
        if value is None:
            raise AnalysisError(
                f"axis {axis!r} is neither a knowledge attribute nor a parameter of "
                f"object {k.knowledge_id}"
            )
        return value

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------
    def table(self, metrics: tuple[str, ...] = ("bw_mean", "bw_max", "bw_min")) -> str:
        """Comparison table: one row per (object, operation)."""
        for m in metrics:
            self._check_metric(m)
        headers = ["id", "benchmark", "api", "tasks", "operation", *metrics]
        rows = []
        for k in self.objects:
            for s in k.summaries:
                rows.append(
                    [
                        k.knowledge_id,
                        k.benchmark,
                        k.api,
                        k.num_tasks,
                        s.operation,
                        *[float(getattr(s, m)) for m in metrics],
                    ]
                )
        return render_table(headers, rows)

    def chart(
        self,
        x_axis: str = "knowledge_id",
        y_metric: str = "bw_mean",
        operations: tuple[str, ...] = ("write", "read"),
        kind: str = "bar",
    ) -> ChartSpec:
        """Comparison chart with runtime-selectable axes."""
        self._check_metric(y_metric)
        x_values = tuple(self._axis_value(k, x_axis) for k in self.objects)
        series = []
        for op in operations:
            ys = []
            for k in self.objects:
                try:
                    ys.append(self._metric_value(k, op, y_metric))
                except Exception:  # noqa: BLE001 - object lacks this operation
                    ys.append(0.0)
            if any(ys):
                series.append(Series(name=op, x=x_values, y=tuple(ys)))
        if not series:
            raise AnalysisError(f"no object has any of the operations {operations}")
        return ChartSpec(
            kind=kind,
            title=f"Knowledge comparison: {y_metric} by {x_axis}",
            x_label=x_axis,
            y_label=y_metric,
            series=series,
        )

    def overview(self, operation: str = "write") -> ChartSpec:
        """Boxplot overview (auto-created on selection, §V-D)."""
        return overview_boxplot(self.objects, operation)
