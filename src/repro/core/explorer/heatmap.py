"""Heatmap builders (the §VI chart-type extension).

Two heatmaps the outlook asks for: a *parameter heatmap* pivoting a
knowledge base over two pattern parameters (e.g. transfer size x node
count, cell = mean throughput), and a *DXT activity heatmap* (rank x
time, cell = bytes moved) — the DXT-Explorer-style view of §II-A2.
"""

from __future__ import annotations

import numpy as np

from repro.core.explorer.charts import ChartSpec, HeatmapData
from repro.core.knowledge import Knowledge
from repro.darshan.pydarshan import DarshanReport
from repro.util.errors import AnalysisError

__all__ = ["knowledge_heatmap", "dxt_activity_heatmap"]


def _axis_value(k: Knowledge, axis: str) -> object:
    if hasattr(k, axis):
        return getattr(k, axis)
    value = k.parameters.get(axis)
    if value is None:
        raise AnalysisError(
            f"axis {axis!r} not found on knowledge object {k.knowledge_id}"
        )
    return value


def _sort_key(label: str) -> tuple[int, object]:
    try:
        return (0, float(label))
    except ValueError:
        return (1, label)


def knowledge_heatmap(
    objects: list[Knowledge],
    x_axis: str,
    y_axis: str,
    metric: str = "bw_mean",
    operation: str = "write",
) -> ChartSpec:
    """Pivot a knowledge base over two axes into a heatmap.

    Cells average the metric over all objects sharing the (x, y) pair;
    missing combinations raise (the sweep should cover the grid).
    """
    if not objects:
        raise AnalysisError("heatmap needs at least one knowledge object")
    cells: dict[tuple[str, str], list[float]] = {}
    for k in objects:
        x = str(_axis_value(k, x_axis))
        y = str(_axis_value(k, y_axis))
        value = float(getattr(k.summary(operation), metric))
        cells.setdefault((x, y), []).append(value)
    x_labels = tuple(sorted({x for x, _ in cells}, key=_sort_key))
    y_labels = tuple(sorted({y for _, y in cells}, key=_sort_key))
    values = []
    for y in y_labels:
        row = []
        for x in x_labels:
            bucket = cells.get((x, y))
            if not bucket:
                raise AnalysisError(
                    f"no knowledge for combination {x_axis}={x}, {y_axis}={y}; "
                    "sweep the full grid first"
                )
            row.append(float(np.mean(bucket)))
        values.append(tuple(row))
    return ChartSpec(
        kind="heatmap",
        title=f"{metric} ({operation}) over {x_axis} x {y_axis}",
        x_label=x_axis,
        y_label=y_axis,
        heatmap=HeatmapData(x_labels=x_labels, y_labels=y_labels, values=tuple(values)),
    )


def dxt_activity_heatmap(
    report: DarshanReport, module: str = "POSIX", nbins: int = 24
) -> ChartSpec:
    """Rank x time activity heatmap from DXT traces (MiB per cell)."""
    if nbins <= 0:
        raise AnalysisError("nbins must be >= 1")
    segments = report.dxt_segments(module)
    if not segments:
        raise AnalysisError("no DXT segments; profile with enable_dxt=True")
    per_rank: dict[int, list] = {}
    for (rank, _path), segs in segments.items():
        per_rank.setdefault(rank, []).extend(segs)
    t0 = min(s.start for segs in per_rank.values() for s in segs)
    t1 = max(s.end for segs in per_rank.values() for s in segs)
    span = max(t1 - t0, 1e-12)
    ranks = sorted(per_rank)
    grid = np.zeros((len(ranks), nbins))
    for row, rank in enumerate(ranks):
        for s in per_rank[rank]:
            col = min(int((s.start - t0) / span * nbins), nbins - 1)
            grid[row, col] += s.length / 1048576
    return ChartSpec(
        kind="heatmap",
        title=f"DXT activity ({module}, MiB per bin)",
        x_label="time bin",
        y_label="rank",
        heatmap=HeatmapData(
            x_labels=tuple(str(i) for i in range(nbins)),
            y_labels=tuple(str(r) for r in ranks),
            values=tuple(tuple(float(v) for v in row) for row in grid),
        ),
    )
