"""HTML dashboard report generation.

§III's analysis phase ranges from "simple plots, interactive charts,
or even complex dashboards"; §V-D's explorer is a web tool.  This
module renders a whole knowledge base into one self-contained HTML
dashboard — no external assets, charts inlined as SVG — the deliverable
a user would publish or attach to a ticket.

Sections: summary tiles, throughput overview boxplot, comparison table
+ chart, per-knowledge detail (viewer text + Fig. 5-style iteration
chart), IO500 runs with scores and the bounding box, and the usage
findings (anomalies, recommendations).
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Sequence

from repro.core.explorer.bbox_chart import bounding_box_chart
from repro.core.explorer.charts import render_svg
from repro.core.explorer.comparison import ComparisonView
from repro.core.explorer.io500_viewer import IO500Viewer
from repro.core.explorer.viewer import KnowledgeViewer
from repro.core.knowledge import IO500Knowledge, Knowledge
from repro.core.usage.anomaly import IterationAnomalyDetector
from repro.core.usage.bounding_box import build_bounding_box
from repro.util.errors import AnalysisError

__all__ = ["render_dashboard", "write_dashboard"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto;
       max-width: 72rem; color: #1a202c; }
h1 { border-bottom: 2px solid #4878d0; padding-bottom: .3rem; }
h2 { color: #2d3748; margin-top: 2.2rem; }
.tiles { display: flex; gap: 1rem; flex-wrap: wrap; }
.tile { background: #f7fafc; border: 1px solid #e2e8f0; border-radius: 8px;
        padding: 1rem 1.4rem; min-width: 9rem; }
.tile .value { font-size: 1.6rem; font-weight: 600; color: #4878d0; }
.tile .label { font-size: .8rem; color: #718096; text-transform: uppercase; }
table { border-collapse: collapse; margin: .8rem 0; }
th, td { border: 1px solid #e2e8f0; padding: .35rem .7rem; font-size: .88rem;
         text-align: left; }
th { background: #edf2f7; }
pre { background: #f7fafc; border: 1px solid #e2e8f0; border-radius: 6px;
      padding: .8rem; font-size: .8rem; overflow-x: auto; }
.finding { background: #fff5f5; border-left: 4px solid #d65f5f;
           padding: .5rem .9rem; margin: .4rem 0; }
.ok { background: #f0fff4; border-left-color: #6acc64; }
figure { margin: 1rem 0; }
"""


def _tile(label: str, value: object) -> str:
    return (
        f'<div class="tile"><div class="value">{html.escape(str(value))}</div>'
        f'<div class="label">{html.escape(label)}</div></div>'
    )


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(
            f"<td>{html.escape(f'{c:.2f}' if isinstance(c, float) else str(c))}</td>"
            for c in row
        ) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def render_dashboard(
    knowledge: Sequence[Knowledge],
    io500_runs: Sequence[IO500Knowledge] = (),
    title: str = "I/O Knowledge Dashboard",
) -> str:
    """Render the dashboard HTML for a knowledge base."""
    if not knowledge and not io500_runs:
        raise AnalysisError("dashboard needs at least one knowledge object")
    parts = [
        "<!DOCTYPE html>",
        f'<html><head><meta charset="utf-8"><title>{html.escape(title)}</title>',
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
    ]

    # --- summary tiles ------------------------------------------------
    n_results = sum(len(s.results) for k in knowledge for s in k.summaries)
    tiles = [
        _tile("knowledge objects", len(knowledge)),
        _tile("IO500 runs", len(io500_runs)),
        _tile("iteration results", n_results),
    ]
    if knowledge:
        best = max(
            (s.bw_mean for k in knowledge for s in k.summaries if s.operation == "write"),
            default=0.0,
        )
        tiles.append(_tile("best write MiB/s", f"{best:.0f}"))
    if io500_runs:
        tiles.append(
            _tile("best IO500 score", f"{max(r.score_total for r in io500_runs):.2f}")
        )
    parts.append(f'<div class="tiles">{"".join(tiles)}</div>')

    # --- benchmark knowledge ------------------------------------------
    if knowledge:
        view = ComparisonView(list(knowledge))
        parts.append("<h2>Throughput overview</h2>")
        try:
            parts.append(f"<figure>{render_svg(view.overview('write'), 760, 380)}</figure>")
        except AnalysisError:
            pass
        parts.append("<h2>Comparison</h2>")
        rows = [
            [
                k.knowledge_id if k.knowledge_id is not None else "-",
                k.benchmark,
                k.api,
                k.num_tasks,
                s.operation,
                s.bw_mean,
                s.bw_max,
                s.bw_min,
                s.iterations,
            ]
            for k in knowledge
            for s in k.summaries
        ]
        parts.append(
            _table(
                ["id", "benchmark", "api", "tasks", "op", "bw mean", "bw max", "bw min", "iters"],
                rows,
            )
        )

        viewer = KnowledgeViewer()
        detector = IterationAnomalyDetector()
        parts.append("<h2>Runs</h2>")
        for k in knowledge:
            label = f"#{k.knowledge_id}" if k.knowledge_id is not None else k.benchmark
            parts.append(f"<h3>Knowledge {html.escape(label)}</h3>")
            parts.append(f"<pre>{html.escape(viewer.render(k))}</pre>")
            try:
                chart = viewer.iteration_chart(k)
                parts.append(f"<figure>{render_svg(chart, 760, 340)}</figure>")
            except AnalysisError:
                pass
            anomalies = detector.detect(k)
            if anomalies:
                for a in anomalies:
                    parts.append(f'<div class="finding">⚠ {html.escape(a.description)}</div>')
            else:
                parts.append('<div class="finding ok">no iteration anomalies</div>')

    # --- IO500 ---------------------------------------------------------
    if io500_runs:
        io5 = IO500Viewer()
        parts.append("<h2>IO500</h2>")
        parts.append(
            _table(
                ["run", "score", "bw (GiB/s)", "md (kIOPS)", "nodes", "tasks"],
                [
                    [
                        r.iofh_id if r.iofh_id is not None else i,
                        r.score_total,
                        r.score_bw,
                        r.score_md,
                        r.num_nodes,
                        r.num_tasks,
                    ]
                    for i, r in enumerate(io500_runs)
                ],
            )
        )
        if len(io500_runs) >= 2:
            parts.append(
                f"<figure>{render_svg(io5.boundary_boxplot(list(io500_runs)), 760, 380)}</figure>"
            )
            box = build_bounding_box(list(io500_runs))
            parts.append(
                f"<figure>{render_svg(bounding_box_chart(box), 760, 380)}</figure>"
            )

    parts.append("</body></html>")
    return "\n".join(parts)


def write_dashboard(
    knowledge: Sequence[Knowledge],
    path: str | Path,
    io500_runs: Sequence[IO500Knowledge] = (),
    title: str = "I/O Knowledge Dashboard",
) -> Path:
    """Write the dashboard to an HTML file; returns the path."""
    out = Path(path)
    if out.suffix.lower() not in (".html", ".htm"):
        raise AnalysisError(f"dashboard must be written as .html, got {out.suffix!r}")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_dashboard(knowledge, io500_runs, title), encoding="utf-8")
    return out
