"""Chart image export.

§V-D: "the tool provides the ability to visualize results as an
interactive graph and export it as an image file."  The library export
format is SVG (self-contained, dependency-free, diffable in tests).
"""

from __future__ import annotations

from pathlib import Path

from repro.core.explorer.charts import ChartSpec, render_svg
from repro.util.errors import AnalysisError

__all__ = ["export_image"]


def export_image(spec: ChartSpec, path: str | Path, width: int = 640, height: int = 400) -> Path:
    """Write a chart as an SVG image file; returns the path."""
    out = Path(path)
    if out.suffix.lower() != ".svg":
        raise AnalysisError(
            f"only .svg export is supported, got {out.suffix!r} (requested {out})"
        )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_svg(spec, width=width, height=height), encoding="utf-8")
    return out
