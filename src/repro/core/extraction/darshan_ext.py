"""Darshan log extraction (the PyDarshan integration of §V-B).

Turns a ``.darshan`` log into a knowledge object: aggregate read/write
bandwidth estimates as the performance metrics, the dominant access
sizes as pattern parameters, and the job header as run metadata.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.knowledge import Knowledge, KnowledgeResult, KnowledgeSummary
from repro.darshan.pydarshan import DarshanReport
from repro.util.errors import ExtractionError

__all__ = ["knowledge_from_report", "extract_darshan_directory"]


def knowledge_from_report(report: DarshanReport) -> Knowledge:
    """Build a Knowledge object from a loaded Darshan report."""
    module = "POSIX" if "POSIX" in report.modules else (report.modules[0] if report.modules else None)
    if module is None:
        raise ExtractionError("darshan log has no instrumented modules")
    bw = report.agg_bandwidth_mib(module)
    counters = report.counters(module)
    prefix = "H5D" if module == "HDF5" else module
    summaries = []
    for op, key in (("write", "write_mib_s"), ("read", "read_mib_s")):
        value = bw[key]
        if value <= 0:
            continue
        kind = "WRITE" if op == "write" else "READ"
        n_ops = counters[f"{prefix}_{kind}S"]
        time_key = counters[f"{prefix}_F_{kind}_TIME"]
        iops = n_ops / time_key if time_key > 0 else 0.0
        row = KnowledgeResult(
            iteration=0, bandwidth_mib=value, iops=iops, wrrd_time_s=time_key
        )
        summaries.append(
            KnowledgeSummary(
                operation=op,
                api=module,
                bw_max=value,
                bw_min=value,
                bw_mean=value,
                bw_stddev=0.0,
                ops_max=iops,
                ops_min=iops,
                ops_mean=iops,
                ops_stddev=0.0,
                iterations=1,
                results=[row],
            )
        )
    if not summaries:
        raise ExtractionError("darshan log recorded no data movement")

    hist_write = report.size_histogram(module, "WRITE")
    hist_read = report.size_histogram(module, "READ")
    job = dict(report.metadata["job"])  # type: ignore[arg-type]
    parameters: dict[str, object] = {
        "modules": report.modules,
        "dominant_write_size": _dominant(hist_write),
        "dominant_read_size": _dominant(hist_read),
        "bytes_written": report.total_bytes(module)[1],
        "bytes_read": report.total_bytes(module)[0],
    }
    return Knowledge(
        benchmark="darshan",
        command=str(job.get("exe", "")),
        api=module,
        num_tasks=report.nprocs,
        start_time=float(job.get("start_time", 0.0)),
        end_time=float(job.get("end_time", 0.0)),
        parameters=parameters,
        summaries=summaries,
    )


def _dominant(hist: dict[str, int]) -> str:
    if not hist or all(v == 0 for v in hist.values()):
        return ""
    return max(hist.items(), key=lambda kv: kv[1])[0]


def extract_darshan_directory(directory: Path) -> list[Knowledge]:
    """Extract knowledge from every ``.darshan`` log in a directory."""
    logs = sorted(directory.glob("*.darshan"))
    if not logs:
        raise ExtractionError(f"no .darshan logs in {directory}")
    return [knowledge_from_report(DarshanReport(p)) for p in logs]
