"""JUBE workspace scanning — the automated mode of the extractor.

§V-B: "By default, the tool expects the path of the output as a
parameter.  If the path is not specified, our tool automatically
searches in the JUBE workspace for available benchmark results."  The
scanner walks a JUBE ``outpath`` (or any directory tree), finds
workpackage ``work`` directories, and dispatches each to the
registered extractors.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.extraction.base import ExtractorRegistry, ExtractorSpec
from repro.core.extraction.darshan_ext import extract_darshan_directory
from repro.core.extraction.hacc import extract_hacc_directory
from repro.core.extraction.io500 import extract_io500_directory
from repro.core.extraction.ior import extract_ior_directory
from repro.core.extraction.mdtest_ext import extract_mdtest_directory
from repro.core.knowledge import IO500Knowledge, Knowledge
from repro.util.errors import ExtractionError

__all__ = ["default_registry", "scan_workspace", "KnowledgeExtractor"]


def default_registry() -> ExtractorRegistry:
    """Registry with the five built-in data sources (§V-A + mdtest)."""
    registry = ExtractorRegistry()
    registry.register(
        ExtractorSpec(name="ior", marker_files=("ior_output.txt",), extract=extract_ior_directory)
    )
    registry.register(
        ExtractorSpec(
            name="io500", marker_files=("io500_result.txt",), extract=extract_io500_directory
        )
    )
    registry.register(
        ExtractorSpec(
            name="hacc-io", marker_files=("hacc_output.txt",), extract=extract_hacc_directory
        )
    )
    registry.register(
        ExtractorSpec(
            name="mdtest", marker_files=("mdtest_output.txt",), extract=extract_mdtest_directory
        )
    )
    registry.register(
        ExtractorSpec(
            name="darshan", marker_files=("*.darshan",), extract=extract_darshan_directory
        )
    )
    return registry


def scan_workspace(
    workspace: str | Path, registry: ExtractorRegistry | None = None
) -> list[Knowledge | IO500Knowledge]:
    """Extract knowledge from every recognised directory under ``workspace``.

    Scans the workspace root itself plus every subdirectory, so both a
    single run directory and a whole JUBE ``outpath`` tree work.
    """
    root = Path(workspace)
    if not root.is_dir():
        raise ExtractionError(f"workspace {root} is not a directory")
    registry = registry or default_registry()
    out: list[Knowledge | IO500Knowledge] = []
    candidates = [root] + sorted(p for p in root.rglob("*") if p.is_dir())
    for directory in candidates:
        out.extend(registry.extract_directory(directory))
    return out


class KnowledgeExtractor:
    """The Phase-II tool: manual path mode or automatic workspace mode."""

    def __init__(
        self,
        registry: ExtractorRegistry | None = None,
        jube_workspace: str | Path | None = None,
    ) -> None:
        self.registry = registry or default_registry()
        self.jube_workspace = Path(jube_workspace) if jube_workspace else None

    def extract(self, path: str | Path | None = None) -> list[Knowledge | IO500Knowledge]:
        """Extract from ``path``, or scan the JUBE workspace if omitted."""
        if path is not None:
            return scan_workspace(path, self.registry)
        if self.jube_workspace is None:
            raise ExtractionError(
                "no path given and no JUBE workspace configured for automatic search"
            )
        return scan_workspace(self.jube_workspace, self.registry)
