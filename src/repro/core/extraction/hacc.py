"""HACC-IO output extraction."""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.knowledge import Knowledge, KnowledgeResult, KnowledgeSummary
from repro.util.errors import ExtractionError

__all__ = ["parse_hacc_output", "extract_hacc_directory"]

_HEADER_RE = re.compile(
    r"^HACC-IO mode=(?P<mode>\S+) api=(?P<api>\S+) particles=(?P<particles>\d+)",
    re.MULTILINE,
)
_PHASE_RE = re.compile(
    r"^(?P<op>write|read) bandwidth:\s*(?P<bw>[\d.]+)\s*MiB/s\s+"
    r"time:\s*(?P<time>[\d.]+)\s*s\s+bytes:\s*(?P<bytes>\d+)",
    re.MULTILINE,
)


def parse_hacc_output(text: str) -> Knowledge:
    """Parse HACC-IO output text into a Knowledge object."""
    header = _HEADER_RE.search(text)
    if header is None:
        raise ExtractionError("not a HACC-IO output file")
    summaries = []
    for m in _PHASE_RE.finditer(text):
        bw = float(m.group("bw"))
        time_s = float(m.group("time"))
        row = KnowledgeResult(
            iteration=0,
            bandwidth_mib=bw,
            iops=1.0 / time_s if time_s > 0 else 0.0,
            total_time_s=time_s,
            wrrd_time_s=time_s,
        )
        summaries.append(
            KnowledgeSummary(
                operation=m.group("op"),
                api=header.group("api"),
                bw_max=bw,
                bw_min=bw,
                bw_mean=bw,
                bw_stddev=0.0,
                ops_max=row.iops,
                ops_min=row.iops,
                ops_mean=row.iops,
                ops_stddev=0.0,
                iterations=1,
                results=[row],
            )
        )
    if not summaries:
        raise ExtractionError("HACC-IO output has no phase lines")
    return Knowledge(
        benchmark="hacc-io",
        api=header.group("api"),
        file_per_proc=header.group("mode") == "file-per-process",
        parameters={
            "mode": header.group("mode"),
            "particles": int(header.group("particles")),
        },
        summaries=summaries,
    )


def extract_hacc_directory(directory: Path) -> list[Knowledge]:
    """Extract knowledge from a run directory with HACC-IO output."""
    from repro.core.extraction.system import extract_system_info

    out_file = directory / "hacc_output.txt"
    if not out_file.exists():
        raise ExtractionError(f"no hacc_output.txt in {directory}")
    knowledge = parse_hacc_output(out_file.read_text(encoding="utf-8"))
    knowledge.system = extract_system_info(directory)
    return [knowledge]
