"""File-system settings extraction.

§V-B: "for BeeGFS, the file system settings Entry type, EntryID,
Metadata node, Stripe pattern details can be collected.  The support of
other popular parallel file systems is planned for future releases."
This module delivers both: the ``beegfs-ctl --getentryinfo`` parser of
the prototype plus the §VI-planned Lustre (``lfs getstripe``) and IBM
Spectrum Scale (``mmlsattr -L``) parsers, and a format-sniffing
dispatcher (:func:`parse_fs_info`) so the workspace scanner handles any
of the three dialects.
"""

from __future__ import annotations

import re

from repro.core.knowledge import FilesystemInfo
from repro.util.errors import ExtractionError

__all__ = ["parse_entryinfo", "parse_lfs_getstripe", "parse_mmlsattr", "parse_fs_info"]

_FIELD_RES = {
    "entry_type": re.compile(r"^Entry type:\s*(.+)$", re.MULTILINE),
    "entry_id": re.compile(r"^EntryID:\s*(\S+)", re.MULTILINE),
    "metadata_node": re.compile(r"^Metadata node:\s*(\S+)", re.MULTILINE),
    "stripe_pattern": re.compile(r"^\+ Type:\s*(.+)$", re.MULTILINE),
    "chunk_size": re.compile(r"^\+ Chunksize:\s*(\S+)", re.MULTILINE),
}

_NUM_TARGETS_RE = re.compile(r"Number of storage targets: desired:\s*(\d+)", re.MULTILINE)
_POOL_RE = re.compile(r"^\+ Storage Pool:\s*\d+\s*\((.+)\)", re.MULTILINE)


def parse_entryinfo(text: str, raid_scheme: str = "", fs_type: str = "beegfs") -> FilesystemInfo:
    """Parse ``beegfs-ctl --getentryinfo`` output into FilesystemInfo.

    Args:
        text: the command output.
        raid_scheme: backing RAID scheme when known from elsewhere
            (``beegfs-ctl`` itself does not print it).
        fs_type: file-system type label for the knowledge object.
    """
    if "Entry type:" not in text:
        raise ExtractionError("not beegfs-ctl getentryinfo output (no 'Entry type:')")
    fields: dict[str, str] = {}
    for name, regex in _FIELD_RES.items():
        m = regex.search(text)
        fields[name] = m.group(1).strip() if m else ""
    nt = _NUM_TARGETS_RE.search(text)
    pool = _POOL_RE.search(text)
    return FilesystemInfo(
        fs_type=fs_type,
        entry_type=fields["entry_type"],
        entry_id=fields["entry_id"],
        metadata_node=fields["metadata_node"],
        stripe_pattern=fields["stripe_pattern"],
        chunk_size=fields["chunk_size"],
        num_targets=int(nt.group(1)) if nt else 0,
        raid_scheme=raid_scheme,
        storage_pool=pool.group(1).strip() if pool else "",
    )


# ----------------------------------------------------------------------
# Lustre: lfs getstripe
# ----------------------------------------------------------------------
_LFS_FIELDS = {
    "stripe_count": re.compile(r"lmm_stripe_count:\s*(\d+)"),
    "stripe_size": re.compile(r"lmm_stripe_size:\s*(\d+)"),
    "pattern": re.compile(r"lmm_pattern:\s*(\S+)"),
    "stripe_offset": re.compile(r"lmm_stripe_offset:\s*(-?\d+)"),
}


def parse_lfs_getstripe(text: str, raid_scheme: str = "") -> FilesystemInfo:
    """Parse ``lfs getstripe`` output into FilesystemInfo.

    Lustre reports the stripe size in bytes and has no user-visible
    entry id; the MDT index stands in for the metadata node.
    """
    if "lmm_stripe_count" not in text and "stripe_count" not in text:
        raise ExtractionError("not lfs getstripe output (no stripe_count)")
    count_m = _LFS_FIELDS["stripe_count"].search(text)
    size_m = _LFS_FIELDS["stripe_size"].search(text)
    pattern_m = _LFS_FIELDS["pattern"].search(text)
    first_line = text.strip().splitlines()[0] if text.strip() else ""
    return FilesystemInfo(
        fs_type="lustre",
        entry_type="file" if count_m else "directory",
        entry_id=first_line,
        metadata_node="MDT0000",
        stripe_pattern=(pattern_m.group(1).upper() if pattern_m else ""),
        chunk_size=size_m.group(1) if size_m else "",
        num_targets=int(count_m.group(1)) if count_m else 0,
        raid_scheme=raid_scheme,
        storage_pool="",
    )


# ----------------------------------------------------------------------
# IBM Spectrum Scale (GPFS): mmlsattr -L (+ optional mmlsfs for -B)
# ----------------------------------------------------------------------
_MMLSATTR_POOL = re.compile(r"^storage pool name:\s*(\S+)", re.MULTILINE)
_MMLSATTR_NAME = re.compile(r"^file name:\s*(\S+)", re.MULTILINE)
_MMLSFS_BLOCK = re.compile(r"^\s*-B\s+(\d+)", re.MULTILINE)
_MMLSFS_NODES = re.compile(r"^\s*-n\s+(\d+)", re.MULTILINE)


def parse_mmlsattr(text: str, mmlsfs_text: str = "", raid_scheme: str = "") -> FilesystemInfo:
    """Parse ``mmlsattr -L`` (and optional ``mmlsfs``) output.

    GPFS stripes every file over all disks of its storage pool, so the
    block size from ``mmlsfs -B`` plays the chunk-size role and the
    estimated node count the target-count role.
    """
    if "storage pool name" not in text:
        raise ExtractionError("not mmlsattr output (no 'storage pool name')")
    pool_m = _MMLSATTR_POOL.search(text)
    name_m = _MMLSATTR_NAME.search(text)
    block_m = _MMLSFS_BLOCK.search(mmlsfs_text)
    nodes_m = _MMLSFS_NODES.search(mmlsfs_text)
    return FilesystemInfo(
        fs_type="gpfs",
        entry_type="file",
        entry_id=name_m.group(1) if name_m else "",
        metadata_node="",
        stripe_pattern="wide-stripe",
        chunk_size=block_m.group(1) if block_m else "",
        num_targets=int(nodes_m.group(1)) if nodes_m else 0,
        raid_scheme=raid_scheme,
        storage_pool=pool_m.group(1) if pool_m else "",
    )


def parse_fs_info(text: str, extra_text: str = "", raid_scheme: str = "") -> FilesystemInfo:
    """Dispatch on the administrative-output dialect.

    Recognises BeeGFS ``getentryinfo``, Lustre ``lfs getstripe`` and
    GPFS ``mmlsattr`` formats; raises when none match.
    """
    if "Entry type:" in text:
        return parse_entryinfo(text, raid_scheme=raid_scheme)
    if "stripe_count" in text:
        return parse_lfs_getstripe(text, raid_scheme=raid_scheme)
    if "storage pool name" in text:
        return parse_mmlsattr(text, mmlsfs_text=extra_text, raid_scheme=raid_scheme)
    raise ExtractionError("unrecognised file-system info format")
