"""Phase II: knowledge extraction from benchmark output and logs."""

from repro.core.extraction.base import ExtractorRegistry, ExtractorSpec
from repro.core.extraction.darshan_ext import knowledge_from_report
from repro.core.extraction.filesystem import parse_entryinfo
from repro.core.extraction.hacc import parse_hacc_output
from repro.core.extraction.io500 import parse_io500_ini, parse_io500_output
from repro.core.extraction.ior import parse_ior_output
from repro.core.extraction.system import extract_system_info, system_info_from_texts
from repro.core.extraction.workspace import KnowledgeExtractor, default_registry, scan_workspace

__all__ = [
    "ExtractorRegistry",
    "ExtractorSpec",
    "KnowledgeExtractor",
    "default_registry",
    "scan_workspace",
    "parse_ior_output",
    "parse_io500_output",
    "parse_io500_ini",
    "parse_hacc_output",
    "parse_entryinfo",
    "knowledge_from_report",
    "extract_system_info",
    "system_info_from_texts",
]
