"""mdtest output extraction.

Parses the ``SUMMARY rate`` block of mdtest output into a knowledge
object.  mdtest reports metadata *rates* rather than bandwidths, so the
rates map onto the ops fields of the summaries (one summary per
operation: creation, stat, read, removal) with the bandwidth fields
zeroed — the paper's §VI goal of a unified knowledge object over
benchmarks with different output formats.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.knowledge import Knowledge, KnowledgeResult, KnowledgeSummary
from repro.util.errors import ExtractionError

__all__ = ["parse_mdtest_output", "extract_mdtest_directory"]

_LAUNCH_RE = re.compile(r"mdtest-\S+ was launched with (\d+) total task", re.MULTILINE)
_COMMAND_RE = re.compile(r"^Command line used:\s*(.+)$", re.MULTILINE)
_RATE_RE = re.compile(
    r"^\s*(?P<label>File creation|File stat|File read|File removal|"
    r"Directory creation|Directory stat|Directory removal)\s*:\s*"
    r"(?P<max>[\d.]+)\s+(?P<min>[\d.]+)\s+(?P<mean>[\d.]+)\s+(?P<std>[\d.]+)",
    re.MULTILINE,
)

_OPERATION = {
    "File creation": "create",
    "File stat": "stat",
    "File read": "read",
    "File removal": "remove",
    "Directory creation": "mkdir",
    "Directory stat": "dirstat",
    "Directory removal": "rmdir",
}


def parse_mdtest_output(text: str) -> Knowledge:
    """Parse mdtest summary text into a Knowledge object."""
    if "SUMMARY rate" not in text:
        raise ExtractionError("not mdtest output (no 'SUMMARY rate' block)")
    launch = _LAUNCH_RE.search(text)
    command = _COMMAND_RE.search(text)
    summaries = []
    for m in _RATE_RE.finditer(text):
        rate_mean = float(m.group("mean"))
        row = KnowledgeResult(iteration=0, bandwidth_mib=0.0, iops=rate_mean)
        summaries.append(
            KnowledgeSummary(
                operation=_OPERATION[m.group("label")],
                api="POSIX",
                bw_max=0.0,
                bw_min=0.0,
                bw_mean=0.0,
                bw_stddev=0.0,
                ops_max=float(m.group("max")),
                ops_min=float(m.group("min")),
                ops_mean=rate_mean,
                ops_stddev=float(m.group("std")),
                iterations=1,
                results=[row],
            )
        )
    if not summaries:
        raise ExtractionError("mdtest output has no rate rows")
    parameters: dict[str, object] = {}
    if command:
        cmd = command.group(1)
        n_m = re.search(r"-n\s+(\d+)", cmd)
        if n_m:
            parameters["items_per_task"] = int(n_m.group(1))
        parameters["unique_dir_per_task"] = " -u" in cmd
        w_m = re.search(r"-w\s+(\d+)", cmd)
        if w_m:
            parameters["write_bytes"] = int(w_m.group(1))
    return Knowledge(
        benchmark="mdtest",
        command=command.group(1).strip() if command else "",
        api="POSIX",
        num_tasks=int(launch.group(1)) if launch else 0,
        parameters=parameters,
        summaries=summaries,
    )


def extract_mdtest_directory(directory: Path) -> list[Knowledge]:
    """Extract knowledge from a run directory with mdtest output."""
    from repro.core.extraction.system import extract_system_info

    out_file = directory / "mdtest_output.txt"
    if not out_file.exists():
        raise ExtractionError(f"no mdtest_output.txt in {directory}")
    knowledge = parse_mdtest_output(out_file.read_text(encoding="utf-8"))
    knowledge.system = extract_system_info(directory)
    return [knowledge]
