"""IO500 result extraction.

Parses the ``[RESULT]``/``[SCORE]`` lines of an IO500 result summary
(plus the optional ``io500.ini``) into an
:class:`~repro.core.knowledge.IO500Knowledge` object — the separate
knowledge type the paper persists in the IOFHs* tables (§V-C).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.knowledge import IO500Knowledge, IO500Testcase
from repro.util.errors import ExtractionError

__all__ = ["parse_io500_output", "parse_io500_ini", "extract_io500_directory"]

_RESULT_RE = re.compile(
    r"^\[RESULT\]\s+(?P<name>[\w-]+)\s+(?P<value>[\d.]+)\s+(?P<unit>\S+)\s*:"
    r"\s*time\s+(?P<time>[\d.]+)\s+seconds",
    re.MULTILINE,
)
_SCORE_RE = re.compile(
    r"^\[SCORE\s*\]\s+Bandwidth\s+(?P<bw>[\d.]+)\s+GiB/s\s*:"
    r"\s*IOPS\s+(?P<md>[\d.]+)\s+kiops\s*:\s*TOTAL\s+(?P<total>[\d.]+)",
    re.MULTILINE,
)
_VERSION_RE = re.compile(r"^IO500 version\s+(\S+)", re.MULTILINE)
_SYSTEM_RE = re.compile(
    r"^\[System\]\s+nodes:\s*(?P<nodes>\d+);\s*tasks:\s*(?P<tasks>\d+)", re.MULTILINE
)


def parse_io500_output(text: str) -> IO500Knowledge:
    """Parse an IO500 result summary text."""
    score_m = _SCORE_RE.search(text)
    if score_m is None:
        raise ExtractionError("no [SCORE] line: not a complete IO500 result file")
    testcases = [
        IO500Testcase(
            name=m.group("name"),
            value=float(m.group("value")),
            unit=m.group("unit"),
            time_s=float(m.group("time")),
        )
        for m in _RESULT_RE.finditer(text)
    ]
    if not testcases:
        raise ExtractionError("no [RESULT] lines in IO500 output")
    version_m = _VERSION_RE.search(text)
    system_m = _SYSTEM_RE.search(text)
    return IO500Knowledge(
        score_total=float(score_m.group("total")),
        score_bw=float(score_m.group("bw")),
        score_md=float(score_m.group("md")),
        num_nodes=int(system_m.group("nodes")) if system_m else 0,
        num_tasks=int(system_m.group("tasks")) if system_m else 0,
        version=version_m.group(1) if version_m else "",
        testcases=testcases,
    )


_INI_SECTION_RE = re.compile(r"^\[([^\]]+)\]\s*$")
_INI_KV_RE = re.compile(r"^(\w+)\s*=\s*(.+)$")


def parse_io500_ini(text: str) -> dict[str, dict[str, str]]:
    """Parse the io500.ini file into {section: {key: value}}."""
    sections: dict[str, dict[str, str]] = {}
    current: dict[str, str] | None = None
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith(("#", ";")):
            continue
        sec = _INI_SECTION_RE.match(line)
        if sec:
            current = sections.setdefault(sec.group(1), {})
            continue
        kv = _INI_KV_RE.match(line)
        if kv and current is not None:
            current[kv.group(1)] = kv.group(2).strip()
    return sections


def extract_io500_directory(directory: Path) -> list[IO500Knowledge]:
    """Extract one IO500 knowledge object from a run directory."""
    from repro.core.extraction.system import extract_system_info

    out_file = directory / "io500_result.txt"
    if not out_file.exists():
        raise ExtractionError(f"no io500_result.txt in {directory}")
    knowledge = parse_io500_output(out_file.read_text(encoding="utf-8"))
    ini_file = directory / "io500.ini"
    if ini_file.exists():
        sections = parse_io500_ini(ini_file.read_text(encoding="utf-8"))
        for testcase in knowledge.testcases:
            # Match ini sections to phases: 'ior-easy-write' -> 'ior-easy'.
            for section, options in sections.items():
                if testcase.name.startswith(section):
                    testcase.options.update(options)
    knowledge.system = extract_system_info(directory)
    return [knowledge]
