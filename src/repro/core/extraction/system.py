"""System statistics extraction from ``/proc`` capture files.

The generation steps store ``cpuinfo.txt``/``meminfo.txt`` captures of
the compute node's ``/proc`` files; this module parses them back into
the system-information dict attached to knowledge objects (§V-B).
"""

from __future__ import annotations

from pathlib import Path

from repro.cluster.sysinfo import parse_cpuinfo, parse_meminfo
from repro.util.errors import ExtractionError

__all__ = ["extract_system_info", "system_info_from_texts"]


def system_info_from_texts(cpuinfo_text: str, meminfo_text: str, hostname: str = "") -> dict[str, object]:
    """Build the system dict from raw /proc text contents."""
    info: dict[str, object] = {"hostname": hostname}
    info.update(parse_cpuinfo(cpuinfo_text))
    info.update(parse_meminfo(meminfo_text))
    info["architecture"] = "x86_64"
    return info


def extract_system_info(directory: str | Path) -> dict[str, object] | None:
    """Parse ``cpuinfo.txt``/``meminfo.txt`` in a run directory.

    Returns ``None`` when the capture files are absent (system info is
    optional on a knowledge object), raises on present-but-corrupt
    files.
    """
    d = Path(directory)
    cpu = d / "cpuinfo.txt"
    mem = d / "meminfo.txt"
    if not cpu.exists() or not mem.exists():
        return None
    try:
        return system_info_from_texts(
            cpu.read_text(encoding="utf-8"), mem.read_text(encoding="utf-8")
        )
    except ExtractionError as exc:
        raise ExtractionError(f"corrupt /proc capture in {d}: {exc}") from exc
