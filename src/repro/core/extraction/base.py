"""Extractor protocol and registry.

Phase II is tool-agnostic by design: every data source (IOR output,
IO500 result file, HACC-IO output, Darshan log, ...) contributes an
extractor that recognises its files in a run directory and turns them
into knowledge objects.  New sources register here — the paper's
"modularly extended" requirement (§III).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.core.knowledge import IO500Knowledge, Knowledge
from repro.util.errors import ExtractionError

__all__ = ["ExtractorSpec", "ExtractorRegistry"]

#: An extractor callable: run directory -> knowledge objects.
ExtractFn = Callable[[Path], Sequence[Knowledge | IO500Knowledge]]


@dataclass(frozen=True, slots=True)
class ExtractorSpec:
    """One registered knowledge extractor."""

    name: str
    marker_files: tuple[str, ...]  # any of these present => applicable
    extract: ExtractFn

    def applicable(self, directory: Path) -> bool:
        """Whether this extractor recognises the directory's contents."""
        return any(list(directory.glob(marker)) for marker in self.marker_files)


class ExtractorRegistry:
    """Ordered collection of extractors used by the workspace scanner."""

    def __init__(self) -> None:
        self._specs: list[ExtractorSpec] = []

    def register(self, spec: ExtractorSpec) -> None:
        """Add an extractor; names must be unique."""
        if any(s.name == spec.name for s in self._specs):
            raise ExtractionError(f"extractor {spec.name!r} already registered")
        self._specs.append(spec)

    def names(self) -> list[str]:
        """Registered extractor names in registration order."""
        return [s.name for s in self._specs]

    def extract_directory(self, directory: str | Path) -> list[Knowledge | IO500Knowledge]:
        """Run every applicable extractor on one directory."""
        d = Path(directory)
        if not d.is_dir():
            raise ExtractionError(f"not a directory: {d}")
        out: list[Knowledge | IO500Knowledge] = []
        for spec in self._specs:
            if spec.applicable(d):
                out.extend(spec.extract(d))
        return out
