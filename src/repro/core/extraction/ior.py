"""IOR output extraction.

Parses the IOR summary text (the format written by
:mod:`repro.benchmarks_io.ior.output`, which mirrors real IOR 3.x) into
a :class:`~repro.core.knowledge.Knowledge` object: pattern parameters
from the ``Options:`` block, per-iteration results from the
``Results:`` table, and per-operation summaries from the
``Summary of all tests:`` section.
"""

from __future__ import annotations

import datetime as _dt
import re
from pathlib import Path

from repro.core.knowledge import Knowledge, KnowledgeResult, KnowledgeSummary
from repro.util.errors import ExtractionError
from repro.util.units import parse_size

__all__ = ["parse_ior_output", "extract_ior_directory"]

_OPTION_RE = re.compile(r"^([A-Za-z][A-Za-z0-9 /]*?)\s*:\s*(.*)$")

_RESULT_RE = re.compile(
    r"^(write|read)\s+"
    r"(?P<bw>[\d.]+)\s+(?P<iops>[\d.]+)\s+(?P<lat>[\d.]+)\s+"
    r"(?P<block>\d+)\s+(?P<xfer>\d+)\s+"
    r"(?P<open>[\d.]+)\s+(?P<io>[\d.]+)\s+(?P<close>[\d.]+)\s+"
    r"(?P<total>[\d.]+)\s+(?P<iter>\d+)\s*$",
    re.MULTILINE,
)

_SUMMARY_RE = re.compile(
    r"^(write|read)\s+"
    r"(?P<bw_max>[\d.]+)\s+(?P<bw_min>[\d.]+)\s+(?P<bw_mean>[\d.]+)\s+(?P<bw_std>[\d.]+)\s+"
    r"(?P<ops_max>[\d.]+)\s+(?P<ops_min>[\d.]+)\s+(?P<ops_mean>[\d.]+)\s+(?P<ops_std>[\d.]+)",
    re.MULTILINE,
)

_TS_RE = {
    "start": re.compile(r"^Began\s*:\s*(.+)$", re.MULTILINE),
    "end": re.compile(r"^Finished\s*:\s*(.+)$", re.MULTILINE),
}


def _parse_timestamp(text: str) -> float:
    try:
        t = _dt.datetime.strptime(text.strip(), "%a %b %d %H:%M:%S %Y")
        return t.replace(tzinfo=_dt.timezone.utc).timestamp()
    except ValueError:
        return 0.0


def _options(text: str) -> dict[str, str]:
    options: dict[str, str] = {}
    in_options = False
    for line in text.splitlines():
        if line.startswith("Options"):
            in_options = True
            continue
        if in_options:
            if not line.strip():
                break
            m = _OPTION_RE.match(line)
            if m:
                options[m.group(1).strip()] = m.group(2).strip()
    return options


def parse_ior_output(text: str) -> Knowledge:
    """Parse one IOR output text into a Knowledge object."""
    if "MPI Coordinated Test of Parallel I/O" not in text:
        raise ExtractionError("not an IOR output file")
    options = _options(text)
    if not options:
        raise ExtractionError("IOR output has no Options block")

    command_m = re.search(r"^Command line\s*:\s*(.+)$", text, re.MULTILINE)
    results: dict[str, list[KnowledgeResult]] = {"write": [], "read": []}
    for m in _RESULT_RE.finditer(text):
        results[m.group(1)].append(
            KnowledgeResult(
                iteration=int(m.group("iter")),
                bandwidth_mib=float(m.group("bw")),
                iops=float(m.group("iops")),
                latency_s=float(m.group("lat")),
                open_time_s=float(m.group("open")),
                wrrd_time_s=float(m.group("io")),
                close_time_s=float(m.group("close")),
                total_time_s=float(m.group("total")),
            )
        )
    if not (results["write"] or results["read"]):
        raise ExtractionError("IOR output has no result rows")

    api = options.get("api", "")
    summaries = []
    summary_section = text.split("Summary of all tests:", 1)
    summary_text = summary_section[1] if len(summary_section) > 1 else ""
    parsed_summary = {m.group(1): m for m in _SUMMARY_RE.finditer(summary_text)}
    for op in ("write", "read"):
        rows = results[op]
        if not rows:
            continue
        m = parsed_summary.get(op)
        if m is not None:
            summary = KnowledgeSummary(
                operation=op,
                api=api,
                bw_max=float(m.group("bw_max")),
                bw_min=float(m.group("bw_min")),
                bw_mean=float(m.group("bw_mean")),
                bw_stddev=float(m.group("bw_std")),
                ops_max=float(m.group("ops_max")),
                ops_min=float(m.group("ops_min")),
                ops_mean=float(m.group("ops_mean")),
                ops_stddev=float(m.group("ops_std")),
                iterations=len(rows),
                results=rows,
            )
        else:
            # Older/foreign outputs without a summary section: recompute.
            from repro.util.stats import summarize

            bw = summarize([r.bandwidth_mib for r in rows])
            ops = summarize([r.iops for r in rows])
            summary = KnowledgeSummary(
                operation=op,
                api=api,
                bw_max=bw.maximum,
                bw_min=bw.minimum,
                bw_mean=bw.mean,
                bw_stddev=bw.stddev,
                ops_max=ops.maximum,
                ops_min=ops.minimum,
                ops_mean=ops.mean,
                ops_stddev=ops.stddev,
                iterations=len(rows),
                results=rows,
            )
        summaries.append(summary)

    parameters: dict[str, object] = {}
    for key, value in options.items():
        parameters[key] = value
    for size_key in ("xfersize", "blocksize"):
        if size_key in options:
            try:
                parameters[size_key + "_bytes"] = parse_size(
                    options[size_key].replace(" ", "").replace("iB", "")
                )
            except Exception:  # noqa: BLE001 - foreign formats stay as text
                pass

    begin_m = _TS_RE["start"].search(text)
    end_m = _TS_RE["end"].search(text)
    return Knowledge(
        benchmark="ior",
        command=command_m.group(1).strip() if command_m else "",
        api=api,
        test_file=options.get("test filename", ""),
        file_per_proc=options.get("access", "") == "file-per-process",
        num_nodes=int(options.get("nodes", 0) or 0),
        num_tasks=int(options.get("tasks", 0) or 0),
        tasks_per_node=int(options.get("clients per node", 0) or 0),
        start_time=_parse_timestamp(begin_m.group(1)) if begin_m else 0.0,
        end_time=_parse_timestamp(end_m.group(1)) if end_m else 0.0,
        parameters=parameters,
        summaries=summaries,
    )


def extract_ior_directory(directory: Path) -> list[Knowledge]:
    """Extract knowledge from a run directory containing IOR output.

    Combines ``ior_output.txt`` with the optional side captures
    (``beegfs_entryinfo.txt``, ``cpuinfo.txt``/``meminfo.txt``) into a
    complete knowledge object.
    """
    from repro.core.extraction.filesystem import parse_fs_info
    from repro.core.extraction.system import extract_system_info

    out_file = directory / "ior_output.txt"
    if not out_file.exists():
        raise ExtractionError(f"no ior_output.txt in {directory}")
    knowledge = parse_ior_output(out_file.read_text(encoding="utf-8"))
    # File-system info may be captured in any supported dialect
    # (BeeGFS getentryinfo, Lustre getstripe, GPFS mmlsattr).
    for capture in ("beegfs_entryinfo.txt", "lustre_getstripe.txt", "gpfs_mmlsattr.txt"):
        path = directory / capture
        if not path.exists():
            continue
        extra = ""
        if capture.startswith("gpfs"):
            mmlsfs = directory / "gpfs_mmlsfs.txt"
            if mmlsfs.exists():
                extra = mmlsfs.read_text(encoding="utf-8")
        knowledge.filesystem = parse_fs_info(
            path.read_text(encoding="utf-8"), extra_text=extra
        )
        break
    knowledge.system = extract_system_info(directory)
    return [knowledge]
