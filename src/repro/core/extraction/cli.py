"""Command-line knowledge extractor (§V-B).

"It can be run manually or automatically ... By default, the tool
expects the path of the output as a parameter.  If the path is not
specified, our tool automatically searches in the JUBE workspace for
available benchmark results."

Usage::

    repro-extract <path> [--db knowledge.db] [--json out.json] [--csv out.csv]
    repro-extract --workspace bench_run --db knowledge.db
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.extraction.workspace import KnowledgeExtractor
from repro.core.knowledge import IO500Knowledge, Knowledge
from repro.util.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro-extract argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-extract",
        description="Extract I/O knowledge from benchmark output directories.",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="output directory to extract (omit to scan --workspace)",
    )
    parser.add_argument(
        "--workspace",
        default=None,
        help="JUBE workspace to search automatically when no path is given",
    )
    parser.add_argument("--db", default=None, help="persist into this SQLite target")
    parser.add_argument("--json", default=None, help="export knowledge to a JSON file")
    parser.add_argument("--csv", default=None, help="export summary rows to a CSV file")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-object listing"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(list(sys.argv[1:] if argv is None else argv))
    try:
        extractor = KnowledgeExtractor(jube_workspace=args.workspace)
        knowledge = extractor.extract(args.path)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not knowledge:
        print("no knowledge found", file=sys.stderr)
        return 1

    if not args.quiet:
        for k in knowledge:
            if isinstance(k, IO500Knowledge):
                print(
                    f"io500 run: score {k.score_total:.3f} "
                    f"(bw {k.score_bw:.3f} GiB/s, md {k.score_md:.3f} kIOPS), "
                    f"{len(k.testcases)} test cases"
                )
            else:
                ops = ", ".join(
                    f"{s.operation} {s.bw_mean:.1f} MiB/s" for s in k.summaries
                )
                print(f"{k.benchmark} knowledge: {k.num_tasks} tasks, {ops}")
    print(f"extracted {len(knowledge)} knowledge object(s)")

    if args.db:
        from repro.core.persistence import (
            IO500Repository,
            KnowledgeDatabase,
            KnowledgeRepository,
        )

        with KnowledgeDatabase(args.db) as db:
            repo, io5 = KnowledgeRepository(db), IO500Repository(db)
            for k in knowledge:
                if isinstance(k, IO500Knowledge):
                    io5.save(k)
                else:
                    repo.save(k)
        print(f"persisted to {args.db}")
    if args.json:
        from repro.core.persistence import export_json

        export_json(knowledge, args.json)
        print(f"exported JSON to {args.json}")
    if args.csv:
        from repro.core.persistence import export_csv

        export_csv([k for k in knowledge if isinstance(k, Knowledge)], args.csv)
        print(f"exported CSV to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
