"""Campaign-drain benchmark: fleet throughput scaling + steal latency.

Answers the two questions the launcher-fleet layer exists for:

* **Does adding launchers add throughput?**  One campaign of ``jobs``
  noop jobs (each holding ``duration_ms`` of real wall-clock, the way
  a launcher waits on cluster-side work) is drained by fleets of 1, 2
  and 4 launcher processes; the report carries jobs/s per fleet size
  and the speedup ratios.  Because the jobs wait rather than compute,
  the scaling holds on a single-core CI host exactly as it would on a
  login node.
* **How fast is a steal?**  A store is seeded with expired-lease
  RUNNING jobs and :meth:`~repro.core.campaign.store.CampaignStore.
  steal` is timed per claim — the covering-index scan plus the
  compare-and-set UPDATE — reported as p50/p99 microseconds.

The report schema is ``repro.bench/v1``::

    {
      "schema": "repro.bench/v1",
      "bench": "campaign",
      "knobs": {"jobs": 60, "duration_ms": 200, ...},
      "drain": {"launchers_1": {"seconds": ..., "jobs_per_s": ...}, ...},
      "speedup": {"x2_vs_x1": ..., "x4_vs_x1": ...},
      "steal": {"steals": 64, "p50_us": ..., "p99_us": ...},
      "correctness": {"tokens_unique": true, "all_done": true}
    }
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Sequence

from repro.core.campaign.fleet import LauncherFleet
from repro.core.campaign.spec import CampaignSpec
from repro.core.campaign.store import CampaignStore

__all__ = ["BENCH_SCHEMA", "run_campaign_bench"]

BENCH_SCHEMA = "repro.bench/v1"


def _percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(0, min(len(sorted_samples) - 1, round(q * (len(sorted_samples) - 1))))
    return sorted_samples[rank]


def _noop_spec(jobs: int, duration_ms: int) -> CampaignSpec:
    return CampaignSpec(
        name=f"bench-noop-{jobs}",
        benchmark="noop",
        parameters={"idx": ",".join(str(i) for i in range(jobs))},
        fixed={"duration_ms": str(duration_ms)},
    )


def _drain_with_fleet(
    scratch: Path, size: int, *, jobs: int, duration_ms: int, lease_s: float
) -> dict[str, object]:
    store_path = scratch / f"fleet{size}" / "campaign.db"
    knowledge = scratch / f"fleet{size}" / "knowledge.db"
    with CampaignStore(store_path) as store:
        campaign_id = store.submit(_noop_spec(jobs, duration_ms), str(knowledge))
        fleet = LauncherFleet(
            store,
            campaign_id,
            size=size,
            workspace=scratch / f"fleet{size}" / "ws",
            workers_per_launcher=1,  # isolate launcher-count scaling
            lease_s=lease_s,
            poll_s=0.005,
            supervise_interval_s=0.02,
        )
        start = time.perf_counter()
        counts = fleet.run()
        elapsed = time.perf_counter() - start
        all_done = counts["DONE"] == sum(counts.values())
    # Exactly-once witness: every job's idempotency token appears on
    # exactly one knowledge row.
    conn = sqlite3.connect(str(knowledge))
    try:
        tokens = [
            json.loads(row[0]).get("campaign_job")
            for row in conn.execute(
                "SELECT parameters_json FROM performances"
            ).fetchall()
        ]
    finally:
        conn.close()
    return {
        "seconds": round(elapsed, 4),
        "jobs_per_s": round(jobs / elapsed, 2) if elapsed > 0 else 0.0,
        "all_done": all_done,
        "tokens_unique": len(tokens) == jobs and len(set(tokens)) == jobs,
    }


def _steal_latency(scratch: Path, steals: int) -> dict[str, float]:
    store_path = scratch / "steal" / "campaign.db"
    with CampaignStore(store_path) as store:
        campaign_id = store.submit(_noop_spec(steals, 0), str(scratch / "k.db"))
        # Park every job RUNNING under a dead owner with an expired
        # lease, so each timed steal() pays the index scan + CAS claim.
        now = 1000.0
        for _ in range(steals):
            job = store.acquire(campaign_id, "dead-launcher", now, lease_s=1.0)
            assert job is not None
        samples = []
        for i in range(steals):
            t0 = time.perf_counter()
            claimed = store.steal(campaign_id, "thief", now + 10.0)
            samples.append(time.perf_counter() - t0)
            assert claimed is not None, f"steal {i} found nothing to claim"
        samples.sort()
    return {
        "steals": float(steals),
        "p50_us": round(_percentile(samples, 0.50) * 1e6, 1),
        "p99_us": round(_percentile(samples, 0.99) * 1e6, 1),
    }


def run_campaign_bench(
    scratch: str,
    *,
    jobs: int = 60,
    duration_ms: int = 200,
    fleets: Sequence[int] = (1, 2, 4),
    lease_s: float = 5.0,
    steals: int = 64,
) -> dict:
    """Run the campaign-drain benchmark; returns the report dict."""
    scratch_path = Path(scratch)
    drain: dict[str, dict[str, object]] = {}
    for size in fleets:
        drain[f"launchers_{size}"] = _drain_with_fleet(
            scratch_path, size, jobs=jobs, duration_ms=duration_ms, lease_s=lease_s
        )
    base = float(drain[f"launchers_{fleets[0]}"]["jobs_per_s"]) or 1e-9
    speedup = {
        f"x{size}_vs_x{fleets[0]}": round(
            float(drain[f"launchers_{size}"]["jobs_per_s"]) / base, 2
        )
        for size in fleets[1:]
    }
    steal = _steal_latency(scratch_path, steals)
    return {
        "schema": BENCH_SCHEMA,
        "bench": "campaign",
        "knobs": {
            "jobs": jobs,
            "duration_ms": duration_ms,
            "fleets": list(fleets),
            "lease_s": lease_s,
            "steals": steals,
        },
        "drain": drain,
        "speedup": speedup,
        "steal": steal,
        "correctness": {
            "tokens_unique": all(d["tokens_unique"] for d in drain.values()),
            "all_done": all(d["all_done"] for d in drain.values()),
        },
    }
