"""Benchmark harnesses for the repro runtime itself.

Not the HPC I/O benchmarks the cycle studies — these measure *this*
codebase: the ``repro-bench`` CLI times hot paths (today, the knowledge
service in-process vs over the ``repro.wire/v1`` TCP link) and writes
machine-readable ``BENCH_*.json`` reports so performance regressions
show up in review instead of production.
"""

from repro.bench.service_bench import BENCH_SCHEMA, run_service_bench

__all__ = ["BENCH_SCHEMA", "run_service_bench"]
