"""Scenario-engine benchmark: grammar expansion + period detection.

Two hot paths matter to the scenario engine.  Expansion must be cheap
enough that compiling a thousand-derivation sweep is interactive, and
streaming period detection must be cheap enough that
``OnlineMonitor(detect_periods=True)`` can afford a detection pass
every ``detection_stride`` windows of a live run.  The benchmark times
both and — like ``repro-bench scan`` — pairs the timings with the
correctness claim that makes them meaningful: the detector must
recover the planted period on periodic traces and stay quiet on the
aperiodic ones.

The report schema is ``repro.bench/v1``::

    {
      "schema": "repro.bench/v1",
      "bench": "scenario",
      "config": {...},
      "timings": {"expand": {...}, "detect": {...}},
      "rates": {"derivations_per_s": ..., "windows_per_s": ...,
                "detect_ms_per_trace": ...},
      "correctness": {"planted_recovered": ..., "planted_total": ...,
                      "aperiodic_quiet": true, "deterministic": true}
    }
"""

from __future__ import annotations

import time

from repro.bench.service_bench import BENCH_SCHEMA
from repro.core.scenario.expand import expand, synthesize_throughput
from repro.core.scenario.grammar import parse_grammar_toml
from repro.core.scenario.periodic import detect_periods

__all__ = ["run_scenario_bench", "BENCH_GRAMMAR"]

# Self-contained copy of the examples/scenarios.toml family mix, so the
# bench does not depend on the repository checkout layout.
BENCH_GRAMMAR = """
[grammar]
name = "bench-families"
start = "workload"

[rules]
workload = "bursty @3 | interleaved @2 | fpp_stream"
bursty = "pattern=bursty period_s={3.0..10.0} duty={0.15..0.45} geometry api=<MPIIO|HDF5> sharing=shared collective=<true:2|false>"
interleaved = "pattern=interleaved period_s={2.0..6.0} geometry api=MPIIO sharing=<shared|fpp>"
fpp_stream = "pattern=steady geometry api=<POSIX:2|MPIIO> sharing=fpp fsync=<true|false:3>"
geometry = "blocksize={4m..64m:pow2} transfersize={1m..4m:pow2} segments={2..8}"

[defaults]
nodes = "2"
taskspernode = "4"
iterations = "3"
testfile = "/scratch/scenario/test"
"""


def run_scenario_bench(
    scratch: str,
    *,
    derivations: int = 2000,
    traces: int = 48,
    windows: int = 256,
    seed: int = 42,
) -> dict:
    """Run the scenario benchmark; ``scratch`` is unused (no disk I/O)."""
    del scratch
    grammar = parse_grammar_toml(BENCH_GRAMMAR)

    started = time.perf_counter()
    derived = expand(grammar, seed, derivations)
    expand_s = time.perf_counter() - started
    deterministic = [d.to_json() for d in expand(grammar, seed, derivations)] == [
        d.to_json() for d in derived
    ]

    # Synthesis is setup, not the timed subject: render one trace per
    # derivation up front, remembering which carry a planted period.
    subjects = []
    for derivation in derived[:traces]:
        values, planted = synthesize_throughput(
            derivation, windows=windows, interval_s=0.25
        )
        subjects.append((values, planted))

    interval_s = 0.25
    recovered = 0
    planted_total = 0
    aperiodic_quiet = True
    started = time.perf_counter()
    for values, planted in subjects:
        detections = detect_periods(values, interval_s, min_confidence=0.5)
        if planted is None:
            aperiodic_quiet &= not detections
            continue
        planted_total += 1
        if detections and abs(detections[0].period_s - planted) <= 0.2 * planted:
            recovered += 1
    detect_s = time.perf_counter() - started

    total_windows = len(subjects) * windows
    return {
        "schema": BENCH_SCHEMA,
        "bench": "scenario",
        "config": {
            "grammar": grammar.name,
            "derivations": derivations,
            "traces": len(subjects),
            "windows": windows,
            "interval_s": interval_s,
            "seed": seed,
        },
        "timings": {
            "expand": {"seconds": round(expand_s, 6), "derivations": derivations},
            "detect": {"seconds": round(detect_s, 6), "traces": len(subjects),
                       "windows": total_windows},
        },
        "rates": {
            "derivations_per_s": round(derivations / expand_s, 1) if expand_s else 0.0,
            "windows_per_s": round(total_windows / detect_s, 1) if detect_s else 0.0,
            "detect_ms_per_trace": round(
                detect_s * 1000.0 / len(subjects), 3
            ) if subjects else 0.0,
        },
        "correctness": {
            "planted_recovered": recovered,
            "planted_total": planted_total,
            "aperiodic_quiet": aperiodic_quiet,
            "deterministic": deterministic,
        },
    }
