"""``repro-bench`` — time the repro runtime's own hot paths.

Usage::

    repro-bench service --out BENCH_service.json
    repro-bench service --objects 128 --reads 512 --worker-processes 4
    repro-bench scan --out BENCH_scan.json
    repro-bench scan --rows 20000 --shards 8
    repro-bench scenario --out BENCH_scenario.json
    repro-bench scenario --derivations 5000 --traces 96
    repro-bench campaign --out BENCH_campaign.json
    repro-bench campaign --jobs 96 --duration-ms 40

Each sub-benchmark writes a ``repro.bench/v1`` JSON report (and prints
a one-screen summary), comparing the code paths it exercises — the
knowledge service in-process against the ``repro.wire/v1`` TCP link,
the columnar ``scan()`` pushdown against row-loop and batched Python
folds, the scenario engine's grammar expansion and period detection,
and campaign drain throughput at 1/2/4 competing launcher processes
plus lease-steal latency — so the cost of a transport or a refactor
lands in a diffable artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from typing import Sequence

from repro.bench.service_bench import run_service_bench
from repro.util.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro-bench argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bench", description="Benchmark the repro runtime itself."
    )
    sub = parser.add_subparsers(dest="bench", required=True)
    service = sub.add_parser(
        "service", help="knowledge service: in-process vs knowledge+tcp://"
    )
    service.add_argument(
        "--out", default="BENCH_service.json", metavar="PATH",
        help="where to write the repro.bench/v1 report (default: %(default)s)",
    )
    service.add_argument("--objects", type=int, default=64,
                         help="objects saved per mode (default: %(default)s)")
    service.add_argument("--reads", type=int, default=256,
                         help="single-object loads per mode (default: %(default)s)")
    service.add_argument("--batch", type=int, default=16,
                         help="ids per fetch_many call (default: %(default)s)")
    service.add_argument("--shards", type=int, default=2,
                         help="shards per store (default: %(default)s)")
    service.add_argument("--worker-processes", type=int, default=2,
                         help="TCP server worker processes (default: %(default)s)")
    service.add_argument("--store", default=None, metavar="DIR",
                         help="scratch directory (default: a temp dir)")
    scan = sub.add_parser(
        "scan", help="columnar scan() vs row-loop and fetch_many folds"
    )
    scan.add_argument(
        "--out", default="BENCH_scan.json", metavar="PATH",
        help="where to write the repro.bench/v1 report (default: %(default)s)",
    )
    scan.add_argument("--rows", type=int, default=10_000,
                      help="embedded store size (default: %(default)s)")
    scan.add_argument("--tcp-rows", type=int, default=512,
                      help="TCP value-identity store size (default: %(default)s)")
    scan.add_argument("--shards", type=int, default=4,
                      help="TCP server shards (default: %(default)s)")
    scan.add_argument("--worker-processes", type=int, default=2,
                      help="TCP server worker processes (default: %(default)s)")
    scan.add_argument("--store", default=None, metavar="DIR",
                      help="scratch directory (default: a temp dir)")
    scenario = sub.add_parser(
        "scenario", help="grammar expansion + period-detection throughput"
    )
    scenario.add_argument(
        "--out", default="BENCH_scenario.json", metavar="PATH",
        help="where to write the repro.bench/v1 report (default: %(default)s)",
    )
    scenario.add_argument("--derivations", type=int, default=2000,
                          help="derivations to expand (default: %(default)s)")
    scenario.add_argument("--traces", type=int, default=48,
                          help="throughput traces to diagnose (default: %(default)s)")
    scenario.add_argument("--windows", type=int, default=256,
                          help="windows per trace (default: %(default)s)")
    scenario.add_argument("--seed", type=int, default=42,
                          help="expansion seed (default: %(default)s)")
    scenario.add_argument("--store", default=None, metavar="DIR",
                          help="scratch directory (unused; default: a temp dir)")
    campaign = sub.add_parser(
        "campaign", help="campaign drain at 1/2/4 launchers + steal latency"
    )
    campaign.add_argument(
        "--out", default="BENCH_campaign.json", metavar="PATH",
        help="where to write the repro.bench/v1 report (default: %(default)s)",
    )
    campaign.add_argument("--jobs", type=int, default=60,
                          help="noop jobs per drain (default: %(default)s)")
    campaign.add_argument("--duration-ms", type=int, default=200,
                          help="wall-clock hold per job (default: %(default)s)")
    campaign.add_argument("--steals", type=int, default=64,
                          help="timed steal claims (default: %(default)s)")
    campaign.add_argument("--lease", type=float, default=5.0,
                          help="job lease seconds (default: %(default)s)")
    campaign.add_argument("--store", default=None, metavar="DIR",
                          help="scratch directory (default: a temp dir)")
    return parser


def _print_scan_summary(report: dict) -> None:
    print(f"repro-bench scan ({report['schema']})")
    timings = report["timings"]
    for strategy in ("row_loop_fold", "fetch_many_fold", "scan"):
        row = timings[strategy]
        extra = f"  ({row['source']})" if "source" in row else ""
        print(f"  {strategy:<16} {row['seconds'] * 1000:10.1f} ms{extra}")
    speedup = report["speedup"]
    print(
        f"  scan speedup: {speedup['scan_vs_row_loop']}x vs row loop, "
        f"{speedup['scan_vs_fetch_many']}x vs fetch_many fold"
    )
    identical = report["value_identical"]
    print(
        f"  value identical to fold: embedded={identical['embedded']}, "
        f"tcp={identical['tcp']}"
    )


def _print_scenario_summary(report: dict) -> None:
    print(f"repro-bench scenario ({report['schema']})")
    timings, rates = report["timings"], report["rates"]
    print(
        f"  expand   {timings['expand']['seconds'] * 1000:10.1f} ms  "
        f"({timings['expand']['derivations']} derivations, "
        f"{rates['derivations_per_s']:.0f}/s)"
    )
    print(
        f"  detect   {timings['detect']['seconds'] * 1000:10.1f} ms  "
        f"({timings['detect']['traces']} traces, "
        f"{rates['detect_ms_per_trace']:.2f} ms/trace, "
        f"{rates['windows_per_s']:.0f} windows/s)"
    )
    good = report["correctness"]
    print(
        f"  planted periods recovered: {good['planted_recovered']}/"
        f"{good['planted_total']}, aperiodic quiet: "
        f"{good['aperiodic_quiet']}, deterministic: {good['deterministic']}"
    )


def _print_campaign_summary(report: dict) -> None:
    print(f"repro-bench campaign ({report['schema']})")
    for key, row in sorted(report["drain"].items()):
        size = key.rsplit("_", 1)[1]
        print(
            f"  {size} launcher(s): {row['seconds']:8.2f} s  "
            f"{row['jobs_per_s']:8.2f} jobs/s"
        )
    ratios = ", ".join(f"{k.replace('_', ' ')} {v}x"
                       for k, v in sorted(report["speedup"].items()))
    print(f"  drain speedup: {ratios}")
    steal = report["steal"]
    print(
        f"  steal latency: p50 {steal['p50_us']:.1f} us, "
        f"p99 {steal['p99_us']:.1f} us ({steal['steals']:.0f} steals)"
    )
    good = report["correctness"]
    print(
        f"  exactly-once tokens unique: {good['tokens_unique']}, "
        f"all jobs DONE: {good['all_done']}"
    )


def _print_summary(report: dict) -> None:
    print(f"repro-bench service ({report['schema']})")
    for mode in ("in_process", "tcp"):
        stats = report["modes"][mode]
        print(f"  {mode}:")
        for op in ("save", "load", "fetch_many"):
            row = stats[op]
            print(
                f"    {op:<10} p50 {row['p50_us']:8.1f} us   "
                f"p99 {row['p99_us']:8.1f} us   "
                f"{row['ops_per_s']:8.1f} op/s"
            )
    ratios = ", ".join(
        f"{op} {report['overhead'][f'{op}_p50_ratio']}x"
        for op in ("save", "load", "fetch_many")
    )
    print(f"  tcp/in-process p50 ratio: {ratios}")
    heal = report.get("heal") or {}
    if heal:
        print(
            f"  supervised heal after SIGKILL: "
            f"{heal['time_to_heal_s'] * 1000:.1f} ms "
            f"({heal['respawns_total']:.0f} respawn(s))"
        )


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(list(sys.argv[1:] if argv is None else argv))
    if args.bench == "service":
        knobs, summarize = ("objects", "reads", "batch"), _print_summary

        def runner(scratch: str) -> dict:
            return run_service_bench(
                scratch, objects=args.objects, reads=args.reads,
                batch=args.batch, shards=args.shards,
                worker_processes=args.worker_processes,
            )
    elif args.bench == "scan":
        from repro.bench.scan_bench import run_scan_bench

        knobs, summarize = ("rows", "tcp_rows"), _print_scan_summary

        def runner(scratch: str) -> dict:
            return run_scan_bench(
                scratch, rows=args.rows, tcp_rows=args.tcp_rows,
                shards=args.shards,
                worker_processes=args.worker_processes,
            )
    elif args.bench == "scenario":
        from repro.bench.scenario_bench import run_scenario_bench

        knobs, summarize = ("derivations", "traces", "windows"), _print_scenario_summary

        def runner(scratch: str) -> dict:
            return run_scenario_bench(
                scratch, derivations=args.derivations, traces=args.traces,
                windows=args.windows, seed=args.seed,
            )
    else:
        from repro.bench.campaign_bench import run_campaign_bench

        knobs, summarize = ("jobs", "duration_ms", "steals"), _print_campaign_summary

        def runner(scratch: str) -> dict:
            return run_campaign_bench(
                scratch, jobs=args.jobs, duration_ms=args.duration_ms,
                lease_s=args.lease, steals=args.steals,
            )
    for name in knobs:
        if getattr(args, name) < 1:
            print(f"error: --{name.replace('_', '-')} must be >= 1",
                  file=sys.stderr)
            return 2
    try:
        if args.store is not None:
            report = runner(args.store)
        else:
            with tempfile.TemporaryDirectory(prefix="repro-bench-") as scratch:
                report = runner(scratch)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    except OSError as exc:
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return 1
    summarize(report)
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
