"""Knowledge-service benchmark: in-process vs ``knowledge+tcp://``.

Drives the same deterministic workload through both transports and
reports per-op latency percentiles plus throughput, so the wire
overhead of the multi-process server is a measured number instead of
folklore.  The report schema is ``repro.bench/v1``::

    {
      "schema": "repro.bench/v1",
      "bench": "service",
      "config": {...},
      "modes": {
        "in_process": {"save": {"p50_us": ..., "p99_us": ...,
                                "mean_us": ..., "ops_per_s": ...,
                                "samples": ...}, "load": ..., "fetch_many": ...},
        "tcp": {...}
      },
      "overhead": {"load_p50_ratio": ...},
      "heal": {"time_to_heal_s": ..., "respawns_total": ...}
    }

Latencies are wall-clock microseconds per call; ``fetch_many`` counts
one sample per *batch* call, with ``batch`` ids per call.  The ``heal``
section measures self-healing rather than throughput: after the TCP
workload one shard-group worker is SIGKILL'd and the supervisor's time
to restore full-shard service is clocked wall-to-wall.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from repro.core.knowledge import Knowledge, KnowledgeResult, KnowledgeSummary
from repro.core.metrics import MetricsRegistry
from repro.core.service.client import ServiceClient
from repro.core.service.server import KnowledgeServer
from repro.core.service.service import KnowledgeService
from repro.core.service.shard import KnowledgeShardMap

__all__ = ["BENCH_SCHEMA", "run_service_bench"]

BENCH_SCHEMA = "repro.bench/v1"


def _make_knowledge(index: int, benchmark: str = "ior") -> Knowledge:
    """One deterministic knowledge object; ``index`` varies placement."""
    return Knowledge(
        benchmark,
        command="ior -a POSIX -b 16m -t 1m",
        api="POSIX",
        num_nodes=1 + index % 4,
        num_tasks=8,
        parameters={"bench_index": index, "xfersize_bytes": 1 << 20},
        summaries=[
            KnowledgeSummary(
                operation="write", api="POSIX",
                bw_max=520.0 + index, bw_min=500.0 + index, bw_mean=512.0 + index,
                bw_stddev=2.0, ops_max=4200.0, ops_min=4000.0, ops_mean=4096.0,
                ops_stddev=50.0, iterations=2,
                results=[
                    KnowledgeResult(iteration=i, bandwidth_mib=512.0 + index,
                                    iops=4096.0)
                    for i in range(2)
                ],
            )
        ],
        system={"hostname": f"node{index % 8:02d}"},
    )


def _percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample list."""
    if not sorted_samples:
        return 0.0
    rank = min(len(sorted_samples) - 1, int(q * (len(sorted_samples) - 1) + 0.5))
    return sorted_samples[rank]


def _timed(calls: int, fn: Callable[[int], object]) -> dict[str, float]:
    """Run ``fn(i)`` ``calls`` times; return the latency digest."""
    samples: list[float] = []
    start = time.perf_counter()
    for i in range(calls):
        t0 = time.perf_counter()
        fn(i)
        samples.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    samples.sort()
    return {
        "samples": len(samples),
        "p50_us": _percentile(samples, 0.50) * 1e6,
        "p99_us": _percentile(samples, 0.99) * 1e6,
        "mean_us": (sum(samples) / len(samples)) * 1e6 if samples else 0.0,
        "ops_per_s": len(samples) / elapsed if elapsed > 0 else 0.0,
    }


def _bench_client(
    client: ServiceClient, *, objects: int, reads: int, batch: int
) -> dict[str, dict[str, float]]:
    """The workload: N saves, M round-robin loads, M/batch fetch_many."""
    saved: list[Knowledge] = []

    def _save(i: int) -> None:
        k = _make_knowledge(i)
        client.save(k)
        saved.append(k)

    save_stats = _timed(objects, _save)
    ids = [k.knowledge_id for k in saved]
    load_stats = _timed(reads, lambda i: client.load(ids[i % len(ids)]))
    batch_calls = max(1, reads // batch)
    fetch_stats = _timed(
        batch_calls,
        lambda i: client.fetch_many(
            [ids[(i * batch + j) % len(ids)] for j in range(batch)]
        ),
    )
    return {"save": save_stats, "load": load_stats, "fetch_many": fetch_stats}


def run_service_bench(
    root: str,
    *,
    objects: int = 64,
    reads: int = 256,
    batch: int = 16,
    shards: int = 2,
    worker_processes: int = 2,
    cache_size: int = 32,
) -> dict:
    """Benchmark the knowledge service in-process and over TCP.

    ``root`` is a scratch directory; two independent stores are created
    under it (one per mode) so neither mode warms the other's shards.
    The small default cache keeps most loads hitting SQLite — the
    interesting path — rather than measuring the LRU dict.
    """
    config = {
        "objects": objects,
        "reads": reads,
        "batch": batch,
        "shards": shards,
        "worker_processes": worker_processes,
        "cache_size": cache_size,
    }
    modes: dict[str, dict] = {}

    shard_map = KnowledgeShardMap(f"{root}/in_process", num_shards=shards)
    service = KnowledgeService(shard_map, cache_size=cache_size)
    with ServiceClient(service) as client:
        modes["in_process"] = _bench_client(
            client, objects=objects, reads=reads, batch=batch
        )
    service.close()
    shard_map.close()

    metrics = MetricsRegistry()
    server = KnowledgeServer(
        f"{root}/tcp",
        shards=shards,
        worker_processes=worker_processes,
        cache_size=cache_size,
        metrics=metrics,
        supervisor_poll_s=0.02,
    )
    server.start()
    heal: dict[str, float] = {}
    try:
        url = f"knowledge+tcp://{server.host}:{server.port}/"
        with ServiceClient.open(url) as client:
            modes["tcp"] = _bench_client(
                client, objects=objects, reads=reads, batch=batch
            )
            heal = _measure_heal(server, client, objects=objects)
    finally:
        server.close()

    overhead = {}
    for op in ("save", "load", "fetch_many"):
        local = modes["in_process"][op]["p50_us"]
        remote = modes["tcp"][op]["p50_us"]
        overhead[f"{op}_p50_ratio"] = round(remote / local, 3) if local else 0.0
    return {
        "schema": BENCH_SCHEMA,
        "bench": "service",
        "config": config,
        "modes": modes,
        "overhead": overhead,
        "heal": heal,
    }


def _measure_heal(
    server: KnowledgeServer, client: ServiceClient, *, objects: int,
    deadline_s: float = 30.0,
) -> dict[str, float]:
    """SIGKILL one shard-group worker and time the supervised heal.

    ``time_to_heal_s`` is wall clock from the kill to the first
    ``count`` that again covers every shard (a multi-worker op, so it
    only succeeds once the respawned worker answers).
    """
    from repro.util.errors import ServiceError

    victim = server.workers[0]
    killed_at = time.perf_counter()
    victim.process.kill()
    victim.process.wait()
    deadline = time.perf_counter() + deadline_s
    while True:
        try:
            if client.count() == objects:
                break
        except ServiceError:
            pass
        if time.perf_counter() > deadline:
            return {"time_to_heal_s": -1.0, "respawns_total": 0.0}
        time.sleep(0.005)
    elapsed = time.perf_counter() - killed_at
    respawns = 0.0
    if server.metrics is not None:
        family = server.metrics.snapshot()["counters"].get(
            "service.supervisor.respawns_total", {}
        )
        respawns = sum(r["value"] for r in family.get("series", []))
    return {
        "time_to_heal_s": round(elapsed, 6),
        "respawns_total": respawns,
    }
