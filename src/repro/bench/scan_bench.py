"""Columnar-scan benchmark: row-loop fold vs batched fold vs ``scan()``.

Builds a deterministic 10k-row knowledge store, then answers the same
grouped-aggregate question three ways:

* ``row_loop_fold`` — the seed-era access pattern: one ``load(id)``
  round-trip per row (the N+1 loop ``load_all`` used to hide), folded
  in Python with :func:`~repro.core.persistence.scan.fold_scan`.
* ``fetch_many_fold`` — today's batched ``load_all`` (chunked
  ``fetch_many``), same Python fold.
* ``scan`` — the columnar pushdown: SQL does the grouping and the
  aggregate arithmetic, Python only merges partial states.

The report schema is ``repro.bench/v1``::

    {
      "schema": "repro.bench/v1",
      "bench": "scan",
      "config": {...},
      "timings": {"row_loop_fold": {...}, "fetch_many_fold": {...},
                  "scan": {...}},
      "speedup": {"scan_vs_row_loop": ..., "scan_vs_fetch_many": ...},
      "value_identical": {"embedded": true, "tcp": true}
    }

``value_identical`` is the point of the exercise: the scan result must
equal the plain-Python fold — exactly for counts/min/max/percentiles
(same sketch class on both sides), to 1e-9 relative for mean/stddev
(float summation order differs across shards) — both embedded and over
a sharded ``knowledge+tcp://`` server.
"""

from __future__ import annotations

import math
import time
from typing import Callable

from repro.bench.service_bench import BENCH_SCHEMA
from repro.core.knowledge import Knowledge, KnowledgeResult, KnowledgeSummary
from repro.core.persistence.database import KnowledgeDatabase
from repro.core.persistence.repository import KnowledgeRepository
from repro.core.persistence.scan import ScanQuery, ScanResult, fold_scan
from repro.core.service.client import ServiceClient
from repro.core.service.server import KnowledgeServer
from repro.util.rng import stream

__all__ = ["run_scan_bench", "scan_results_match"]

_BENCHMARKS = ("ior", "mdtest", "hacc")
_APIS = ("POSIX", "MPIIO")


def _make_row(index: int, root_seed: int) -> Knowledge:
    """One varied knowledge object; spread over benchmarks/apis/nodes."""
    rng = stream(root_seed, "scan-bench", "row", index)
    benchmark = _BENCHMARKS[index % len(_BENCHMARKS)]
    api = _APIS[index % len(_APIS)]
    bw = 480.0 + 60.0 * rng.random() + (index % 16)
    ops = 3800.0 + 500.0 * rng.random()
    return Knowledge(
        benchmark,
        command=f"{benchmark} -b 16m -t 1m",
        api=api,
        num_nodes=1 << (index % 4),
        num_tasks=8 * (1 + index % 3),
        parameters={"bench_index": index, "xfersize_bytes": 1 << 20},
        summaries=[
            KnowledgeSummary(
                operation=operation, api=api,
                bw_max=bw + 8.0, bw_min=bw - 8.0, bw_mean=bw,
                bw_stddev=2.0 + rng.random(), ops_max=ops + 150.0,
                ops_min=ops - 150.0, ops_mean=ops,
                ops_stddev=40.0, iterations=2,
                results=[
                    KnowledgeResult(iteration=i, bandwidth_mib=bw, iops=ops)
                    for i in range(2)
                ],
            )
            for operation in ("write", "read")
        ],
        system={"hostname": f"node{index % 8:02d}"},
    )


def scan_results_match(
    left: ScanResult, right: ScanResult, *, rel_tol: float = 1e-9
) -> bool:
    """Whether two scan results agree group-by-group, value-by-value.

    Counts, minima, maxima and sketch percentiles must be exactly equal
    (both sides use the same order-independent sketch); means and
    stddevs get ``rel_tol`` slack for cross-shard summation order.
    """
    if len(left.rows) != len(right.rows):
        return False
    for a, b in zip(left.rows, right.rows):
        if a.group != b.group or set(a.values) != set(b.values):
            return False
        for key, va in a.values.items():
            vb = b.values[key]
            if key in ("mean", "stddev"):
                if not math.isclose(va, vb, rel_tol=rel_tol, abs_tol=1e-12):
                    return False
            elif va != vb:
                return False
    return True


def _timed_once(fn: Callable[[], object]) -> tuple[float, object]:
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _bench_embedded(
    path: str, query: ScanQuery, *, rows: int, seed: int
) -> tuple[dict, dict, bool]:
    """Populate one store, time the three strategies, check identity."""
    with KnowledgeDatabase(path) as db:
        repo = KnowledgeRepository(db)
        ingest_s, _ = _timed_once(
            lambda: [repo.save(_make_row(i, seed)) for i in range(rows)]
        )

        # The seed-era pattern: one SELECT wave per id, then fold.
        def row_loop() -> ScanResult:
            objects = [repo.load(i) for i in repo.list_ids()]
            return fold_scan(query, objects)

        row_loop_s, row_loop_result = _timed_once(row_loop)
        batched_s, batched_result = _timed_once(
            lambda: fold_scan(query, repo.load_all())
        )
        scan_s, scan_result = _timed_once(lambda: repo.scan(query))
        identical = scan_results_match(
            scan_result, row_loop_result
        ) and scan_results_match(scan_result, batched_result)
        timings = {
            "row_loop_fold": {"seconds": round(row_loop_s, 6)},
            "fetch_many_fold": {"seconds": round(batched_s, 6)},
            "scan": {"seconds": round(scan_s, 6),
                     "source": scan_result.source},
        }
        config = {"rows": rows, "ingest_s": round(ingest_s, 6)}
    return timings, config, identical


def _check_tcp(
    root: str, query: ScanQuery, *, rows: int, seed: int,
    shards: int, worker_processes: int,
) -> bool:
    """Value identity over the wire: router-merged scan vs client fold."""
    server = KnowledgeServer(
        root, shards=shards, worker_processes=worker_processes
    )
    server.start()
    try:
        url = f"knowledge+tcp://{server.host}:{server.port}/"
        with ServiceClient.open(url) as client:
            for i in range(rows):
                client.save(_make_row(i, seed))
            scan_result = client.scan(query)
            fold_result = fold_scan(query, client.load_all())
        return scan_results_match(scan_result, fold_result)
    finally:
        server.close()


def run_scan_bench(
    root: str,
    *,
    rows: int = 10_000,
    tcp_rows: int = 512,
    shards: int = 4,
    worker_processes: int = 2,
    seed: int = 20260808,
) -> dict:
    """Benchmark the columnar scan against Python folds.

    ``root`` is a scratch directory; the 10k-row embedded store and the
    sharded TCP store are created under it.  ``tcp_rows`` is smaller
    because the TCP leg only checks value identity, not speed — every
    save is a round-trip there.
    """
    query = ScanQuery(
        metric="bw_mean",
        group_by=("benchmark", "operation"),
        percentiles=(50.0, 95.0),
    )
    timings, embedded_config, embedded_ok = _bench_embedded(
        f"{root}/embedded.db", query, rows=rows, seed=seed
    )
    tcp_ok = _check_tcp(
        f"{root}/tcp", query, rows=tcp_rows, seed=seed,
        shards=shards, worker_processes=worker_processes,
    )
    scan_s = timings["scan"]["seconds"]
    speedup = {
        "scan_vs_row_loop": round(
            timings["row_loop_fold"]["seconds"] / scan_s, 2
        ) if scan_s else 0.0,
        "scan_vs_fetch_many": round(
            timings["fetch_many_fold"]["seconds"] / scan_s, 2
        ) if scan_s else 0.0,
    }
    return {
        "schema": BENCH_SCHEMA,
        "bench": "scan",
        "config": {
            **embedded_config,
            "tcp_rows": tcp_rows,
            "shards": shards,
            "worker_processes": worker_processes,
            "seed": seed,
            "query": query.to_payload(),
        },
        "timings": timings,
        "speedup": speedup,
        "value_identical": {"embedded": embedded_ok, "tcp": tcp_ok},
    }
