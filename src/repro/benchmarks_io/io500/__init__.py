"""IO500 benchmark suite on the simulated I/O stack."""

from repro.benchmarks_io.io500.config import IO500Config, IOR_HARD_TRANSFER
from repro.benchmarks_io.io500.find import FindResult, run_find
from repro.benchmarks_io.io500.output import render_io500_output
from repro.benchmarks_io.io500.runner import (
    IO500PhaseResult,
    IO500Result,
    run_io500,
    run_io500_in_job,
)
from repro.benchmarks_io.io500.scoring import (
    BW_PHASES,
    MD_PHASES,
    PHASE_ORDER,
    IO500Score,
    compute_score,
)

__all__ = [
    "IO500Config",
    "IOR_HARD_TRANSFER",
    "IO500PhaseResult",
    "IO500Result",
    "IO500Score",
    "run_io500",
    "run_io500_in_job",
    "render_io500_output",
    "compute_score",
    "BW_PHASES",
    "MD_PHASES",
    "PHASE_ORDER",
    "FindResult",
    "run_find",
]
