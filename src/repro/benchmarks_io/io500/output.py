"""IO500 result-file rendering.

Emits the ``[RESULT]`` / ``[SCORE]`` text of real IO500 runs.  Like the
IOR output writer, this is the contract with the Phase-II extractor:
the extractor parses exactly this text, so knowledge extraction works
identically on simulated output and on a genuine ``result_summary.txt``
with the same line shapes.
"""

from __future__ import annotations

from repro.benchmarks_io.io500.runner import IO500Result
from repro.util.errors import BenchmarkError

__all__ = ["render_io500_output", "IO500_VERSION"]

IO500_VERSION = "io500-sc22+repro"


def render_io500_output(result: IO500Result) -> str:
    """Render the result summary of one scored IO500 run."""
    if result.score is None:
        raise BenchmarkError("cannot render an unscored IO500 run")
    lines = [
        f"IO500 version {IO500_VERSION}",
        f"[System] nodes: {result.num_nodes}; tasks: {result.num_tasks}; "
        f"tasks per node: {result.tasks_per_node}",
    ]
    for p in result.phases:
        lines.append(
            f"[RESULT] {p.name:>20} {p.value:>12.6f} {p.unit} : time {p.time_s:.3f} seconds"
        )
    s = result.score
    lines.append(
        f"[SCORE ] Bandwidth {s.bandwidth_gib:.6f} GiB/s : "
        f"IOPS {s.iops_kiops:.6f} kiops : TOTAL {s.total:.6f}"
    )
    lines.append("")
    return "\n".join(lines)
