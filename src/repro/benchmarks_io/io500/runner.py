"""IO500 suite execution.

Runs the twelve official phases in order against one job allocation and
scores the run.  The paper integrates IO500 "as a separate knowledge
generator" (§V-A) and builds the Fig. 6 bounding box from its
ior-easy/ior-hard boundary test cases.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Sequence

from repro.benchmarks_io.io500.config import IO500Config
from repro.benchmarks_io.io500.find import run_find
from repro.benchmarks_io.io500.scoring import (
    PHASE_ORDER,
    IO500Score,
    compute_score,
)
from repro.benchmarks_io.ior.config import IORConfig
from repro.benchmarks_io.ior.runner import run_ior_in_job
from repro.benchmarks_io.mdtest import MdtestConfig, run_mdtest_phase
from repro.iostack.stack import IOJobContext, Testbed
from repro.util.errors import BenchmarkError
from repro.util.units import GIB, MIB

__all__ = ["IO500PhaseResult", "IO500Result", "run_io500", "main"]


@dataclass(frozen=True, slots=True)
class IO500PhaseResult:
    """One ``[RESULT]`` line of an IO500 run."""

    name: str
    value: float  # GiB/s for bandwidth phases, kIOPS for metadata phases
    unit: str  # 'GiB/s' | 'kIOPS'
    time_s: float


@dataclass(slots=True)
class IO500Result:
    """A complete, scored IO500 run."""

    config: IO500Config
    num_nodes: int
    tasks_per_node: int
    phases: list[IO500PhaseResult] = field(default_factory=list)
    score: IO500Score | None = None

    @property
    def num_tasks(self) -> int:
        """Total MPI tasks of the run."""
        return self.num_nodes * self.tasks_per_node

    def phase(self, name: str) -> IO500PhaseResult:
        """Look up one phase result by name."""
        for p in self.phases:
            if p.name == name:
                return p
        raise BenchmarkError(f"phase {name!r} not present in this IO500 run")

    def phase_values(self) -> dict[str, float]:
        """Phase name → scored value mapping."""
        return {p.name: p.value for p in self.phases}


def _ior_phase(
    ctx: IOJobContext, base: IORConfig, phase_name: str, operation: str, run_id: int
) -> IO500PhaseResult:
    config = base.with_(
        write_file=(operation == "write"), read_file=(operation == "read")
    )
    result = run_ior_in_job(
        config, ctx, run_id=run_id, extra_tags={"suite": "io500", "phase": phase_name}
    )
    row = result.operation_results(operation)[0]
    return IO500PhaseResult(
        name=phase_name,
        value=row.bandwidth_mib * MIB / GIB,
        unit="GiB/s",
        time_s=row.total_time_s,
    )


def _mdtest_phase(
    ctx: IOJobContext,
    config: MdtestConfig,
    phase_name: str,
    mdtest_op: str,
    run_id: int,
) -> IO500PhaseResult:
    row = run_mdtest_phase(
        ctx, config, mdtest_op, run_id, {"suite": "io500", "phase": phase_name}
    )
    return IO500PhaseResult(
        name=phase_name, value=row.ops_per_sec / 1000.0, unit="kIOPS", time_s=row.time_s
    )


def run_io500(
    config: IO500Config,
    testbed: Testbed,
    num_nodes: int = 2,
    tasks_per_node: int = 20,
    run_id: int = 0,
) -> IO500Result:
    """Run the full IO500 suite as one exclusive job and score it."""
    ctx = testbed.start_job("io500", num_nodes, tasks_per_node)
    try:
        result = run_io500_in_job(config, ctx, run_id=run_id)
    finally:
        testbed.finish_job(ctx)
    return result


def run_io500_in_job(config: IO500Config, ctx: IOJobContext, run_id: int = 0) -> IO500Result:
    """Run IO500 inside an existing allocation (all twelve phases)."""
    fs = ctx.fs
    fs.makedirs(config.workdir)
    ior_easy = config.ior_easy()
    ior_hard = config.ior_hard()
    md_easy = config.mdtest_easy()
    md_hard = config.mdtest_hard()
    for rank in ctx.comm.ranks():
        fs.makedirs(md_easy.task_dir(rank))
        fs.makedirs(md_hard.task_dir(rank))

    result = IO500Result(
        config=config, num_nodes=ctx.num_nodes, tasks_per_node=ctx.tasks_per_node
    )
    runners = {
        "ior-easy-write": lambda: _ior_phase(ctx, ior_easy, "ior-easy-write", "write", run_id),
        "mdtest-easy-write": lambda: _mdtest_phase(
            ctx, md_easy, "mdtest-easy-write", "create", run_id
        ),
        "ior-hard-write": lambda: _ior_phase(ctx, ior_hard, "ior-hard-write", "write", run_id),
        "mdtest-hard-write": lambda: _mdtest_phase(
            ctx, md_hard, "mdtest-hard-write", "create", run_id
        ),
        "find": lambda: _find_phase(ctx, config, run_id),
        "ior-easy-read": lambda: _ior_phase(ctx, ior_easy, "ior-easy-read", "read", run_id),
        "mdtest-easy-stat": lambda: _mdtest_phase(
            ctx, md_easy, "mdtest-easy-stat", "stat", run_id
        ),
        "ior-hard-read": lambda: _ior_phase(ctx, ior_hard, "ior-hard-read", "read", run_id),
        "mdtest-hard-stat": lambda: _mdtest_phase(
            ctx, md_hard, "mdtest-hard-stat", "stat", run_id
        ),
        "mdtest-easy-delete": lambda: _mdtest_phase(
            ctx, md_easy, "mdtest-easy-delete", "remove", run_id
        ),
        "mdtest-hard-read": lambda: _mdtest_phase(
            ctx, md_hard, "mdtest-hard-read", "read", run_id
        ),
        "mdtest-hard-delete": lambda: _mdtest_phase(
            ctx, md_hard, "mdtest-hard-delete", "remove", run_id
        ),
    }
    for name in PHASE_ORDER:
        result.phases.append(runners[name]())
    result.score = compute_score(result.phase_values())
    _cleanup_ior_files(ctx, (ior_easy, ior_hard))
    return result


def _find_phase(ctx: IOJobContext, config: IO500Config, run_id: int) -> IO500PhaseResult:
    found = run_find(ctx, config.workdir, run_id=run_id)
    return IO500PhaseResult(
        name="find", value=found.ops_per_sec / 1000.0, unit="kIOPS", time_s=found.time_s
    )


def _cleanup_ior_files(ctx: IOJobContext, configs: Sequence[IORConfig]) -> None:
    fs = ctx.fs
    wctx = ctx.phase_ctx("write", tags={"suite": "io500", "phase": "cleanup"})
    for cfg in configs:
        paths = (
            [cfg.file_for_rank(r) for r in ctx.comm.ranks()]
            if cfg.file_per_proc
            else [cfg.test_file]
        )
        for path in paths:
            if fs.namespace.exists(path):
                ctx.comm.advance(0, fs.unlink(path, wctx))


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point: run IO500 on the default simulated testbed."""
    from repro.benchmarks_io.io500.output import render_io500_output

    args = list(sys.argv[1:] if argv is None else argv)
    nodes = int(args[args.index("-N") + 1]) if "-N" in args else 2
    config = IO500Config()
    result = run_io500(config, Testbed.fuchs_csc(), num_nodes=nodes, tasks_per_node=20)
    print(render_io500_output(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
