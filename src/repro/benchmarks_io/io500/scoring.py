"""IO500 scoring.

The official score is the geometric mean of the bandwidth phases (in
GiB/s) combined with the geometric mean of the metadata phases (in
kIOPS) as ``sqrt(bw * md)``.  Geometric means make the score punish an
unbalanced system — exactly the property the bounding-box use case
(Liem et al., and the paper's Fig. 6) exploits to spot anomalies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import BenchmarkError
from repro.util.stats import geomean

__all__ = ["BW_PHASES", "MD_PHASES", "PHASE_ORDER", "IO500Score", "compute_score"]

#: Bandwidth-scored phases (GiB/s).
BW_PHASES = (
    "ior-easy-write",
    "ior-hard-write",
    "ior-easy-read",
    "ior-hard-read",
)

#: Metadata-scored phases (kIOPS).
MD_PHASES = (
    "mdtest-easy-write",
    "mdtest-hard-write",
    "find",
    "mdtest-easy-stat",
    "mdtest-hard-stat",
    "mdtest-easy-delete",
    "mdtest-hard-read",
    "mdtest-hard-delete",
)

#: Official execution order of the twelve phases.
PHASE_ORDER = (
    "ior-easy-write",
    "mdtest-easy-write",
    "ior-hard-write",
    "mdtest-hard-write",
    "find",
    "ior-easy-read",
    "mdtest-easy-stat",
    "ior-hard-read",
    "mdtest-hard-stat",
    "mdtest-easy-delete",
    "mdtest-hard-read",
    "mdtest-hard-delete",
)


@dataclass(frozen=True, slots=True)
class IO500Score:
    """The three numbers on an IO500 list entry."""

    bandwidth_gib: float
    iops_kiops: float
    total: float


def compute_score(phase_values: dict[str, float]) -> IO500Score:
    """Compute the IO500 score from phase results.

    Args:
        phase_values: phase name → value, GiB/s for bandwidth phases and
            kIOPS for metadata phases.  All twelve phases must be present
            and positive (an invalid run does not score).
    """
    missing = [p for p in PHASE_ORDER if p not in phase_values]
    if missing:
        raise BenchmarkError(f"cannot score an incomplete IO500 run; missing: {missing}")
    bad = [p for p in PHASE_ORDER if phase_values[p] <= 0]
    if bad:
        raise BenchmarkError(f"cannot score non-positive phase results: {bad}")
    bw = geomean([phase_values[p] for p in BW_PHASES])
    md = geomean([phase_values[p] for p in MD_PHASES])
    return IO500Score(bandwidth_gib=bw, iops_kiops=md, total=(bw * md) ** 0.5)
