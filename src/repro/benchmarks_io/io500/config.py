"""IO500 benchmark configuration.

Sizes are expressed per task so the suite scales with the allocation,
mirroring how the real IO500 ini file configures each sub-benchmark.
The defaults are chosen to exercise the same pattern contrasts as the
real suite (large aligned file-per-process vs. tiny unaligned shared
file; private-directory empty files vs. shared-directory 3901-byte
files) at simulation-friendly volumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarks_io.ior.config import IORConfig
from repro.benchmarks_io.mdtest import HARD_WRITE_BYTES, MdtestConfig
from repro.util.errors import ConfigurationError
from repro.util.units import MIB

__all__ = ["IO500Config", "IOR_HARD_TRANSFER"]

#: ior-hard writes exactly 47008-byte records (IO500 rules).
IOR_HARD_TRANSFER = 47008


@dataclass(frozen=True, slots=True)
class IO500Config:
    """One IO500 invocation (the knobs of the io500.ini file)."""

    workdir: str = "/scratch/io500"
    ior_easy_block: int = 64 * MIB  # bytes per task, file-per-process
    ior_easy_transfer: int = 2 * MIB
    ior_hard_ops: int = 256  # 47008-byte records per task, shared file
    mdtest_easy_items: int = 500  # empty files per task, private dirs
    mdtest_hard_items: int = 250  # 3901-byte files per task, shared dir
    stonewall_seconds: float = 0.0  # >0: cap each IOR phase like real IO500

    def __post_init__(self) -> None:
        if not self.workdir.startswith("/"):
            raise ConfigurationError("workdir must be absolute")
        if self.ior_easy_block % self.ior_easy_transfer != 0:
            raise ConfigurationError("ior-easy block must be a multiple of its transfer size")
        for name in ("ior_hard_ops", "mdtest_easy_items", "mdtest_hard_items"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.stonewall_seconds < 0:
            raise ConfigurationError("stonewall deadline must be >= 0")

    def ior_easy(self) -> IORConfig:
        """ior-easy: large sequential transfers, file-per-process."""
        return IORConfig(
            api="POSIX",
            block_size=self.ior_easy_block,
            transfer_size=self.ior_easy_transfer,
            segment_count=1,
            iterations=1,
            test_file=f"{self.workdir}/ior-easy/ior_file_easy",
            file_per_proc=True,
            fsync=True,
            keep_file=True,
            write_file=True,
            read_file=False,
            stonewall_seconds=self.stonewall_seconds,
        )

    def ior_hard(self) -> IORConfig:
        """ior-hard: tiny unaligned strided records in one shared file."""
        return IORConfig(
            api="MPIIO",
            block_size=IOR_HARD_TRANSFER,
            transfer_size=IOR_HARD_TRANSFER,
            segment_count=self.ior_hard_ops,
            iterations=1,
            test_file=f"{self.workdir}/ior-hard/IOR_file",
            file_per_proc=False,
            fsync=True,
            keep_file=True,
            write_file=True,
            read_file=False,
            stonewall_seconds=self.stonewall_seconds,
        )

    def mdtest_easy(self) -> MdtestConfig:
        """mdtest-easy: empty files, one private directory per task."""
        return MdtestConfig(
            num_items=self.mdtest_easy_items,
            base_dir=f"{self.workdir}/mdtest-easy",
            unique_dir_per_task=True,
            write_bytes=0,
            read_bytes=0,
            phases=("create",),
        )

    def mdtest_hard(self) -> MdtestConfig:
        """mdtest-hard: 3901-byte files, one shared directory."""
        return MdtestConfig(
            num_items=self.mdtest_hard_items,
            base_dir=f"{self.workdir}/mdtest-hard",
            unique_dir_per_task=False,
            write_bytes=HARD_WRITE_BYTES,
            read_bytes=HARD_WRITE_BYTES,
            phases=("create",),
        )

    def to_ini(self) -> str:
        """Render the io500.ini-style configuration text."""
        return "\n".join(
            [
                "[global]",
                f"datadir = {self.workdir}",
                f"stonewall-time = {int(self.stonewall_seconds)}",
                "",
                "[ior-easy]",
                f"blockSize = {self.ior_easy_block}",
                f"transferSize = {self.ior_easy_transfer}",
                "",
                "[ior-hard]",
                f"segmentCount = {self.ior_hard_ops}",
                f"transferSize = {IOR_HARD_TRANSFER}",
                "",
                "[mdtest-easy]",
                f"n = {self.mdtest_easy_items}",
                "",
                "[mdtest-hard]",
                f"n = {self.mdtest_hard_items}",
                "",
            ]
        )

    def option_sets(self) -> dict[str, dict[str, object]]:
        """Per-test-case option dictionaries (IOFHsOptions rows)."""
        return {
            "ior-easy": {
                "api": "POSIX",
                "blockSize": self.ior_easy_block,
                "transferSize": self.ior_easy_transfer,
                "filePerProc": True,
            },
            "ior-hard": {
                "api": "MPIIO",
                "segmentCount": self.ior_hard_ops,
                "transferSize": IOR_HARD_TRANSFER,
                "filePerProc": False,
            },
            "mdtest-easy": {"n": self.mdtest_easy_items, "uniqueDir": True},
            "mdtest-hard": {
                "n": self.mdtest_hard_items,
                "uniqueDir": False,
                "writeBytes": HARD_WRITE_BYTES,
            },
            "find": {},
        }
