"""The IO500 ``find`` phase.

Scans the namespace produced by the preceding write phases and counts
the files matching the IO500 predicate (the 3901-byte mdtest-hard files
plus the timestamp window).  The rate is bounded by the metadata
servers' stat capability, saturating with client concurrency like every
other metadata operation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.iostack.stack import IOJobContext
from repro.util.errors import BenchmarkError

__all__ = ["FindResult", "run_find"]

#: Directory-scan speedup over individual stats: find readdirplus-style
#: bulk iteration is cheaper per entry than isolated stat calls.
_SCAN_SPEEDUP = 4.0


@dataclass(frozen=True, slots=True)
class FindResult:
    """Outcome of one find phase."""

    total_files: int
    matched_files: int
    time_s: float

    @property
    def ops_per_sec(self) -> float:
        """Scan rate in entries/s (what IO500 scores as kIOPS)."""
        if self.time_s <= 0:
            raise BenchmarkError("find finished in non-positive time")
        return self.total_files / self.time_s


def run_find(
    ctx: IOJobContext,
    workdir: str,
    match_size: int = 3901,
    run_id: int = 0,
) -> FindResult:
    """Run the parallel find over ``workdir``.

    All ranks share the scan evenly; the phase cost is the per-entry
    stat cost at full concurrency divided by the bulk-scan speedup.
    """
    comm = ctx.comm
    fs = ctx.fs
    tags = {"benchmark": "find", "run": run_id}
    pctx = ctx.phase_ctx("read", tags=tags)
    files = fs.namespace.walk_files(workdir)
    total = len(files)
    matched = sum(1 for _, e in files if e.size == match_size)
    if total == 0:
        raise BenchmarkError(f"find: no files under {workdir!r}; run the write phases first")

    t0 = comm.barrier()
    per_entry = fs.model.metadata_time_s("stat", pctx) / _SCAN_SPEEDUP
    noise = fs.model.phase_noise_factor(pctx, kind="metadata")
    entries_per_rank = total / comm.size
    for rank in comm.ranks():
        comm.advance(rank, entries_per_rank * per_entry * noise)
    comm.barrier()
    elapsed = comm.max_time() - t0
    return FindResult(total_files=total, matched_files=matched, time_s=elapsed)
