"""mdtest metadata benchmark.

The metadata half of IO500: each task creates/stats/reads/removes many
small files.  The *easy* variant gives every task a private directory
and writes no data; the *hard* variant forces all tasks into one shared
directory and writes 3901 bytes per file — the directory-lock and
small-write costs that separate the two in real IO500 lists come from
the metadata-server model (shared-directory factor) and the transfer
cost of the tiny writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.iostack.stack import IOJobContext
from repro.util.errors import BenchmarkError, ConfigurationError

__all__ = [
    "MdtestConfig",
    "MdtestPhaseResult",
    "MdtestResult",
    "run_mdtest",
    "run_mdtest_phase",
    "render_mdtest_output",
    "MDTEST_PHASES",
    "HARD_WRITE_BYTES",
]

MDTEST_PHASES = ("create", "stat", "read", "remove")

#: mdtest-hard writes exactly 3901 bytes into every file (IO500 rules).
HARD_WRITE_BYTES = 3901


@dataclass(frozen=True, slots=True)
class MdtestConfig:
    """One mdtest invocation."""

    num_items: int = 1000  # files per task (-n)
    base_dir: str = "/scratch/mdtest"
    unique_dir_per_task: bool = True  # -u; False = shared directory
    write_bytes: int = 0  # -w
    read_bytes: int = 0  # -e
    phases: tuple[str, ...] = MDTEST_PHASES

    def __post_init__(self) -> None:
        if self.num_items <= 0:
            raise ConfigurationError("mdtest needs >= 1 item per task")
        if self.write_bytes < 0 or self.read_bytes < 0:
            raise ConfigurationError("write/read bytes must be >= 0")
        unknown = set(self.phases) - set(MDTEST_PHASES)
        if unknown:
            raise ConfigurationError(f"unknown mdtest phases: {sorted(unknown)}")
        if "read" in self.phases and self.read_bytes > self.write_bytes:
            raise ConfigurationError("cannot read more bytes than were written")
        if not self.base_dir.startswith("/"):
            raise ConfigurationError("base_dir must be absolute")

    def task_dir(self, rank: int) -> str:
        """Directory a task works in."""
        if self.unique_dir_per_task:
            return f"{self.base_dir}/task{rank}"
        return f"{self.base_dir}/shared"

    def item_path(self, rank: int, index: int) -> str:
        """Path of one item file."""
        return f"{self.task_dir(rank)}/file.mdtest.{rank}.{index}"


@dataclass(frozen=True, slots=True)
class MdtestPhaseResult:
    """One mdtest phase outcome."""

    phase: str
    ops_per_sec: float
    total_ops: int
    time_s: float


@dataclass(slots=True)
class MdtestResult:
    """All phases of one mdtest run."""

    config: MdtestConfig
    num_tasks: int
    results: list[MdtestPhaseResult] = field(default_factory=list)

    def rate(self, phase: str) -> float:
        """Ops/s of one phase."""
        for r in self.results:
            if r.phase == phase:
                return r.ops_per_sec
        raise BenchmarkError(f"phase {phase!r} was not run")

    def rates(self) -> dict[str, float]:
        """Phase → ops/s mapping."""
        return {r.phase: r.ops_per_sec for r in self.results}


def run_mdtest_phase(
    ctx: IOJobContext,
    config: MdtestConfig,
    phase: str,
    run_id: int,
    extra_tags: Mapping[str, object],
) -> MdtestPhaseResult:
    """Run one mdtest phase in an existing allocation.

    IO500 drives phases individually (they interleave with other
    benchmarks in the official order); files created by an earlier
    ``create`` call persist in the namespace between calls.
    """
    comm = ctx.comm
    fs = ctx.fs
    shared_dir = not config.unique_dir_per_task
    access = "write" if phase in ("create", "remove") else "read"
    tags = {"benchmark": "mdtest", "run": run_id, "phase": phase, **extra_tags}
    # Hard faults (e.g. a flaky metadata service) abort the phase with a
    # typed, possibly transient error before any namespace bookkeeping.
    fs.faults.maybe_raise(tags)
    pctx = ctx.phase_ctx(access, shared_file=False, tags=tags)
    phase_factor = fs.model.phase_noise_factor(pctx, kind="metadata")
    md_op = {"create": "create", "stat": "stat", "read": "open", "remove": "remove"}[phase]

    t0 = comm.barrier()
    n = config.num_items
    for rank in comm.ranks():
        md_times = fs.model.metadata_times_s(md_op, pctx, n, rank=rank, shared_dir=shared_dir)
        dt = float(md_times.sum())
        # Namespace bookkeeping + data payloads.
        if phase == "create":
            layout = fs.default_layout()
            for i in range(n):
                fs.create(config.item_path(rank, i), None, layout=layout, shared_dir=shared_dir)
            if config.write_bytes:
                entry = fs.namespace.lookup_file(config.item_path(rank, 0))
                io = fs.model.transfer_times_s(
                    config.write_bytes, entry.layout, pctx, n, rank=rank
                )
                dt += float(io.sum())
                for i in range(n):
                    fs.namespace.lookup_file(config.item_path(rank, i)).extend_to(
                        config.write_bytes
                    )
        elif phase == "read" and config.read_bytes:
            entry = fs.namespace.lookup_file(config.item_path(rank, 0))
            io = fs.model.transfer_times_s(config.read_bytes, entry.layout, pctx, n, rank=rank)
            dt += float(io.sum())
        elif phase == "remove":
            for i in range(n):
                fs.namespace.remove_file(config.item_path(rank, i))
        # Report the batch to the job's tracer under a module of its
        # own: counter tracers (metrics bridge, online monitor) pick it
        # up while the Darshan substrate ignores non-stack modules.
        payload = config.write_bytes if phase == "create" else (
            config.read_bytes if phase == "read" else 0
        )
        ctx.tracer.record_batch(
            "MDTEST", phase, rank, config.task_dir(rank), 0, payload,
            md_times * phase_factor, t0,
        )
        comm.advance(rank, dt * phase_factor)
    comm.barrier()
    elapsed = comm.max_time() - t0
    total_ops = n * comm.size
    return MdtestPhaseResult(
        phase=phase, ops_per_sec=total_ops / elapsed, total_ops=total_ops, time_s=elapsed
    )


def run_mdtest(
    config: MdtestConfig,
    ctx: IOJobContext,
    run_id: int = 0,
    extra_tags: Mapping[str, object] | None = None,
) -> MdtestResult:
    """Run mdtest inside an existing job allocation.

    Phases run in the order given by ``config.phases``; ``create`` must
    precede any phase that touches the created files.
    """
    fs = ctx.fs
    for rank in ctx.comm.ranks():
        fs.makedirs(config.task_dir(rank))
    needs_files = {"stat", "read", "remove"} & set(config.phases)
    if needs_files and "create" not in config.phases:
        raise BenchmarkError("mdtest phases require 'create' to run first")
    if config.phases and config.phases[0] != "create" and "create" in config.phases:
        raise BenchmarkError("'create' must be the first mdtest phase")
    result = MdtestResult(config=config, num_tasks=ctx.comm.size)
    for phase in config.phases:
        result.results.append(run_mdtest_phase(ctx, config, phase, run_id, extra_tags or {}))
    return result


def render_mdtest_output(result: MdtestResult) -> str:
    """Render mdtest-style summary text for one run.

    Follows the real mdtest "SUMMARY rate" block so the knowledge
    extractor works on genuine mdtest output as well (§VI: unified
    knowledge objects "support[ing] more benchmarks with different
    output formats").
    """
    label = {
        "create": "File creation",
        "stat": "File stat",
        "read": "File read",
        "remove": "File removal",
    }
    lines = [
        "-- started at 07/20/2022 10:00:00 --",
        "",
        f"mdtest-3.4.0+repro was launched with {result.num_tasks} total task(s)",
        f"Command line used: mdtest -n {result.config.num_items}"
        f"{' -u' if result.config.unique_dir_per_task else ''}"
        f"{f' -w {result.config.write_bytes}' if result.config.write_bytes else ''}"
        f" -d {result.config.base_dir}",
        f"Path: {result.config.base_dir}",
        "",
        "SUMMARY rate: (of 1 iterations)",
        "   Operation                      Max            Min           Mean        Std Dev",
        "   ---------                      ---            ---           ----        -------",
    ]
    for phase in result.results:
        rate = phase.ops_per_sec
        lines.append(
            f"   {label[phase.phase]:<25} :  {rate:>13.3f}  {rate:>13.3f}  {rate:>13.3f}  {0.0:>13.3f}"
        )
    lines += ["", "-- finished at 07/20/2022 10:00:30 --", ""]
    return "\n".join(lines)
