"""HACC-IO benchmark.

Replays the checkpoint/restart I/O of the HACC cosmology code, which
the paper integrates "to cover real I/O patterns like checkpoint and
restart for large simulations" (§V-A).  Each simulated particle carries
38 bytes (9 floats + 1 int16, as in the real kernel); every rank owns
``num_particles`` of them and writes/reads them as one contiguous
record per rank.  Supported interfaces are POSIX and MPI-IO, with the
three file access modes of the real benchmark: single shared file,
file-per-process, and one file per group of ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.iostack.mpiio import MPIIOFile
from repro.iostack.posix import PosixFile, PosixLayer
from repro.iostack.stack import IOJobContext
from repro.util.errors import BenchmarkError, ConfigurationError
from repro.util.units import MIB

__all__ = ["HaccIOConfig", "HaccIOPhaseResult", "HaccIOResult", "run_hacc_io", "BYTES_PER_PARTICLE"]

#: xx, yy, zz, vx, vy, vz, phi, pid, mask — 9 floats + 1 int16.
BYTES_PER_PARTICLE = 38

_MODES = ("single-shared-file", "file-per-process", "file-per-group")
_APIS = ("POSIX", "MPIIO")


@dataclass(frozen=True, slots=True)
class HaccIOConfig:
    """One HACC-IO invocation."""

    num_particles: int = 1_000_000  # per rank
    api: str = "MPIIO"
    mode: str = "single-shared-file"
    group_size: int = 16  # ranks per file in file-per-group mode
    out_file: str = "/scratch/hacc/checkpoint"
    transfer_size: int = 4 * MIB  # client-side buffering granularity
    restart: bool = True  # read the checkpoint back

    def __post_init__(self) -> None:
        if self.num_particles <= 0:
            raise ConfigurationError("HACC-IO needs >= 1 particle per rank")
        if self.api.upper() not in _APIS:
            raise ConfigurationError(f"HACC-IO api must be one of {_APIS}")
        object.__setattr__(self, "api", self.api.upper())
        if self.mode not in _MODES:
            raise ConfigurationError(f"HACC-IO mode must be one of {_MODES}")
        if self.group_size <= 0:
            raise ConfigurationError("group size must be >= 1")
        if self.transfer_size <= 0:
            raise ConfigurationError("transfer size must be positive")
        if not self.out_file.startswith("/"):
            raise ConfigurationError("out_file must be absolute")

    @property
    def bytes_per_rank(self) -> int:
        """Checkpoint bytes one rank owns."""
        return self.num_particles * BYTES_PER_PARTICLE

    def file_for_rank(self, rank: int) -> str:
        """The file a rank writes its particles into."""
        if self.mode == "single-shared-file":
            return self.out_file
        if self.mode == "file-per-process":
            return f"{self.out_file}.{rank:08d}"
        return f"{self.out_file}.g{rank // self.group_size:04d}"

    def ranks_sharing(self, num_tasks: int, rank: int) -> int:
        """How many ranks share this rank's file."""
        if self.mode == "single-shared-file":
            return num_tasks
        if self.mode == "file-per-process":
            return 1
        first = (rank // self.group_size) * self.group_size
        return min(self.group_size, num_tasks - first)


@dataclass(frozen=True, slots=True)
class HaccIOPhaseResult:
    """One checkpoint (write) or restart (read) phase."""

    operation: str
    bandwidth_mib: float
    time_s: float
    data_moved_bytes: int


@dataclass(slots=True)
class HaccIOResult:
    """Both phases of one HACC-IO run."""

    config: HaccIOConfig
    num_tasks: int
    results: list[HaccIOPhaseResult] = field(default_factory=list)

    def phase(self, operation: str) -> HaccIOPhaseResult:
        """Result of 'write' (checkpoint) or 'read' (restart)."""
        for r in self.results:
            if r.operation == operation:
                return r
        raise BenchmarkError(f"phase {operation!r} was not run")


def _run_phase(ctx: IOJobContext, config: HaccIOConfig, operation: str, run_id: int) -> HaccIOPhaseResult:
    comm = ctx.comm
    fs = ctx.fs
    layer = ctx.layer(config.api)
    access = operation
    tags = {"benchmark": "hacc-io", "run": run_id, "op": operation, "mode": config.mode}
    t0 = comm.barrier()
    nbytes = config.bytes_per_rank
    full_transfers, remainder = divmod(nbytes, config.transfer_size)

    for rank in comm.ranks():
        shared = config.ranks_sharing(comm.size, rank) > 1
        pctx = ctx.phase_ctx(access, shared_file=shared, tags=tags)
        now = comm.now(rank)
        path = config.file_for_rank(rank)
        if isinstance(layer, PosixLayer):
            if operation == "write":
                handle, dt = layer.open_shared(path, rank, pctx, now)
            else:
                handle, dt = layer.open(path, rank, pctx, now)
        else:
            handle, dt = layer.open(
                path, rank, pctx, now, create=(operation == "write"), shared_file=shared
            )
        now += dt
        total = dt
        # Contiguous per-rank record at a rank-order offset.
        offset = (rank % config.ranks_sharing(comm.size, rank)) * nbytes if shared else 0
        _seek(handle, offset)
        if full_transfers:
            durations = handle.io_many(operation, config.transfer_size, full_transfers, pctx, now)
            step = float(durations.sum())
            now += step
            total += step
        if remainder:
            step = _single_io(handle, operation, remainder, pctx, now)
            now += step
            total += step
        total += _close(handle, now, pctx)
        comm.advance(rank, total)
    comm.barrier()
    elapsed = comm.max_time() - t0
    data = nbytes * comm.size
    phase_factor = fs.model.phase_noise_factor(
        ctx.phase_ctx(access, tags=tags), kind="data"
    )
    elapsed *= phase_factor
    return HaccIOPhaseResult(
        operation=operation,
        bandwidth_mib=data / MIB / elapsed,
        time_s=elapsed,
        data_moved_bytes=data,
    )


def _seek(handle, offset: int) -> None:
    if isinstance(handle, PosixFile):
        handle.seek(offset)
    elif isinstance(handle, MPIIOFile):
        handle.posix.seek(offset)


def _single_io(handle, operation: str, nbytes: int, pctx, now: float) -> float:
    if isinstance(handle, PosixFile):
        return handle.write(nbytes, pctx, now) if operation == "write" else handle.read(nbytes, pctx, now)
    pos = handle.posix.offset
    if operation == "write":
        dt = handle.write_at(pos, nbytes, pctx, now)
    else:
        dt = handle.read_at(pos, nbytes, pctx, now)
    handle.posix.seek(pos + nbytes)
    return dt


def _close(handle, now: float, pctx) -> float:
    return handle.close(now)


def run_hacc_io(config: HaccIOConfig, ctx: IOJobContext, run_id: int = 0) -> HaccIOResult:
    """Run HACC-IO (checkpoint, then optional restart) in a job."""
    import posixpath

    ctx.fs.makedirs(posixpath.dirname(config.out_file))
    result = HaccIOResult(config=config, num_tasks=ctx.comm.size)
    result.results.append(_run_phase(ctx, config, "write", run_id))
    if config.restart:
        result.results.append(_run_phase(ctx, config, "read", run_id))
    return result
