"""IOR benchmark configuration.

Mirrors the real IOR option semantics the paper's prototype relies on
(§V-A/§V-E1): block size ``-b``, transfer size ``-t``, segment count
``-s``, file-per-process ``-F``, constant task reordering ``-C``,
fsync ``-e``, repetitions ``-i``, test file ``-o``, keep file ``-k``,
API selection ``-a`` and collective I/O ``-c``.

IOR's data layout: each task owns ``segment_count`` segments of
``block_size`` bytes each, accessed in ``transfer_size`` units, so one
task moves ``segment_count * block_size`` bytes per operation phase in
``segment_count * block_size / transfer_size`` transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.mpi.hints import MPIIOHints
from repro.util.errors import ConfigurationError
from repro.util.units import MIB, parse_size

__all__ = ["IORConfig"]

_APIS = ("POSIX", "MPIIO", "HDF5")


@dataclass(frozen=True, slots=True)
class IORConfig:
    """One IOR experiment definition (what a command line encodes)."""

    api: str = "POSIX"
    block_size: int = 4 * MIB
    transfer_size: int = 1 * MIB
    segment_count: int = 1
    iterations: int = 1
    test_file: str = "/scratch/testFile"
    file_per_proc: bool = False
    reorder_tasks_constant: bool = False
    fsync: bool = False
    keep_file: bool = False
    collective: bool = False
    write_file: bool = True
    read_file: bool = True
    stonewall_seconds: float = 0.0  # -D: stop each phase after N seconds
    random_offsets: bool = False  # -z: access offsets in random order
    hints: MPIIOHints = field(default_factory=MPIIOHints)

    def __post_init__(self) -> None:
        if self.api.upper() not in _APIS:
            raise ConfigurationError(f"unknown IOR api {self.api!r}; known: {_APIS}")
        object.__setattr__(self, "api", self.api.upper())
        if self.block_size <= 0 or self.transfer_size <= 0:
            raise ConfigurationError("block and transfer sizes must be positive")
        if self.block_size % self.transfer_size != 0:
            raise ConfigurationError(
                f"block size ({self.block_size}) must be a multiple of the "
                f"transfer size ({self.transfer_size})"
            )
        if self.segment_count <= 0:
            raise ConfigurationError("segment count must be >= 1")
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be >= 1")
        if not self.test_file.startswith("/"):
            raise ConfigurationError("test file must be an absolute path")
        if not (self.write_file or self.read_file):
            raise ConfigurationError("at least one of write/read must be enabled")
        if self.collective and self.api == "POSIX":
            raise ConfigurationError("collective I/O requires MPIIO or HDF5")
        if self.stonewall_seconds < 0:
            raise ConfigurationError("stonewall deadline must be >= 0")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def transfers_per_block(self) -> int:
        """Transfers needed to cover one block."""
        return self.block_size // self.transfer_size

    @property
    def transfers_per_task(self) -> int:
        """Transfers one task performs per operation phase."""
        return self.transfers_per_block * self.segment_count

    @property
    def bytes_per_task(self) -> int:
        """Bytes one task moves per operation phase."""
        return self.block_size * self.segment_count

    def aggregate_bytes(self, num_tasks: int) -> int:
        """Total data moved per operation phase across all tasks."""
        if num_tasks <= 0:
            raise ConfigurationError("num_tasks must be >= 1")
        return self.bytes_per_task * num_tasks

    @property
    def shared_file(self) -> bool:
        """Whether all tasks write into one shared file (no ``-F``)."""
        return not self.file_per_proc

    def file_for_rank(self, rank: int) -> str:
        """Path a given rank accesses (``.%08d`` suffix under ``-F``)."""
        if self.file_per_proc:
            return f"{self.test_file}.{rank:08d}"
        return self.test_file

    @property
    def access_description(self) -> str:
        """Access mode as IOR prints it."""
        return "file-per-process" if self.file_per_proc else "single-shared-file"

    @property
    def type_description(self) -> str:
        """I/O type as IOR prints it."""
        return "collective" if self.collective else "independent"

    def with_(self, **changes: object) -> "IORConfig":
        """Return a modified copy (used by the workload generator)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # command-line round trip
    # ------------------------------------------------------------------
    def to_command(self) -> str:
        """Render the equivalent ``ior`` command line.

        The inverse of :func:`repro.benchmarks_io.ior.cli.parse_command`;
        the Phase-V workload generator uses this to hand users a
        runnable command, exactly as the paper's web tool does.
        """
        def size_arg(nbytes: int) -> str:
            # Largest binary unit that divides exactly; otherwise the
            # raw byte count (47008 must round-trip as 47008, not 46k).
            for unit, suffix in ((1024**4, "t"), (1024**3, "g"), (1024**2, "m"), (1024, "k")):
                if nbytes % unit == 0 and nbytes >= unit:
                    return f"{nbytes // unit}{suffix}"
            return str(nbytes)

        parts = ["ior", "-a", self.api.lower()]
        parts += ["-b", size_arg(self.block_size)]
        parts += ["-t", size_arg(self.transfer_size)]
        if self.segment_count != 1:
            parts += ["-s", str(self.segment_count)]
        if self.file_per_proc:
            parts.append("-F")
        if self.reorder_tasks_constant:
            parts.append("-C")
        if self.fsync:
            parts.append("-e")
        if self.collective:
            parts.append("-c")
        if self.random_offsets:
            parts.append("-z")
        if self.stonewall_seconds > 0:
            deadline = self.stonewall_seconds
            parts += ["-D", str(int(deadline) if deadline == int(deadline) else deadline)]
        if self.iterations != 1:
            parts += ["-i", str(self.iterations)]
        parts += ["-o", self.test_file]
        if self.keep_file:
            parts.append("-k")
        if self.write_file and not self.read_file:
            parts.append("-w")
        if self.read_file and not self.write_file:
            parts.append("-r")
        return " ".join(parts)

    @classmethod
    def from_sizes(cls, block: str | int, transfer: str | int, **kwargs: object) -> "IORConfig":
        """Convenience constructor accepting IOR size strings (``'4m'``)."""
        return cls(
            block_size=parse_size(block),
            transfer_size=parse_size(transfer),
            **kwargs,  # type: ignore[arg-type]
        )
