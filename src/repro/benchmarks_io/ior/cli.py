"""IOR command-line parsing.

Parses the option subset the paper's experiments use, e.g. the §V-E1
command ``ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o <path> -k``.
``parse_command`` and :meth:`IORConfig.to_command` round-trip, which is
what lets the Phase-V workload generator regenerate runnable commands
from stored knowledge.
"""

from __future__ import annotations

import shlex
import sys
from typing import Sequence

from repro.benchmarks_io.ior.config import IORConfig
from repro.util.errors import ConfigurationError
from repro.util.units import parse_size

__all__ = ["parse_args", "parse_command", "main"]

_FLAG_OPTIONS = {
    "-F": "file_per_proc",
    "-C": "reorder_tasks_constant",
    "-e": "fsync",
    "-k": "keep_file",
    "-c": "collective",
    "-z": "random_offsets",
}

_VALUE_OPTIONS = {"-a", "-b", "-t", "-s", "-i", "-o", "-D"}


def parse_args(argv: Sequence[str]) -> IORConfig:
    """Parse an IOR argument vector (without the leading ``ior``)."""
    kwargs: dict[str, object] = {}
    explicit_rw: list[str] = []
    i = 0
    args = list(argv)
    while i < len(args):
        arg = args[i]
        # Tolerate en-dash/em-dash variants that survive PDF copy-paste.
        arg = arg.replace("–", "-").replace("—", "-")
        if arg.startswith("--"):
            arg = arg[1:]
        if arg in _FLAG_OPTIONS:
            kwargs[_FLAG_OPTIONS[arg]] = True
            i += 1
            continue
        if arg == "-w":
            explicit_rw.append("w")
            i += 1
            continue
        if arg == "-r":
            explicit_rw.append("r")
            i += 1
            continue
        if arg in _VALUE_OPTIONS:
            if i + 1 >= len(args):
                raise ConfigurationError(f"IOR option {arg} requires a value")
            value = args[i + 1]
            if arg == "-a":
                kwargs["api"] = value.upper()
            elif arg == "-b":
                kwargs["block_size"] = parse_size(value)
            elif arg == "-t":
                kwargs["transfer_size"] = parse_size(value)
            elif arg == "-s":
                kwargs["segment_count"] = int(value)
            elif arg == "-i":
                kwargs["iterations"] = int(value)
            elif arg == "-o":
                kwargs["test_file"] = value
            elif arg == "-D":
                kwargs["stonewall_seconds"] = float(value)
            i += 2
            continue
        raise ConfigurationError(f"unknown IOR option {arg!r}")
    if explicit_rw:
        # As in IOR: naming -w and/or -r restricts the phases; naming
        # neither runs both ("Since read or write are not explicitly
        # specified, IOR executes the command once with read and once
        # with write per iteration" — §V-E1).
        kwargs["write_file"] = "w" in explicit_rw
        kwargs["read_file"] = "r" in explicit_rw
    return IORConfig(**kwargs)  # type: ignore[arg-type]


def parse_command(command: str) -> IORConfig:
    """Parse a full command string, e.g. ``'ior -a mpiio -b 4m ...'``."""
    tokens = shlex.split(command)
    if not tokens:
        raise ConfigurationError("empty IOR command")
    if tokens[0].endswith("ior"):
        tokens = tokens[1:]
    return parse_args(tokens)


def main(argv: Sequence[str] | None = None) -> int:
    """Console entry point: run IOR on a default simulated testbed."""
    from repro.benchmarks_io.ior.output import render_ior_output
    from repro.benchmarks_io.ior.runner import run_ior
    from repro.iostack.stack import Testbed

    args = list(sys.argv[1:] if argv is None else argv)
    nodes, tpn = 4, 20
    if "-N" in args:  # total tasks shortcut: -N <tasks> (tpn fixed at 20)
        idx = args.index("-N")
        total = int(args[idx + 1])
        del args[idx : idx + 2]
        nodes = max(1, total // tpn)
        tpn = min(tpn, total)
    config = parse_args(args)
    testbed = Testbed.fuchs_csc()
    result = run_ior(config, testbed, num_nodes=nodes, tasks_per_node=tpn)
    print(render_ior_output(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
