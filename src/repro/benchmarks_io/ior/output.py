"""IOR output rendering.

Produces a summary text in the structure of real IOR 3.x output — the
``Options:`` block, the per-iteration ``Results:`` table and the
``Summary of all tests:`` section.  The Phase-II knowledge extractor
parses exactly this format, so benchmark and extractor communicate the
same way the paper's prototype and real IOR do: through the output
file, not through in-process objects.
"""

from __future__ import annotations

import datetime as _dt

from repro.benchmarks_io.ior.config import IORConfig
from repro.benchmarks_io.ior.runner import SIM_EPOCH, IOROperationResult, IORRunResult
from repro.util.units import KIB, MIB, format_size, to_gib

__all__ = ["render_ior_output", "IOR_VERSION"]

IOR_VERSION = "IOR-3.3.0+repro"


def _ts(offset_s: float) -> str:
    t = _dt.datetime.fromtimestamp(SIM_EPOCH + offset_s, tz=_dt.timezone.utc)
    return t.strftime("%a %b %d %H:%M:%S %Y")


def _options_block(result: IORRunResult) -> list[str]:
    cfg = result.config
    ordering_inter = (
        "constant task offset" if cfg.reorder_tasks_constant else "no tasks offsets"
    )
    lines = [
        "Options: ",
        f"api                 : {cfg.api}",
        "apiVersion          : ",
        f"test filename       : {cfg.test_file}",
        f"access              : {cfg.access_description}",
        f"type                : {cfg.type_description}",
        f"segments            : {cfg.segment_count}",
        "ordering in a file  : sequential",
        f"ordering inter file : {ordering_inter}",
    ]
    if cfg.reorder_tasks_constant:
        lines.append("task offset         : 1")
    lines += [
        f"nodes               : {result.num_nodes}",
        f"tasks               : {result.num_tasks}",
        f"clients per node    : {result.tasks_per_node}",
        f"repetitions         : {cfg.iterations}",
        f"xfersize            : {format_size(cfg.transfer_size)}",
        f"blocksize           : {format_size(cfg.block_size)}",
        f"aggregate filesize  : {format_size(cfg.aggregate_bytes(result.num_tasks))}",
        f"fsync               : {'TRUE' if cfg.fsync else 'FALSE'}",
        f"keep file           : {'TRUE' if cfg.keep_file else 'FALSE'}",
    ]
    return lines


def _result_row(r: IOROperationResult, cfg: IORConfig) -> str:
    return (
        f"{r.operation:<9} {r.bandwidth_mib:>10.2f} {r.iops:>10.2f} "
        f"{r.latency_s:>11.5f} {cfg.block_size // KIB:>11} "
        f"{cfg.transfer_size // KIB:>10} "
        f"{r.open_time_s:>9.5f} {r.io_time_s:>9.4f} {r.close_time_s:>9.5f} "
        f"{r.total_time_s:>9.4f} {r.iteration:>4}"
    )


def _summary_rows(result: IORRunResult) -> list[str]:
    cfg = result.config
    rows = []
    for op in result.operations():
        bw = result.bandwidth_summary(op)
        ops = result.iops_summary(op)
        mean_time = sum(r.total_time_s for r in result.operation_results(op)) / bw.count
        rows.append(
            f"{op:<9} {bw.maximum:>10.2f} {bw.minimum:>10.2f} {bw.mean:>10.2f} "
            f"{bw.stddev:>10.2f} {ops.maximum:>10.2f} {ops.minimum:>10.2f} "
            f"{ops.mean:>10.2f} {ops.stddev:>10.2f} {mean_time:>10.5f} "
            f"{bw.count:>4} {result.num_tasks:>6} {result.tasks_per_node:>3} "
            f"{cfg.iterations:>4} {int(cfg.file_per_proc):>3} "
            f"{int(cfg.reorder_tasks_constant):>5} "
            f"{cfg.segment_count:>6} {cfg.block_size:>10} {cfg.transfer_size:>8} "
            f"{cfg.aggregate_bytes(result.num_tasks) / MIB:>10.1f} {cfg.api:>6}"
        )
    return rows


def _used_pct(result: IORRunResult) -> float:
    cap = float(result.fs_info.get("capacity_bytes", 0) or 0)
    used = float(result.fs_info.get("used_bytes", 0) or 0)
    return 100.0 * used / cap if cap else 0.0


def render_ior_output(result: IORRunResult) -> str:
    """Render the full IOR output text for one run."""
    cfg = result.config
    lines = [
        f"{IOR_VERSION}: MPI Coordinated Test of Parallel I/O",
        f"Began               : {_ts(result.start_offset_s)}",
        f"Command line        : {result.command}",
        f"Machine             : Linux {result.machine}",
        "TestID              : 0",
        f"StartTime           : {_ts(result.start_offset_s)}",
        f"Path                : {cfg.test_file}",
        f"FS                  : {to_gib(int(result.fs_info.get('capacity_bytes', 0))):.1f} GiB"
        f"   Used FS: {_used_pct(result):.1f}%",
        "",
    ]
    lines += _options_block(result)
    lines += [
        "",
        "Results: ",
        "",
        "access     bw(MiB/s)       IOPS  Latency(s)  block(KiB) xfer(KiB)   open(s)"
        "  wr/rd(s)  close(s)  total(s) iter",
        "------     ---------       ----  ----------  ---------- ---------   -------"
        "  --------  --------  -------- ----",
    ]
    for op in ("write", "read"):
        for r in result.operation_results(op):
            lines.append(_result_row(r, cfg))
    for op in result.operations():
        s = result.bandwidth_summary(op)
        label = "Max Write" if op == "write" else "Max Read"
        lines.append(f"{label}: {s.maximum:.2f} MiB/sec ({s.maximum * MIB / 1e6:.2f} MB/sec)")
    lines += [
        "",
        "Summary of all tests:",
        "Operation    Max(MiB)   Min(MiB)  Mean(MiB)     StdDev   Max(OPs)   Min(OPs)"
        "  Mean(OPs)     StdDev    Mean(s) Test# #Tasks tPN reps fPP reord segcnt"
        "     blksiz    xsize aggs(MiB)    API",
    ]
    lines += _summary_rows(result)
    lines += ["", f"Finished            : {_ts(result.end_offset_s)}", ""]
    return "\n".join(lines)
