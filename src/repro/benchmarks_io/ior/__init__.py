"""IOR benchmark implementation on the simulated I/O stack."""

from repro.benchmarks_io.ior.cli import parse_args, parse_command
from repro.benchmarks_io.ior.config import IORConfig
from repro.benchmarks_io.ior.output import render_ior_output
from repro.benchmarks_io.ior.runner import (
    IOROperationResult,
    IORRunResult,
    run_ior,
    run_ior_in_job,
)

__all__ = [
    "IORConfig",
    "IOROperationResult",
    "IORRunResult",
    "run_ior",
    "run_ior_in_job",
    "parse_args",
    "parse_command",
    "render_ior_output",
]
