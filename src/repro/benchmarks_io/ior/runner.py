"""IOR execution engine on the simulated testbed.

Replays IOR's bulk-synchronous structure faithfully: per repetition one
write and/or one read phase, each phase being barrier / open / N
transfers per task / (fsync) / close / barrier, with per-phase timing
decomposed exactly into the columns IOR prints (open, wr/rd, close,
total) and bandwidth computed as aggregate data over total phase time.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field

import numpy as np

from repro.benchmarks_io.ior.config import IORConfig
from repro.iostack.hdf5 import HDF5File, HDF5Layer
from repro.iostack.mpiio import MPIIOFile, MPIIOLayer
from repro.iostack.posix import PosixFile, PosixLayer
from repro.iostack.stack import IOJobContext, Testbed
from repro.iostack.tracing import Tracer
from repro.util.errors import BenchmarkError
from repro.util.stats import Summary, summarize
from repro.util.units import MIB

__all__ = ["IOROperationResult", "IORRunResult", "run_ior", "run_ior_in_job"]

#: Fixed simulated epoch: all timestamps are offsets from this instant,
#: keeping runs bit-reproducible (2022-07-20 10:00:00 UTC).
SIM_EPOCH = 1658311200.0


@dataclass(frozen=True, slots=True)
class IOROperationResult:
    """One row of IOR's per-iteration results table."""

    operation: str  # 'write' | 'read'
    iteration: int  # 0-based, like IOR's 'iter' column
    bandwidth_mib: float
    iops: float
    latency_s: float
    open_time_s: float
    io_time_s: float
    close_time_s: float
    total_time_s: float
    data_moved_bytes: int
    n_ops: int


@dataclass(slots=True)
class IORRunResult:
    """Everything one IOR invocation produced."""

    config: IORConfig
    num_nodes: int
    tasks_per_node: int
    results: list[IOROperationResult] = field(default_factory=list)
    start_offset_s: float = 0.0
    end_offset_s: float = 0.0
    machine: str = ""
    fs_info: dict[str, object] = field(default_factory=dict)
    entryinfo: str = ""

    @property
    def num_tasks(self) -> int:
        """Total MPI tasks of the run."""
        return self.num_nodes * self.tasks_per_node

    @property
    def command(self) -> str:
        """The equivalent command line."""
        return self.config.to_command()

    def operation_results(self, operation: str) -> list[IOROperationResult]:
        """Per-iteration rows of one operation, in iteration order."""
        return sorted(
            (r for r in self.results if r.operation == operation),
            key=lambda r: r.iteration,
        )

    def bandwidth_summary(self, operation: str) -> Summary:
        """Max/min/mean/stddev bandwidth over iterations (IOR summary)."""
        rows = self.operation_results(operation)
        if not rows:
            raise BenchmarkError(f"no {operation} results in this run")
        return summarize([r.bandwidth_mib for r in rows])

    def iops_summary(self, operation: str) -> Summary:
        """Max/min/mean/stddev operation rate over iterations."""
        rows = self.operation_results(operation)
        if not rows:
            raise BenchmarkError(f"no {operation} results in this run")
        return summarize([r.iops for r in rows])

    def operations(self) -> list[str]:
        """Operations present in the run, write before read."""
        present = {r.operation for r in self.results}
        return [op for op in ("write", "read") if op in present]


def _open_file(
    layer: PosixLayer | MPIIOLayer | HDF5Layer,
    path: str,
    rank: int,
    pctx,
    now: float,
    create: bool,
    shared: bool,
) -> tuple[PosixFile | MPIIOFile | HDF5File, float]:
    if isinstance(layer, PosixLayer):
        if create:
            return layer.open_shared(path, rank, pctx, now)
        return layer.open(path, rank, pctx, now)
    return layer.open(path, rank, pctx, now, create=create, shared_file=shared)


def _close_file(handle, now: float, pctx) -> float:
    if isinstance(handle, HDF5File):
        return handle.close(now, pctx)
    return handle.close(now)


def _fsync_file(handle, now: float) -> float:
    if isinstance(handle, PosixFile):
        return handle.fsync(now)
    if isinstance(handle, MPIIOFile):
        return handle.sync(now)
    return handle.flush(now)


def _run_phase(
    ctx: IOJobContext,
    config: IORConfig,
    layer: PosixLayer | MPIIOLayer | HDF5Layer,
    iteration: int,
    operation: str,
    run_id: int,
    extra_tags: dict[str, object] | None = None,
) -> IOROperationResult:
    comm = ctx.comm
    fs = ctx.fs
    tags = {
        "benchmark": "ior",
        "run": run_id,
        "iteration": iteration,
        "op": operation,
        **(extra_tags or {}),
    }
    # Hard faults fire at the phase boundary: a matching fault with a
    # fail_probability aborts this iteration with a typed, possibly
    # transient error (the resilience layer decides whether to retry).
    fs.faults.maybe_raise(tags)
    access = "write" if operation == "write" else "read"
    pctx = ctx.phase_ctx(
        access,
        shared_file=config.shared_file,
        collective=config.collective,
        fsync=config.fsync and access == "write",
        random_access=config.random_offsets,
        tags=tags,
    )
    # One systemic noise factor per phase: the state of the shared
    # storage system during this iteration (what makes Fig. 5 vary).
    phase_factor = fs.model.phase_noise_factor(pctx)

    t0 = comm.barrier()
    open_times = np.zeros(comm.size)
    io_times = np.zeros(comm.size)
    close_times = np.zeros(comm.size)
    ops_done = np.zeros(comm.size, dtype=int)
    n_ops_per_task = config.transfers_per_task
    deadline = config.stonewall_seconds

    for rank in comm.ranks():
        now = comm.now(rank)
        path = config.file_for_rank(rank)
        if access == "read" and not fs.namespace.exists(path):
            raise BenchmarkError(
                f"read phase: test file {path!r} does not exist "
                "(run a write phase first or drop -r)"
            )
        handle, dt_open = _open_file(
            layer, path, rank, pctx, now, create=(access == "write"), shared=config.shared_file
        )
        dt_open *= phase_factor
        now += dt_open

        if config.shared_file:
            # Segmented layout: rank r accesses block r of every segment.
            handle_pos = rank * config.block_size
            _seek(handle, handle_pos)
        durations = _io_many(handle, operation, config, pctx, now) * phase_factor
        if deadline > 0:
            # Stonewalling (-D): each task stops issuing transfers once
            # the deadline passes.  (The namespace may briefly over-
            # account the file size; the post-phase fixup below corrects
            # shared files, and per-process files only matter for
            # subsequent reads, which stonewall the same way.)
            cumulative = np.cumsum(durations)
            n_done = int(np.searchsorted(cumulative, deadline, side="right"))
            durations = durations[: max(1, n_done)]
        ops_done[rank] = len(durations)
        dt_io = float(durations.sum())
        now += dt_io
        if config.fsync and access == "write":
            dt_fsync = _fsync_file(handle, now) * phase_factor
            dt_io += dt_fsync
            now += dt_fsync
        dt_close = _close_file(handle, now, pctx) * phase_factor

        open_times[rank] = dt_open
        io_times[rank] = dt_io
        close_times[rank] = dt_close
        comm.advance(rank, dt_open + dt_io + dt_close)

    comm.barrier()
    if config.shared_file and access == "write":
        # The segmented N-to-1 layout interleaves every rank's blocks,
        # so the file covers the full aggregate extent after the phase
        # (each rank's handle only tracked its own strided slice).
        entry = fs.namespace.lookup_file(config.test_file)
        entry.extend_to(config.aggregate_bytes(comm.size))
    total = comm.max_time() - t0
    n_ops_total = int(ops_done.sum())
    data_moved = n_ops_total * config.transfer_size
    io_time = float(io_times.max())
    return IOROperationResult(
        operation=operation,
        iteration=iteration,
        bandwidth_mib=data_moved / MIB / total,
        iops=n_ops_total / io_time,
        latency_s=io_time / max(1, int(ops_done.max())),
        open_time_s=float(open_times.max()),
        io_time_s=io_time,
        close_time_s=float(close_times.max()),
        total_time_s=total,
        data_moved_bytes=data_moved,
        n_ops=n_ops_total,
    )


def _seek(handle, offset: int) -> None:
    if isinstance(handle, PosixFile):
        handle.seek(offset)
    elif isinstance(handle, MPIIOFile):
        handle.posix.seek(offset)
    else:
        handle.mpiio.posix.seek(offset)


def _io_many(handle, operation: str, config: IORConfig, pctx, now: float) -> np.ndarray:
    n_ops = config.transfers_per_task
    if isinstance(handle, PosixFile):
        return handle.io_many(operation, config.transfer_size, n_ops, pctx, now)
    return handle.io_many(
        operation, config.transfer_size, n_ops, pctx, now, collective=config.collective
    )


def run_ior_in_job(
    config: IORConfig,
    ctx: IOJobContext,
    run_id: int = 0,
    extra_tags: dict[str, object] | None = None,
) -> IORRunResult:
    """Run IOR inside an existing job allocation (used by IO500)."""
    fs = ctx.fs
    fs.makedirs(posixpath.dirname(config.test_file))
    layer = ctx.layer(config.api, config.hints)
    result = IORRunResult(
        config=config,
        num_nodes=ctx.num_nodes,
        tasks_per_node=ctx.tasks_per_node,
        machine=ctx.testbed.cluster.name,
        start_offset_s=ctx.comm.max_time(),
    )
    for iteration in range(config.iterations):
        if config.write_file:
            result.results.append(
                _run_phase(ctx, config, layer, iteration, "write", run_id, extra_tags)
            )
        if config.read_file:
            result.results.append(
                _run_phase(ctx, config, layer, iteration, "read", run_id, extra_tags)
            )
        if not config.keep_file:
            # IOR removes the data set after each repetition unless -k.
            _remove_test_files(ctx, config)
    result.end_offset_s = ctx.comm.max_time()
    first_file = config.file_for_rank(0)
    if fs.namespace.exists(first_file):
        result.entryinfo = fs.getentryinfo(first_file)
    result.fs_info = fs.df()
    return result


def _remove_test_files(ctx: IOJobContext, config: IORConfig) -> None:
    wctx = ctx.phase_ctx("write", tags={"benchmark": "ior", "op": "cleanup"})
    fs = ctx.fs
    if config.shared_file:
        if fs.namespace.exists(config.test_file):
            dt = fs.unlink(config.test_file, wctx)
            ctx.comm.advance(0, dt)
    else:
        for rank in ctx.comm.ranks():
            path = config.file_for_rank(rank)
            if fs.namespace.exists(path):
                ctx.comm.advance(rank, fs.unlink(path, wctx))


def run_ior(
    config: IORConfig,
    testbed: Testbed,
    num_nodes: int = 4,
    tasks_per_node: int = 20,
    run_id: int = 0,
    tracer: Tracer | None = None,
) -> IORRunResult:
    """Run one IOR invocation as its own exclusive batch job.

    This is the §V-E1 entry point: the paper's example command on four
    FUCHS-CSC nodes is
    ``run_ior(parse_command("ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/test80 -k"), testbed)``.
    """
    ctx = testbed.start_job("ior", num_nodes, tasks_per_node, tracer=tracer)
    try:
        result = run_ior_in_job(config, ctx, run_id=run_id)
    finally:
        testbed.finish_job(ctx)
    return result
