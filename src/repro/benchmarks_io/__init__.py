"""Community I/O benchmarks reimplemented on the simulated stack.

The paper's generation phase (§V-A) uses IOR, IO500, HACC-IO and
Darshan-instrumented applications; each has a faithful implementation
here that produces output in the corresponding tool's text format.
"""

from repro.benchmarks_io.hacc_io import HaccIOConfig, HaccIOResult, run_hacc_io
from repro.benchmarks_io.io500 import IO500Config, IO500Result, run_io500
from repro.benchmarks_io.ior import IORConfig, IORRunResult, parse_command, run_ior
from repro.benchmarks_io.mdtest import MdtestConfig, MdtestResult, run_mdtest

__all__ = [
    "IORConfig",
    "IORRunResult",
    "run_ior",
    "parse_command",
    "IO500Config",
    "IO500Result",
    "run_io500",
    "MdtestConfig",
    "MdtestResult",
    "run_mdtest",
    "HaccIOConfig",
    "HaccIOResult",
    "run_hacc_io",
]
