"""Interconnect (fabric) model.

The fabric contributes two terms to the I/O cost model: a per-message
latency and a bandwidth ceiling.  Both a per-node injection limit (the
NIC) and an aggregate fabric limit (uplinks / switch capacity between
the compute and storage sides) are modelled; either can be the
bottleneck depending on how many nodes participate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError

__all__ = ["InterconnectSpec", "Interconnect"]


@dataclass(frozen=True, slots=True)
class InterconnectSpec:
    """Static description of the cluster fabric."""

    name: str = "InfiniBand FDR"
    link_bandwidth_bps: float = 6.8e9  # per-node injection bandwidth
    aggregate_bandwidth_bps: float = 27e9  # compute<->storage section capacity
    latency_s: float = 1.5e-6

    def __post_init__(self) -> None:
        if self.link_bandwidth_bps <= 0 or self.aggregate_bandwidth_bps <= 0:
            raise ConfigurationError("interconnect bandwidths must be positive")
        if self.latency_s < 0:
            raise ConfigurationError("interconnect latency must be >= 0")


class Interconnect:
    """Runtime fabric object answering bandwidth-ceiling queries."""

    def __init__(self, spec: InterconnectSpec | None = None) -> None:
        self.spec = spec or InterconnectSpec()

    def injection_ceiling_bps(self, node_factors: list[float]) -> float:
        """Aggregate injection capacity of the given participating nodes.

        ``node_factors`` are the per-node health factors; a degraded
        node injects proportionally less.
        """
        if not node_factors:
            raise ConfigurationError("at least one node must participate")
        per_node = self.spec.link_bandwidth_bps
        return sum(per_node * f for f in node_factors)

    def fabric_ceiling_bps(self) -> float:
        """Section capacity between compute nodes and storage servers."""
        return self.spec.aggregate_bandwidth_bps

    def message_latency_s(self, nhops: int = 1) -> float:
        """Latency of one fabric traversal (``nhops`` switch hops)."""
        if nhops < 1:
            raise ConfigurationError(f"nhops must be >= 1, got {nhops}")
        return self.spec.latency_s * nhops
