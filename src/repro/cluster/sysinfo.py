"""System-information collection (the extractor's ``/proc`` consumer).

Parses the ``/proc/cpuinfo`` / ``/proc/meminfo`` text rendered by
:mod:`repro.cluster.procfs` into the structured ``SystemInfo`` record
that becomes part of every knowledge object (§V-B: "processor cores,
processor architecture, processor frequency, but also the cache and
memory sizes ... from /proc/").
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass

from repro.cluster.machine import Cluster
from repro.cluster.procfs import ProcFS
from repro.util.errors import ExtractionError
from repro.util.units import KIB

__all__ = ["SystemInfo", "parse_cpuinfo", "parse_meminfo", "collect_system_info"]


@dataclass(frozen=True, slots=True)
class SystemInfo:
    """Host attributes stored alongside each knowledge object."""

    hostname: str
    system_name: str
    processor_model: str
    architecture: str
    processor_cores: int
    processor_mhz: float
    cache_size_bytes: int
    memory_bytes: int

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form used by persistence."""
        return asdict(self)


def parse_cpuinfo(text: str) -> dict[str, object]:
    """Parse ``/proc/cpuinfo`` text into model/cores/frequency/cache.

    Counts ``processor`` stanzas for the logical core count and takes
    the model/frequency/cache from the first stanza, exactly as simple
    field-scanning extractors do.
    """
    processors = re.findall(r"^processor\s*:\s*(\d+)", text, re.MULTILINE)
    if not processors:
        raise ExtractionError("no 'processor' stanzas found in cpuinfo text")
    model = re.search(r"^model name\s*:\s*(.+)$", text, re.MULTILINE)
    mhz = re.search(r"^cpu MHz\s*:\s*([0-9.]+)", text, re.MULTILINE)
    cache = re.search(r"^cache size\s*:\s*(\d+)\s*KB", text, re.MULTILINE)
    return {
        "processor_cores": len(processors),
        "processor_model": model.group(1).strip() if model else "unknown",
        "processor_mhz": float(mhz.group(1)) if mhz else 0.0,
        "cache_size_bytes": int(cache.group(1)) * KIB if cache else 0,
    }


def parse_meminfo(text: str) -> dict[str, object]:
    """Parse ``/proc/meminfo`` text; returns ``memory_bytes`` (MemTotal)."""
    m = re.search(r"^MemTotal:\s*(\d+)\s*kB", text, re.MULTILINE)
    if not m:
        raise ExtractionError("MemTotal not found in meminfo text")
    return {"memory_bytes": int(m.group(1)) * KIB}


def collect_system_info(cluster: Cluster, node_index: int = 0) -> SystemInfo:
    """Collect a :class:`SystemInfo` for one node of a cluster.

    Runs the full text round trip — render ``/proc`` files, parse them
    back — so the collected values go through the same parser real
    ``/proc`` output would.
    """
    node = cluster.node(node_index)
    proc = ProcFS(node.spec)
    cpu = parse_cpuinfo(proc.read("/proc/cpuinfo"))
    mem = parse_meminfo(proc.read("/proc/meminfo"))
    return SystemInfo(
        hostname=node.hostname,
        system_name=cluster.name,
        processor_model=str(cpu["processor_model"]),
        architecture=node.spec.cpu.architecture,
        processor_cores=int(cpu["processor_cores"]),  # type: ignore[arg-type]
        processor_mhz=float(cpu["processor_mhz"]),  # type: ignore[arg-type]
        cache_size_bytes=int(cpu["cache_size_bytes"]),  # type: ignore[arg-type]
        memory_bytes=int(mem["memory_bytes"]),  # type: ignore[arg-type]
    )
