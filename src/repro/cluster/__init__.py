"""Simulated HPC cluster: nodes, fabric, Slurm-like resource manager, /proc.

Substitutes for the FUCHS-CSC cluster used in the paper's evaluation.
"""

from repro.cluster.interconnect import Interconnect, InterconnectSpec
from repro.cluster.machine import FUCHS_CSC, Cluster, ClusterSpec, make_cluster
from repro.cluster.node import CPUSpec, Node, NodeSpec
from repro.cluster.slurm import Allocation, Job, JobRequest, JobState, SlurmManager
from repro.cluster.sysinfo import SystemInfo, collect_system_info

__all__ = [
    "CPUSpec",
    "NodeSpec",
    "Node",
    "InterconnectSpec",
    "Interconnect",
    "ClusterSpec",
    "Cluster",
    "FUCHS_CSC",
    "make_cluster",
    "JobRequest",
    "JobState",
    "Job",
    "Allocation",
    "SlurmManager",
    "SystemInfo",
    "collect_system_info",
]
