"""``/proc``-style text provider for the simulated nodes.

The paper's extractor reads processor cores, architecture, frequency,
cache and memory sizes from ``/proc`` (§V-B).  To exercise exactly that
code path, the simulator renders authentic-looking ``/proc/cpuinfo``
and ``/proc/meminfo`` text for any node, and the Phase-II extractor
parses it back.
"""

from __future__ import annotations

from repro.cluster.node import NodeSpec
from repro.util.units import KIB

__all__ = ["render_cpuinfo", "render_meminfo", "ProcFS"]


def render_cpuinfo(spec: NodeSpec) -> str:
    """Render ``/proc/cpuinfo`` for a node: one stanza per logical CPU."""
    stanzas = []
    total = spec.cores
    per_socket = spec.cpu.cores
    for proc in range(total):
        socket = proc // per_socket
        core = proc % per_socket
        stanzas.append(
            "\n".join(
                [
                    f"processor\t: {proc}",
                    "vendor_id\t: GenuineIntel",
                    f"model name\t: {spec.cpu.model_name}",
                    f"cpu MHz\t\t: {spec.cpu.frequency_mhz:.3f}",
                    f"cache size\t: {spec.cpu.cache_size_bytes // KIB} KB",
                    f"physical id\t: {socket}",
                    f"core id\t\t: {core}",
                    f"cpu cores\t: {per_socket}",
                    "flags\t\t: fpu vme de pse tsc msr pae mce sse sse2 avx",
                ]
            )
        )
    return "\n\n".join(stanzas) + "\n"


def render_meminfo(spec: NodeSpec) -> str:
    """Render ``/proc/meminfo`` with the totals the extractor reads."""
    total_kib = spec.memory_kib
    free_kib = int(total_kib * 0.92)
    cached_kib = int(total_kib * 0.05)
    return (
        f"MemTotal:       {total_kib} kB\n"
        f"MemFree:        {free_kib} kB\n"
        f"MemAvailable:   {free_kib + cached_kib} kB\n"
        f"Cached:         {cached_kib} kB\n"
        f"SwapTotal:      0 kB\n"
        f"SwapFree:       0 kB\n"
    )


class ProcFS:
    """Per-node ``/proc`` façade keyed by path, like a tiny read-only VFS."""

    def __init__(self, spec: NodeSpec) -> None:
        self.spec = spec

    def read(self, path: str) -> str:
        """Return the text of a supported ``/proc`` file.

        Raises:
            FileNotFoundError: for paths the provider does not model,
                mirroring what a real ``open()`` would raise.
        """
        if path == "/proc/cpuinfo":
            return render_cpuinfo(self.spec)
        if path == "/proc/meminfo":
            return render_meminfo(self.spec)
        raise FileNotFoundError(path)
