"""Compute-node and CPU models for the simulated cluster.

A :class:`NodeSpec` captures exactly the hardware attributes the paper's
knowledge extractor collects from ``/proc`` — processor model, core
count, frequency, cache and memory sizes — plus the NIC bandwidth the
performance model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ConfigurationError
from repro.util.units import GIB, KIB, MIB

__all__ = ["CPUSpec", "NodeSpec", "NodeState", "Node"]


@dataclass(frozen=True, slots=True)
class CPUSpec:
    """One CPU socket, as it would appear in ``/proc/cpuinfo``."""

    model_name: str = "Intel(R) Xeon(R) CPU E5-2670 v2 @ 2.50GHz"
    architecture: str = "x86_64"
    cores: int = 10
    frequency_mhz: float = 2500.0
    cache_size_bytes: int = 25 * MIB  # L3, reported by /proc/cpuinfo as "cache size"

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"CPU must have >= 1 core, got {self.cores}")
        if self.frequency_mhz <= 0:
            raise ConfigurationError(f"CPU frequency must be positive, got {self.frequency_mhz}")


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """Hardware description of one compute node."""

    name_prefix: str = "node"
    sockets: int = 2
    cpu: CPUSpec = field(default_factory=CPUSpec)
    memory_bytes: int = 128 * GIB
    nic_bandwidth_bps: float = 6.8e9  # InfiniBand FDR 4x effective data rate
    nic_latency_s: float = 1.5e-6

    def __post_init__(self) -> None:
        if self.sockets <= 0:
            raise ConfigurationError(f"node must have >= 1 socket, got {self.sockets}")
        if self.memory_bytes <= 0:
            raise ConfigurationError("node memory must be positive")
        if self.nic_bandwidth_bps <= 0:
            raise ConfigurationError("NIC bandwidth must be positive")

    @property
    def cores(self) -> int:
        """Total cores on the node (sockets x cores-per-socket)."""
        return self.sockets * self.cpu.cores

    @property
    def memory_kib(self) -> int:
        """Memory in KiB, the unit ``/proc/meminfo`` reports."""
        return self.memory_bytes // KIB


class NodeState:
    """Health states a node can be in (Slurm-style)."""

    IDLE = "idle"
    ALLOCATED = "allocated"
    DOWN = "down"
    DEGRADED = "degraded"


@dataclass(slots=True)
class Node:
    """A concrete node instance: spec + identity + mutable health state.

    ``performance_factor`` scales the node's effective NIC bandwidth;
    the fault-injection layer lowers it to model a "broken node" as in
    the paper's Fig. 6 discussion.
    """

    index: int
    spec: NodeSpec
    state: str = NodeState.IDLE
    performance_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError(f"node index must be >= 0, got {self.index}")
        if not 0 < self.performance_factor <= 1.0:
            raise ConfigurationError(
                f"performance factor must be in (0, 1], got {self.performance_factor}"
            )

    @property
    def hostname(self) -> str:
        """Cluster-style hostname, e.g. ``node0042``."""
        return f"{self.spec.name_prefix}{self.index:04d}"

    @property
    def effective_nic_bandwidth_bps(self) -> float:
        """NIC bandwidth after applying the health factor."""
        return self.spec.nic_bandwidth_bps * self.performance_factor

    def degrade(self, factor: float) -> None:
        """Put the node into the degraded state with the given slowdown."""
        if not 0 < factor < 1.0:
            raise ConfigurationError(f"degrade factor must be in (0, 1), got {factor}")
        self.performance_factor = factor
        self.state = NodeState.DEGRADED

    def restore(self) -> None:
        """Return the node to full health."""
        self.performance_factor = 1.0
        if self.state == NodeState.DEGRADED:
            self.state = NodeState.IDLE
