"""Slurm-like resource manager.

The paper's workflow runs benchmarks as exclusive batch jobs submitted
through Slurm.  This module models the parts the knowledge cycle
touches: partitions, job submission with node/task counts, exclusive
allocations, job states, and the allocation metadata (job id, node
list, tasks per node) that ends up in the knowledge object.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.cluster.machine import Cluster
from repro.util.errors import AllocationError, ConfigurationError

__all__ = ["JobState", "JobRequest", "Allocation", "Job", "SlurmManager", "Partition"]


class JobState:
    """Subset of Slurm job states the workflow observes."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"


@dataclass(frozen=True, slots=True)
class JobRequest:
    """An ``sbatch``-style resource request."""

    name: str
    num_nodes: int
    tasks_per_node: int
    partition: str = "parallel"
    exclusive: bool = True
    time_limit_s: float = 86400.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError(f"jobs need >= 1 node, got {self.num_nodes}")
        if self.tasks_per_node <= 0:
            raise ConfigurationError(f"jobs need >= 1 task/node, got {self.tasks_per_node}")
        if self.time_limit_s <= 0:
            raise ConfigurationError("time limit must be positive")

    @property
    def total_tasks(self) -> int:
        """Total MPI tasks the job will launch."""
        return self.num_nodes * self.tasks_per_node


@dataclass(frozen=True, slots=True)
class Allocation:
    """The node set granted to a running job."""

    job_id: int
    node_indices: tuple[int, ...]
    tasks_per_node: int

    @property
    def num_nodes(self) -> int:
        """Number of allocated nodes."""
        return len(self.node_indices)

    @property
    def total_tasks(self) -> int:
        """Total tasks across the allocation."""
        return self.num_nodes * self.tasks_per_node

    def rank_to_node(self, rank: int) -> int:
        """Map an MPI rank to its node index (block distribution).

        Ranks are packed node by node, matching the default Slurm/MPI
        block distribution: ranks ``0..tpn-1`` on the first node, etc.
        """
        if not 0 <= rank < self.total_tasks:
            raise ConfigurationError(f"rank {rank} out of range 0..{self.total_tasks - 1}")
        return self.node_indices[rank // self.tasks_per_node]


@dataclass(slots=True)
class Job:
    """A submitted job with lifecycle state."""

    job_id: int
    request: JobRequest
    state: str = JobState.PENDING
    allocation: Allocation | None = None
    submit_time: float = 0.0
    start_time: float | None = None
    end_time: float | None = None

    @property
    def elapsed_s(self) -> float | None:
        """Wall time of the job once it has finished."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time


@dataclass(frozen=True, slots=True)
class Partition:
    """A named slice of the cluster's nodes."""

    name: str
    node_indices: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.node_indices:
            raise ConfigurationError(f"partition {self.name!r} has no nodes")


class SlurmManager:
    """Allocates exclusive node sets to batch jobs, first-fit.

    The simulator does not queue jobs over time — benchmark runs are
    bulk-synchronous and sequential in the workflow — but it enforces
    exclusivity: two running jobs never share a node, and requests that
    cannot be satisfied raise :class:`AllocationError` (what a user
    would see as a pending-forever job).
    """

    def __init__(self, cluster: Cluster, partitions: list[Partition] | None = None) -> None:
        self.cluster = cluster
        all_nodes = tuple(range(len(cluster.nodes)))
        self.partitions: dict[str, Partition] = {
            p.name: p for p in (partitions or [Partition("parallel", all_nodes)])
        }
        self._job_counter = itertools.count(1000)
        self.jobs: dict[int, Job] = {}
        self._busy: set[int] = set()
        self._clock = 0.0

    def submit(self, request: JobRequest) -> Job:
        """Submit and immediately try to start a job (exclusive nodes)."""
        part = self.partitions.get(request.partition)
        if part is None:
            raise AllocationError(
                f"unknown partition {request.partition!r}; available: {sorted(self.partitions)}"
            )
        if request.tasks_per_node > self.cluster.spec.node.cores:
            raise AllocationError(
                f"{request.tasks_per_node} tasks/node exceed the "
                f"{self.cluster.spec.node.cores} cores available per node"
            )
        job = Job(job_id=next(self._job_counter), request=request, submit_time=self._clock)
        self.jobs[job.job_id] = job
        free = [
            i
            for i in part.node_indices
            if i not in self._busy and self.cluster.node(i).state != "down"
        ]
        if len(free) < request.num_nodes:
            job.state = JobState.PENDING
            raise AllocationError(
                f"job {job.job_id}: requested {request.num_nodes} nodes but only "
                f"{len(free)} free in partition {request.partition!r}"
            )
        chosen = tuple(free[: request.num_nodes])
        self._busy.update(chosen)
        job.allocation = Allocation(
            job_id=job.job_id, node_indices=chosen, tasks_per_node=request.tasks_per_node
        )
        job.state = JobState.RUNNING
        job.start_time = self._clock
        for i in chosen:
            self.cluster.node(i).state = "allocated"
        return job

    def complete(self, job: Job, elapsed_s: float, failed: bool = False) -> None:
        """Mark a running job finished and release its nodes."""
        if job.state != JobState.RUNNING or job.allocation is None:
            raise AllocationError(f"job {job.job_id} is not running (state={job.state})")
        if elapsed_s < 0:
            raise ConfigurationError("elapsed time must be >= 0")
        self._clock = max(self._clock, (job.start_time or 0.0) + elapsed_s)
        job.end_time = (job.start_time or 0.0) + elapsed_s
        job.state = JobState.FAILED if failed else JobState.COMPLETED
        for i in job.allocation.node_indices:
            self._busy.discard(i)
            node = self.cluster.node(i)
            if node.state == "allocated":
                node.state = "idle"

    def squeue(self) -> list[Job]:
        """Jobs currently running (what ``squeue`` would print)."""
        return [j for j in self.jobs.values() if j.state == JobState.RUNNING]

    def sacct(self) -> list[Job]:
        """All jobs in submission order (accounting view)."""
        return sorted(self.jobs.values(), key=lambda j: j.job_id)
