"""Whole-cluster model and named machine presets.

:data:`FUCHS_CSC` reproduces the evaluation system of the paper
(§V-E): 198 nodes with 2x Intel Xeon E5-2670 v2 (20 cores/node,
3960 cores total), 128 GB RAM per node, BeeGFS reachable over
InfiniBand FDR with ~27 GB/s aggregate bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.interconnect import Interconnect, InterconnectSpec
from repro.cluster.node import Node, NodeSpec
from repro.util.errors import ConfigurationError

__all__ = ["ClusterSpec", "Cluster", "FUCHS_CSC", "make_cluster", "PRESETS"]


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """Static description of a cluster: homogeneous nodes + fabric."""

    name: str
    num_nodes: int
    node: NodeSpec = field(default_factory=NodeSpec)
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)
    scheduler: str = "slurm"

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError(f"cluster must have >= 1 node, got {self.num_nodes}")

    @property
    def total_cores(self) -> int:
        """Total cores across all nodes."""
        return self.num_nodes * self.node.cores


class Cluster:
    """Runtime cluster: instantiated nodes plus the fabric object."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.nodes: list[Node] = [Node(index=i, spec=spec.node) for i in range(spec.num_nodes)]
        self.interconnect = Interconnect(spec.interconnect)

    @property
    def name(self) -> str:
        """Cluster name (e.g. ``'FUCHS-CSC'``)."""
        return self.spec.name

    def node(self, index: int) -> Node:
        """Return the node with the given index."""
        try:
            return self.nodes[index]
        except IndexError:
            raise ConfigurationError(
                f"node index {index} out of range for {self.spec.num_nodes}-node cluster"
            ) from None

    def healthy_nodes(self) -> list[Node]:
        """Nodes whose performance factor is 1.0 and state is not down."""
        return [n for n in self.nodes if n.performance_factor == 1.0 and n.state != "down"]

    def degrade_node(self, index: int, factor: float) -> None:
        """Degrade one node (broken-node anomaly of the paper's Fig. 6)."""
        self.node(index).degrade(factor)

    def restore_all(self) -> None:
        """Restore every node to full health."""
        for n in self.nodes:
            n.restore()


FUCHS_CSC = ClusterSpec(
    name="FUCHS-CSC",
    num_nodes=198,
    node=NodeSpec(
        name_prefix="fuchs",
        sockets=2,
        memory_bytes=128 * 1024**3,
        nic_bandwidth_bps=6.8e9,
    ),
    interconnect=InterconnectSpec(
        name="InfiniBand FDR",
        link_bandwidth_bps=6.8e9,
        aggregate_bandwidth_bps=27e9,
        latency_s=1.5e-6,
    ),
)

PRESETS: dict[str, ClusterSpec] = {"fuchs-csc": FUCHS_CSC}


def make_cluster(preset: str | ClusterSpec = "fuchs-csc") -> Cluster:
    """Instantiate a cluster from a preset name or an explicit spec."""
    if isinstance(preset, ClusterSpec):
        return Cluster(preset)
    try:
        return Cluster(PRESETS[preset.lower()])
    except KeyError:
        raise ConfigurationError(
            f"unknown cluster preset {preset!r}; available: {sorted(PRESETS)}"
        ) from None
