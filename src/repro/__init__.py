"""repro — a reproduction of "A Comprehensive I/O Knowledge Cycle for
Modular and Automated HPC Workload Analysis" (CLUSTER 2022).

The package has two halves:

* **Substrates** (:mod:`repro.cluster`, :mod:`repro.pfs`,
  :mod:`repro.mpi`, :mod:`repro.iostack`, :mod:`repro.darshan`,
  :mod:`repro.benchmarks_io`, :mod:`repro.jube`) — a simulated HPC
  system standing in for the paper's FUCHS-CSC cluster with BeeGFS, and
  from-scratch implementations of the community tools the workflow
  consumes (IOR, IO500, mdtest, HACC-IO, Darshan/PyDarshan, JUBE).
* **The knowledge cycle** (:mod:`repro.core`) — the paper's actual
  contribution: knowledge generation, extraction, persistence
  (SQLite), analysis (knowledge explorer) and usage (anomaly
  detection, bounding box, workload generation, recommendation,
  performance prediction).

Quickstart::

    from repro import Testbed, KnowledgeCycle, KnowledgeDatabase

    testbed = Testbed.fuchs_csc(seed=42)
    with KnowledgeDatabase("knowledge.db") as db:
        cycle = KnowledgeCycle(testbed, db, workspace="bench_run")
        result = cycle.run_cycle(jube_xml)
"""

from repro.core.cycle import CycleResult, KnowledgeCycle
from repro.core.knowledge import IO500Knowledge, Knowledge
from repro.core.persistence.backend import BatchedBackend, PersistenceBackend
from repro.core.persistence.database import KnowledgeDatabase
from repro.core.pipeline import (
    LoggingObserver,
    PhaseObserver,
    PhaseRegistry,
    TimingObserver,
)
from repro.iostack.stack import Testbed

__version__ = "1.1.0"

__all__ = [
    "Testbed",
    "KnowledgeCycle",
    "CycleResult",
    "Knowledge",
    "IO500Knowledge",
    "KnowledgeDatabase",
    "PersistenceBackend",
    "BatchedBackend",
    "PhaseRegistry",
    "PhaseObserver",
    "TimingObserver",
    "LoggingObserver",
    "__version__",
]
