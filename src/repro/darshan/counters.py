"""Darshan counter definitions.

A trimmed but faithful subset of the counters real Darshan records per
(module, rank, file) tuple: operation counts, byte totals, cumulative
timers, extent high-water marks and the access-size histogram bins.
The names match Darshan's so downstream analysis code reads naturally.
"""

from __future__ import annotations

from repro.util.errors import DarshanError

__all__ = [
    "SIZE_BINS",
    "size_bin_name",
    "counters_for_module",
    "POSIX_COUNTERS",
    "MPIIO_COUNTERS",
    "HDF5_COUNTERS",
    "MODULES",
]

#: Darshan's access-size histogram bin upper bounds (bytes).
SIZE_BINS = (
    (0, 100, "0_100"),
    (100, 1024, "100_1K"),
    (1024, 10 * 1024, "1K_10K"),
    (10 * 1024, 100 * 1024, "10K_100K"),
    (100 * 1024, 1024**2, "100K_1M"),
    (1024**2, 4 * 1024**2, "1M_4M"),
    (4 * 1024**2, 10 * 1024**2, "4M_10M"),
    (10 * 1024**2, 100 * 1024**2, "10M_100M"),
    (100 * 1024**2, 1024**3, "100M_1G"),
    (1024**3, float("inf"), "1G_PLUS"),
)


def size_bin_name(nbytes: int) -> str:
    """The histogram bin label an access of ``nbytes`` falls into."""
    if nbytes < 0:
        raise DarshanError(f"access size cannot be negative: {nbytes}")
    for low, high, name in SIZE_BINS:
        if low <= nbytes < high:
            return name
    raise DarshanError(f"no size bin for {nbytes}")  # pragma: no cover


def _common(prefix: str) -> list[str]:
    names = [
        f"{prefix}_OPENS",
        f"{prefix}_READS",
        f"{prefix}_WRITES",
        f"{prefix}_BYTES_READ",
        f"{prefix}_BYTES_WRITTEN",
        f"{prefix}_MAX_BYTE_READ",
        f"{prefix}_MAX_BYTE_WRITTEN",
        f"{prefix}_F_READ_TIME",
        f"{prefix}_F_WRITE_TIME",
        f"{prefix}_F_META_TIME",
    ]
    for _, _, bin_name in SIZE_BINS:
        names.append(f"{prefix}_SIZE_READ_{bin_name}")
        names.append(f"{prefix}_SIZE_WRITE_{bin_name}")
    return names


POSIX_COUNTERS: tuple[str, ...] = tuple(_common("POSIX") + ["POSIX_FSYNCS", "POSIX_STATS"])

MPIIO_COUNTERS: tuple[str, ...] = tuple(
    _common("MPIIO")
    + [
        "MPIIO_INDEP_READS",
        "MPIIO_INDEP_WRITES",
        "MPIIO_COLL_READS",
        "MPIIO_COLL_WRITES",
        "MPIIO_SYNCS",
    ]
)

HDF5_COUNTERS: tuple[str, ...] = tuple(_common("H5D"))

MODULES: dict[str, tuple[str, ...]] = {
    "POSIX": POSIX_COUNTERS,
    "MPIIO": MPIIO_COUNTERS,
    "HDF5": HDF5_COUNTERS,
}


def counters_for_module(module: str) -> tuple[str, ...]:
    """Counter name list of one module."""
    try:
        return MODULES[module]
    except KeyError:
        raise DarshanError(f"unknown Darshan module {module!r}; known: {sorted(MODULES)}") from None
