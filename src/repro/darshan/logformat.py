"""Darshan log file serialization.

Real Darshan writes a compressed binary log; this substrate writes a
gzip-compressed JSON container with a magic header, preserving the
properties the workflow relies on: logs are self-contained files on
disk, compressed, carry job metadata plus per-(module, rank, file)
counter records and optional DXT segments, and are read back through a
PyDarshan-like API (:mod:`repro.darshan.pydarshan`).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.darshan.profiler import DarshanLogData, DarshanRecord, DXTSegment
from repro.util.errors import DarshanError

__all__ = ["MAGIC", "write_log", "read_log", "default_log_name"]

MAGIC = "DARSHAN-REPRO/1"


def default_log_name(username: str, exe: str, jobid: int) -> str:
    """Darshan-style log file name ``<user>_<exe>_id<jobid>.darshan``."""
    base = Path(exe).name or "app"
    return f"{username}_{base}_id{jobid}.darshan"


def write_log(data: DarshanLogData, path: str | Path) -> Path:
    """Serialize a finalized log to ``path``; returns the path."""
    payload = {
        "magic": MAGIC,
        "job": data.job,
        "records": [
            {
                "module": r.module,
                "rank": r.rank,
                "path": r.path,
                "counters": r.counters,
                "dxt": [
                    [s.op, s.offset, s.length, s.start, s.end] for s in r.dxt_segments
                ],
            }
            for r in data.records
        ],
    }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with gzip.open(out, "wt", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return out


def read_log(path: str | Path) -> DarshanLogData:
    """Deserialize a log written by :func:`write_log`."""
    p = Path(path)
    if not p.exists():
        raise DarshanError(f"darshan log not found: {p}")
    try:
        with gzip.open(p, "rt", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, EOFError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise DarshanError(f"cannot read darshan log {p}: {exc}") from exc
    if payload.get("magic") != MAGIC:
        raise DarshanError(f"{p} is not a {MAGIC} log (magic={payload.get('magic')!r})")
    records = [
        DarshanRecord(
            module=r["module"],
            rank=int(r["rank"]),
            path=r["path"],
            counters={k: float(v) for k, v in r["counters"].items()},
            dxt_segments=[
                DXTSegment(op=s[0], offset=int(s[1]), length=int(s[2]), start=float(s[3]), end=float(s[4]))
                for s in r.get("dxt", [])
            ],
        )
        for r in payload["records"]
    ]
    return DarshanLogData(job=payload["job"], records=records)
