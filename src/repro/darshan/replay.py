"""DXT trace replay — driving the simulation with recorded workloads.

§IV (workload generation): knowledge can "generate ... synthetic
workload for simulation and thus drive the simulation or initialize new
evaluation processes."  Where :mod:`repro.core.usage.synthetic`
approximates a pattern with an IOR configuration, this module replays a
DXT trace *exactly* — every recorded operation with its original size,
offset, file and rank — against a (possibly different) testbed, and
reports original vs. replayed timing per rank.

That enables the what-if studies the paper motivates: replay a
production trace against a testbed with different striping, more
storage targets, or an injected fault, without the producing
application.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.darshan.pydarshan import DarshanReport
from repro.iostack.stack import IOJobContext
from repro.util.errors import DarshanError

__all__ = ["RankReplayResult", "ReplayResult", "replay_trace"]


@dataclass(frozen=True, slots=True)
class RankReplayResult:
    """Replay outcome of one rank."""

    rank: int
    n_ops: int
    bytes_moved: int
    original_time_s: float
    replayed_time_s: float

    @property
    def speedup(self) -> float:
        """Original busy time over replayed busy time (>1 = faster here)."""
        if self.replayed_time_s <= 0:
            raise DarshanError("replayed time must be positive")
        return self.original_time_s / self.replayed_time_s


@dataclass(slots=True)
class ReplayResult:
    """Whole-trace replay outcome."""

    ranks: list[RankReplayResult]

    @property
    def total_bytes(self) -> int:
        """Bytes moved across all ranks."""
        return sum(r.bytes_moved for r in self.ranks)

    @property
    def original_makespan_s(self) -> float:
        """Slowest rank's original busy time."""
        return max((r.original_time_s for r in self.ranks), default=0.0)

    @property
    def replayed_makespan_s(self) -> float:
        """Slowest rank's replayed busy time."""
        return max((r.replayed_time_s for r in self.ranks), default=0.0)

    @property
    def speedup(self) -> float:
        """Makespan speedup of the replay target vs. the original system."""
        if self.replayed_makespan_s <= 0:
            raise DarshanError("replayed makespan must be positive")
        return self.original_makespan_s / self.replayed_makespan_s


def replay_trace(
    report: DarshanReport,
    ctx: IOJobContext,
    module: str = "POSIX",
    base_dir: str = "/scratch/replay",
    run_id: int = 0,
) -> ReplayResult:
    """Replay a DXT trace onto a job context.

    Every recorded (rank, file) stream is re-issued in timestamp order
    with the original sizes and offsets.  The replay job needs at least
    as many ranks as the trace; extra ranks idle.  Write segments create
    and extend files; read segments read back what the replayed writes
    produced (a read beyond replayed data reads the written extent —
    files are pre-extended to the trace's high-water mark so mixed
    traces replay cleanly).
    """
    segments = report.dxt_segments(module)
    if not segments:
        raise DarshanError("trace has no DXT segments; profile with enable_dxt=True")
    trace_ranks = sorted({rank for rank, _ in segments})
    if trace_ranks[-1] >= ctx.comm.size:
        raise DarshanError(
            f"trace has rank {trace_ranks[-1]} but the replay job only has "
            f"{ctx.comm.size} ranks"
        )
    fs = ctx.fs
    fs.makedirs(base_dir)

    # Pre-create every file at its high-water extent so reads always
    # land within EOF regardless of write/read interleaving.
    path_map: dict[str, str] = {}
    for (rank, orig_path), segs in segments.items():
        replay_path = path_map.get(orig_path)
        if replay_path is None:
            replay_path = f"{base_dir}/f{len(path_map):04d}"
            path_map[orig_path] = replay_path
        hwm = max(s.offset + s.length for s in segs)
        if fs.namespace.exists(replay_path):
            fs.namespace.lookup_file(replay_path).extend_to(hwm)
        else:
            entry, _ = fs.create(replay_path, None)
            entry.extend_to(hwm)

    tags = {"benchmark": "dxt-replay", "run": run_id}
    results = []
    for rank in trace_ranks:
        rank_segments = []
        for (seg_rank, orig_path), segs in segments.items():
            if seg_rank == rank:
                rank_segments.extend((s, path_map[orig_path]) for s in segs)
        rank_segments.sort(key=lambda pair: pair[0].start)

        original = sum(s.end - s.start for s, _ in rank_segments)
        replayed = 0.0
        moved = 0
        for seg, replay_path in rank_segments:
            entry = fs.namespace.lookup_file(replay_path)
            pctx = ctx.phase_ctx(
                "write" if seg.op == "write" else "read",
                shared_file=len(trace_ranks) > len(path_map),
                tags=tags,
            )
            if seg.op == "write":
                replayed += fs.write(entry, seg.offset, seg.length, pctx)
            else:
                replayed += fs.read(entry, seg.offset, seg.length, pctx)
            moved += seg.length
        ctx.comm.advance(rank, replayed)
        results.append(
            RankReplayResult(
                rank=rank,
                n_ops=len(rank_segments),
                bytes_moved=moved,
                original_time_s=original,
                replayed_time_s=replayed,
            )
        )
    ctx.comm.barrier()
    return ReplayResult(ranks=results)
