"""Darshan runtime instrumentation.

A :class:`DarshanProfiler` is a :class:`~repro.iostack.tracing.Tracer`:
attach it to a job context and every layer of the I/O stack reports its
operations here, exactly like real Darshan's link-time wrappers.  It
accumulates one counter record per (module, rank, file) and — when DXT
is enabled — per-operation segment traces, then finalizes everything
into an in-memory log that :mod:`repro.darshan.logformat` serializes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.darshan.counters import counters_for_module, size_bin_name
from repro.iostack.tracing import TraceEvent, Tracer
from repro.util.errors import DarshanError

__all__ = ["DXTSegment", "DarshanRecord", "DarshanLogData", "DarshanProfiler"]

_PREFIX = {"POSIX": "POSIX", "MPIIO": "MPIIO", "HDF5": "H5D"}

_META_OPS = ("open", "create", "close", "stat", "mkdir", "unlink", "fsync", "sync")


@dataclass(frozen=True, slots=True)
class DXTSegment:
    """One traced I/O operation (DXT extended tracing)."""

    op: str  # 'read' | 'write'
    offset: int
    length: int
    start: float
    end: float


@dataclass(slots=True)
class DarshanRecord:
    """Counters (and DXT segments) of one (module, rank, file)."""

    module: str
    rank: int
    path: str
    counters: dict[str, float] = field(default_factory=dict)
    dxt_segments: list[DXTSegment] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.counters:
            self.counters = {name: 0.0 for name in counters_for_module(self.module)}


@dataclass(slots=True)
class DarshanLogData:
    """A finalized in-memory Darshan log."""

    job: dict[str, object]
    records: list[DarshanRecord]

    def module_records(self, module: str) -> list[DarshanRecord]:
        """Records of one module."""
        return [r for r in self.records if r.module == module]

    def modules(self) -> list[str]:
        """Modules present in the log, sorted."""
        return sorted({r.module for r in self.records})


class DarshanProfiler(Tracer):
    """Tracer that builds Darshan counter records from stack events."""

    def __init__(self, enable_dxt: bool = False) -> None:
        self.enable_dxt = enable_dxt
        self._records: dict[tuple[str, int, str], DarshanRecord] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Tracer interface
    # ------------------------------------------------------------------
    def record(self, event: TraceEvent) -> None:
        """Fold one stack event into the counter record it belongs to."""
        if event.module not in _PREFIX:
            return  # other layers are not instrumented
        rec = self._get(event.module, event.rank, event.path)
        p = _PREFIX[event.module]
        op = event.op
        dt = event.duration * event.count
        if op in ("open", "create"):
            rec.counters[f"{p}_OPENS"] += event.count
            rec.counters[f"{p}_F_META_TIME"] += dt
            if op == "create" and event.module == "POSIX":
                pass  # creates count as opens, like Darshan
        elif op in ("read", "read_all"):
            self._data_op(rec, p, "READ", event)
            if event.module == "MPIIO":
                key = "MPIIO_COLL_READS" if op == "read_all" else "MPIIO_INDEP_READS"
                rec.counters[key] += event.count
        elif op in ("write", "write_all"):
            self._data_op(rec, p, "WRITE", event)
            if event.module == "MPIIO":
                key = "MPIIO_COLL_WRITES" if op == "write_all" else "MPIIO_INDEP_WRITES"
                rec.counters[key] += event.count
        elif op == "fsync" and event.module == "POSIX":
            rec.counters["POSIX_FSYNCS"] += event.count
            rec.counters[f"{p}_F_META_TIME"] += dt
        elif op == "sync" and event.module == "MPIIO":
            rec.counters["MPIIO_SYNCS"] += event.count
            rec.counters[f"{p}_F_META_TIME"] += dt
        elif op == "stat" and event.module == "POSIX":
            rec.counters["POSIX_STATS"] += event.count
            rec.counters[f"{p}_F_META_TIME"] += dt
        elif op in ("close", "mkdir", "unlink"):
            rec.counters[f"{p}_F_META_TIME"] += dt

    def record_batch(
        self,
        module: str,
        op: str,
        rank: int,
        path: str,
        offset0: int,
        nbytes: int,
        durations: np.ndarray,
        t0: float,
    ) -> None:
        """Vectorized fold of N identical sequential ops."""
        if module not in _PREFIX:
            return
        durations = np.asarray(durations, dtype=float)
        n = int(durations.size)
        total_time = float(durations.sum())
        rec = self._get(module, rank, path)
        p = _PREFIX[module]
        kind = "WRITE" if op.startswith("write") else "READ"
        rec.counters[f"{p}_{kind}S"] += n
        rec.counters[f"{p}_BYTES_{'WRITTEN' if kind == 'WRITE' else 'READ'}"] += n * nbytes
        rec.counters[f"{p}_F_{kind}_TIME"] += total_time
        hwm_key = f"{p}_MAX_BYTE_{'WRITTEN' if kind == 'WRITE' else 'READ'}"
        rec.counters[hwm_key] = max(rec.counters[hwm_key], offset0 + n * nbytes - 1)
        rec.counters[f"{p}_SIZE_{kind}_{size_bin_name(nbytes)}"] += n
        if module == "MPIIO":
            coll = op.endswith("_all")
            key = f"MPIIO_{'COLL' if coll else 'INDEP'}_{kind}S"
            rec.counters[key] += n
        if self.enable_dxt:
            ends = t0 + np.cumsum(durations)
            starts = ends - durations
            off = offset0
            for i in range(n):
                rec.dxt_segments.append(
                    DXTSegment(
                        op=kind.lower(),
                        offset=off,
                        length=nbytes,
                        start=float(starts[i]),
                        end=float(ends[i]),
                    )
                )
                off += nbytes

    # ------------------------------------------------------------------
    # helpers / finalization
    # ------------------------------------------------------------------
    def _get(self, module: str, rank: int, path: str) -> DarshanRecord:
        key = (module, rank, path)
        rec = self._records.get(key)
        if rec is None:
            rec = DarshanRecord(module=module, rank=rank, path=path)
            self._records[key] = rec
        return rec

    def _data_op(self, rec: DarshanRecord, prefix: str, kind: str, event: TraceEvent) -> None:
        rec.counters[f"{prefix}_{kind}S"] += event.count
        byte_key = f"{prefix}_BYTES_{'WRITTEN' if kind == 'WRITE' else 'READ'}"
        rec.counters[byte_key] += event.length * event.count
        rec.counters[f"{prefix}_F_{kind}_TIME"] += event.duration * event.count
        hwm_key = f"{prefix}_MAX_BYTE_{'WRITTEN' if kind == 'WRITE' else 'READ'}"
        end_byte = event.offset + event.length * event.count - 1
        rec.counters[hwm_key] = max(rec.counters[hwm_key], end_byte)
        if event.length:
            rec.counters[f"{prefix}_SIZE_{kind}_{size_bin_name(event.length)}"] += event.count
        if self.enable_dxt:
            rec.dxt_segments.append(
                DXTSegment(
                    op=kind.lower(),
                    offset=event.offset,
                    length=event.length,
                    start=event.start,
                    end=event.end,
                )
            )

    def finalize(
        self,
        exe: str,
        nprocs: int,
        start_offset_s: float,
        end_offset_s: float,
        uid: int = 1000,
        jobid: int = 0,
    ) -> DarshanLogData:
        """Freeze the accumulated records into a log data object."""
        if self._finalized:
            raise DarshanError("profiler already finalized")
        self._finalized = True
        job = {
            "uid": uid,
            "jobid": jobid,
            "exe": exe,
            "nprocs": nprocs,
            "start_time": start_offset_s,
            "end_time": end_offset_s,
            "dxt": self.enable_dxt,
        }
        records = sorted(
            self._records.values(), key=lambda r: (r.module, r.rank, r.path)
        )
        return DarshanLogData(job=job, records=records)
