"""Darshan-like I/O characterization: profiler, log format, PyDarshan reader, DXT."""

from repro.darshan.counters import MODULES, counters_for_module, size_bin_name
from repro.darshan.dxt import DXTAnalysis, analyze_dxt
from repro.darshan.layers import LayerBreakdown, layer_breakdown
from repro.darshan.logformat import default_log_name, read_log, write_log
from repro.darshan.profiler import DarshanLogData, DarshanProfiler, DarshanRecord, DXTSegment
from repro.darshan.pydarshan import DarshanReport
from repro.darshan.replay import RankReplayResult, ReplayResult, replay_trace

__all__ = [
    "DarshanProfiler",
    "DarshanRecord",
    "DarshanLogData",
    "DXTSegment",
    "DarshanReport",
    "ReplayResult",
    "RankReplayResult",
    "replay_trace",
    "DXTAnalysis",
    "analyze_dxt",
    "LayerBreakdown",
    "layer_breakdown",
    "write_log",
    "read_log",
    "default_log_name",
    "counters_for_module",
    "size_bin_name",
    "MODULES",
]
