"""Cross-layer correlation analysis (the SIOX idea of §II-A1).

SIOX collects "performance data from all abstraction levels" and
correlates it "to gain knowledge about system characteristics and
causal relationships".  Because the profiler instruments every stack
layer (POSIX, MPI-IO, HDF5) for the same operations, their counters can
be joined per file to decompose where time goes: raw device/file-system
time (POSIX) vs. middleware overhead (MPI-IO minus POSIX) vs. library
overhead (HDF5 minus MPI-IO).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.darshan.pydarshan import DarshanReport
from repro.util.errors import DarshanError
from repro.util.tables import render_table

__all__ = ["LayerBreakdown", "layer_breakdown"]

_PREFIX = {"POSIX": "POSIX", "MPIIO": "MPIIO", "HDF5": "H5D"}
_ORDER = ("POSIX", "MPIIO", "HDF5")


@dataclass(frozen=True, slots=True)
class LayerBreakdown:
    """Per-layer cumulative I/O times and derived overheads."""

    layer_times_s: dict[str, float]  # module -> Σ(read+write time)
    overheads_s: dict[str, float]  # 'mpiio-over-posix', 'software-over-posix'
    bytes_moved: int

    @property
    def posix_fraction(self) -> float:
        """Fraction of the top layer's time spent at the POSIX level.

        Close to 1.0 means the storage system dominates; the gap is
        software overhead above it.
        """
        top = max(
            (self.layer_times_s[m] for m in _ORDER if m in self.layer_times_s),
            default=0.0,
        )
        if top <= 0:
            raise DarshanError("breakdown has no I/O time")
        return self.layer_times_s.get("POSIX", 0.0) / top

    def render(self) -> str:
        """Monospace breakdown table."""
        rows = [
            [module, self.layer_times_s[module]]
            for module in _ORDER
            if module in self.layer_times_s
        ]
        text = render_table(["layer", "cumulative I/O time (s)"], rows, float_fmt=".4f")
        if self.overheads_s:
            overhead_rows = [[k, v] for k, v in sorted(self.overheads_s.items())]
            text += "\n" + render_table(
                ["overhead", "seconds"], overhead_rows, float_fmt=".4f"
            )
        return text


def layer_breakdown(report: DarshanReport) -> LayerBreakdown:
    """Correlate the layers of one instrumented run.

    Requires at least the POSIX module; overheads are computed for each
    consecutive instrumented pair actually present in the log.
    """
    if "POSIX" not in report.modules:
        raise DarshanError(
            f"layer breakdown needs the POSIX module; log has {report.modules}"
        )
    times: dict[str, float] = {}
    for module in _ORDER:
        if module not in report.modules:
            continue
        prefix = _PREFIX[module]
        c = report.counters(module)
        times[module] = c[f"{prefix}_F_READ_TIME"] + c[f"{prefix}_F_WRITE_TIME"]
    # Note the Darshan-faithful subtlety: the H5D module only counts
    # *dataset* operations — library metadata I/O (superblock, object
    # headers) surfaces in the MPI-IO/POSIX counters below, so the HDF5
    # figure can be smaller than MPI-IO's.  Overheads are therefore
    # computed against POSIX, the layer every byte passes through.
    overheads: dict[str, float] = {}
    if "MPIIO" in times:
        overheads["mpiio-over-posix"] = max(0.0, times["MPIIO"] - times["POSIX"])
    top = max(times.values())
    overheads["software-over-posix"] = max(0.0, top - times["POSIX"])
    bytes_read, bytes_written = report.total_bytes("POSIX")
    return LayerBreakdown(
        layer_times_s=times, overheads_s=overheads, bytes_moved=bytes_read + bytes_written
    )
