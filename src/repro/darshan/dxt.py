"""DXT trace analysis (the DXT-Explorer role).

The paper discusses DXT Explorer as an interactive analysis tool over
Darshan's extended traces (§II-A2).  This module provides the analysis
core such a tool needs: per-rank activity intervals, concurrency over
time, and detection of stragglers/imbalance from DXT segments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.darshan.pydarshan import DarshanReport
from repro.util.errors import DarshanError

__all__ = ["RankActivity", "analyze_dxt", "DXTAnalysis"]


@dataclass(frozen=True, slots=True)
class RankActivity:
    """I/O activity summary of one rank."""

    rank: int
    first_start: float
    last_end: float
    busy_time: float
    bytes_read: int
    bytes_written: int
    n_ops: int

    @property
    def span(self) -> float:
        """Wall interval between first and last operation."""
        return self.last_end - self.first_start


@dataclass(slots=True)
class DXTAnalysis:
    """Cross-rank DXT analysis results."""

    ranks: list[RankActivity]

    @property
    def makespan(self) -> float:
        """Time from the first op's start to the last op's end."""
        if not self.ranks:
            return 0.0
        return max(r.last_end for r in self.ranks) - min(r.first_start for r in self.ranks)

    def stragglers(self, threshold: float = 1.5) -> list[int]:
        """Ranks whose span exceeds ``threshold`` x the median span."""
        if not self.ranks:
            return []
        spans = np.array([r.span for r in self.ranks])
        median = float(np.median(spans))
        if median <= 0:
            return []
        return [r.rank for r in self.ranks if r.span > threshold * median]

    def imbalance(self) -> float:
        """Max/mean busy-time ratio (1.0 = perfectly balanced)."""
        if not self.ranks:
            return 1.0
        busy = np.array([r.busy_time for r in self.ranks])
        mean = float(busy.mean())
        return float(busy.max()) / mean if mean > 0 else 1.0


def analyze_dxt(report: DarshanReport, module: str = "POSIX") -> DXTAnalysis:
    """Build the cross-rank analysis from a report with DXT data."""
    segments = report.dxt_segments(module)
    if not segments:
        raise DarshanError(
            "no DXT segments in this log; run the profiler with enable_dxt=True"
        )
    per_rank: dict[int, list] = {}
    for (rank, _path), segs in segments.items():
        per_rank.setdefault(rank, []).extend(segs)
    ranks = []
    for rank in sorted(per_rank):
        segs = per_rank[rank]
        ranks.append(
            RankActivity(
                rank=rank,
                first_start=min(s.start for s in segs),
                last_end=max(s.end for s in segs),
                busy_time=sum(s.end - s.start for s in segs),
                bytes_read=sum(s.length for s in segs if s.op == "read"),
                bytes_written=sum(s.length for s in segs if s.op == "write"),
                n_ops=len(segs),
            )
        )
    return DXTAnalysis(ranks=ranks)
