"""PyDarshan-like log reader API.

The paper integrates PyDarshan into the knowledge extractor so Darshan
logs become knowledge objects (§V-B).  This module exposes the familiar
surface — ``DarshanReport(path)`` with ``metadata``, ``modules`` and
per-module record access plus aggregation helpers — backed by the
repro log format instead of the binary one.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.darshan.counters import counters_for_module
from repro.darshan.logformat import read_log
from repro.darshan.profiler import DarshanLogData, DarshanRecord
from repro.util.errors import DarshanError

__all__ = ["DarshanReport"]


class DarshanReport:
    """A loaded Darshan log with aggregation helpers.

    Mirrors ``pydarshan.DarshanReport``: ``metadata['job']`` carries the
    job header, ``modules`` lists instrumented modules and
    ``records[module]`` yields the per-rank-per-file counter records.
    """

    def __init__(self, source: str | Path | DarshanLogData) -> None:
        self._data = source if isinstance(source, DarshanLogData) else read_log(source)
        self.metadata: dict[str, object] = {
            "job": dict(self._data.job),
            "exe": self._data.job.get("exe", ""),
        }
        self.records: dict[str, list[DarshanRecord]] = {
            m: self._data.module_records(m) for m in self._data.modules()
        }

    @property
    def modules(self) -> list[str]:
        """Instrumented modules present in the log."""
        return sorted(self.records)

    @property
    def nprocs(self) -> int:
        """Number of MPI processes of the instrumented job."""
        return int(self._data.job.get("nprocs", 0))

    @property
    def runtime_s(self) -> float:
        """Wall time covered by the log."""
        return float(self._data.job.get("end_time", 0.0)) - float(
            self._data.job.get("start_time", 0.0)
        )

    def _module(self, module: str) -> list[DarshanRecord]:
        try:
            return self.records[module]
        except KeyError:
            raise DarshanError(
                f"module {module!r} not present in this log; available: {self.modules}"
            ) from None

    def counters(self, module: str) -> dict[str, float]:
        """Counters of one module aggregated over all ranks and files."""
        totals = {name: 0.0 for name in counters_for_module(module)}
        max_keys = {k for k in totals if "_MAX_BYTE_" in k}
        for rec in self._module(module):
            for key, value in rec.counters.items():
                if key in max_keys:
                    totals[key] = max(totals[key], value)
                else:
                    totals[key] += value
        return totals

    def to_records(self, module: str) -> list[dict[str, object]]:
        """Records of one module as plain dicts (a DataFrame substitute)."""
        return [
            {"rank": r.rank, "path": r.path, **r.counters} for r in self._module(module)
        ]

    def per_file(self, module: str) -> dict[str, dict[str, float]]:
        """Counters aggregated per file path within one module."""
        out: dict[str, dict[str, float]] = {}
        for rec in self._module(module):
            agg = out.setdefault(rec.path, {name: 0.0 for name in rec.counters})
            for key, value in rec.counters.items():
                if "_MAX_BYTE_" in key:
                    agg[key] = max(agg[key], value)
                else:
                    agg[key] += value
        return out

    # ------------------------------------------------------------------
    # derived performance metrics (what the extractor pulls out)
    # ------------------------------------------------------------------
    def total_bytes(self, module: str = "POSIX") -> tuple[int, int]:
        """``(bytes_read, bytes_written)`` of one module."""
        c = self.counters(module)
        prefix = "H5D" if module == "HDF5" else module
        return int(c[f"{prefix}_BYTES_READ"]), int(c[f"{prefix}_BYTES_WRITTEN"])

    def agg_bandwidth_mib(self, module: str = "POSIX") -> dict[str, float]:
        """Aggregate read/write bandwidth estimates in MiB/s.

        Computed like darshan-parser's summary: total bytes over the
        slowest rank's cumulative I/O time.
        """
        prefix = "H5D" if module == "HDF5" else module
        per_rank_read: dict[int, float] = {}
        per_rank_write: dict[int, float] = {}
        for rec in self._module(module):
            per_rank_read[rec.rank] = per_rank_read.get(rec.rank, 0.0) + rec.counters.get(
                f"{prefix}_F_READ_TIME", 0.0
            )
            per_rank_write[rec.rank] = per_rank_write.get(rec.rank, 0.0) + rec.counters.get(
                f"{prefix}_F_WRITE_TIME", 0.0
            )
        bytes_read, bytes_written = self.total_bytes(module)
        out = {}
        max_read_t = max(per_rank_read.values(), default=0.0)
        max_write_t = max(per_rank_write.values(), default=0.0)
        out["read_mib_s"] = bytes_read / 1048576 / max_read_t if max_read_t > 0 else 0.0
        out["write_mib_s"] = bytes_written / 1048576 / max_write_t if max_write_t > 0 else 0.0
        return out

    def size_histogram(self, module: str, kind: str) -> dict[str, int]:
        """Access-size histogram (``kind`` is ``'READ'`` or ``'WRITE'``)."""
        if kind not in ("READ", "WRITE"):
            raise DarshanError("kind must be 'READ' or 'WRITE'")
        prefix = "H5D" if module == "HDF5" else module
        c = self.counters(module)
        marker = f"{prefix}_SIZE_{kind}_"
        return {k[len(marker):]: int(v) for k, v in c.items() if k.startswith(marker)}

    def dxt_segments(self, module: str = "POSIX") -> dict[tuple[int, str], list]:
        """DXT traces keyed by (rank, path); empty unless DXT was on."""
        return {
            (r.rank, r.path): list(r.dxt_segments)
            for r in self._module(module)
            if r.dxt_segments
        }

    def timeline(self, module: str = "POSIX", nbins: int = 20) -> np.ndarray:
        """Binned bytes-moved-over-time matrix from DXT data.

        Returns an ``(nbins,)`` array of bytes transferred per time bin
        — the data behind a DXT-Explorer-style activity plot.
        """
        if nbins <= 0:
            raise DarshanError("nbins must be >= 1")
        segs = [s for lst in self.dxt_segments(module).values() for s in lst]
        bins = np.zeros(nbins)
        if not segs:
            return bins
        t0 = min(s.start for s in segs)
        t1 = max(s.end for s in segs)
        span = max(t1 - t0, 1e-12)
        for s in segs:
            idx = min(int((s.start - t0) / span * nbins), nbins - 1)
            bins[idx] += s.length
        return bins
