"""Simulated parallel file system (BeeGFS-like) with an analytic cost model."""

from repro.pfs.beegfs import BeeGFS, BeeGFSSpec
from repro.pfs.faults import (
    Fault,
    FaultInjector,
    FaultScope,
    InjectedBenchmarkError,
    InjectedFaultError,
    InjectedFileSystemError,
    MetadataServiceError,
    ServerCrashError,
    register_when_tag,
)
from repro.pfs.file import DirEntry, FileEntry, Namespace
from repro.pfs.gpfs import GPFSView
from repro.pfs.lustre import LustreView
from repro.pfs.layout import StripeLayout, StripePattern
from repro.pfs.metadata import MetadataServer, MetadataSpec
from repro.pfs.perfmodel import PerfModel, PerfModelParams, PhaseContext
from repro.pfs.pool import RAIDScheme, StoragePool
from repro.pfs.target import StorageServer, StorageTarget, TargetSpec

__all__ = [
    "BeeGFS",
    "BeeGFSSpec",
    "Fault",
    "FaultInjector",
    "FaultScope",
    "InjectedFaultError",
    "InjectedFileSystemError",
    "InjectedBenchmarkError",
    "ServerCrashError",
    "MetadataServiceError",
    "register_when_tag",
    "FileEntry",
    "DirEntry",
    "Namespace",
    "LustreView",
    "GPFSView",
    "StripeLayout",
    "StripePattern",
    "MetadataServer",
    "MetadataSpec",
    "PerfModel",
    "PerfModelParams",
    "PhaseContext",
    "RAIDScheme",
    "StoragePool",
    "StorageServer",
    "StorageTarget",
    "TargetSpec",
]
