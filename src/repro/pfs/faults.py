"""Fault injection for anomaly experiments.

The paper's two usage examples hinge on anomalies: a degraded iteration
in the Fig. 5 IOR run (write throughput collapsing to less than half
the average) and a "broken node" depressing the ior-easy read result in
Fig. 6.  Faults are declarative: each one names a *scope* (whole file
system, specific targets, a storage server, or the metadata service),
a multiplicative slowdown ``factor``, and a ``when`` condition matched
against the tags of the running phase (benchmark name, iteration
number, access type, IO500 phase, ...).  The performance model consults
the injector on every cost computation, so a fault transparently slows
exactly the operations whose tags match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.util.errors import ConfigurationError

__all__ = ["FaultScope", "Fault", "FaultInjector"]


class FaultScope:
    """What part of the storage system a fault slows down."""

    FILESYSTEM = "filesystem"
    TARGETS = "targets"
    SERVER = "server"
    METADATA = "metadata"

    ALL = (FILESYSTEM, TARGETS, SERVER, METADATA)


@dataclass(frozen=True, slots=True)
class Fault:
    """One injected fault: scope + slowdown + activation condition."""

    name: str
    factor: float
    scope: str = FaultScope.FILESYSTEM
    target_ids: tuple[int, ...] = ()
    server: str | None = None
    when: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 < self.factor < 1.0:
            raise ConfigurationError(
                f"fault factor must be in (0, 1) (a slowdown), got {self.factor}"
            )
        if self.scope not in FaultScope.ALL:
            raise ConfigurationError(f"unknown fault scope {self.scope!r}")
        if self.scope == FaultScope.TARGETS and not self.target_ids:
            raise ConfigurationError("target-scoped faults need target_ids")
        if self.scope == FaultScope.SERVER and not self.server:
            raise ConfigurationError("server-scoped faults need a server name")

    def matches(self, tags: Mapping[str, object]) -> bool:
        """Whether this fault is active for a phase with the given tags.

        Every key in ``when`` must be present in ``tags`` with an equal
        value; an empty ``when`` means always active.
        """
        return all(tags.get(k) == v for k, v in self.when.items())


class FaultInjector:
    """Registry of faults consulted by the performance model."""

    def __init__(self, faults: list[Fault] | None = None) -> None:
        self.faults: list[Fault] = list(faults or [])

    def add(self, fault: Fault) -> None:
        """Register a fault."""
        self.faults.append(fault)

    def clear(self) -> None:
        """Remove all faults (restore a healthy system)."""
        self.faults.clear()

    def filesystem_factor(self, tags: Mapping[str, object]) -> float:
        """Combined slowdown on the whole file system for these tags."""
        factor = 1.0
        for f in self.faults:
            if f.scope == FaultScope.FILESYSTEM and f.matches(tags):
                factor *= f.factor
        return factor

    def target_factor(self, target_id: int, server: str, tags: Mapping[str, object]) -> float:
        """Combined slowdown on one target (target- or server-scoped)."""
        factor = 1.0
        for f in self.faults:
            if not f.matches(tags):
                continue
            if f.scope == FaultScope.TARGETS and target_id in f.target_ids:
                factor *= f.factor
            elif f.scope == FaultScope.SERVER and f.server == server:
                factor *= f.factor
        return factor

    def metadata_factor(self, tags: Mapping[str, object]) -> float:
        """Combined slowdown on the metadata service for these tags."""
        factor = 1.0
        for f in self.faults:
            if f.scope == FaultScope.METADATA and f.matches(tags):
                factor *= f.factor
        return factor

    def active(self, tags: Mapping[str, object]) -> list[Fault]:
        """All faults matching the given tags (for reporting)."""
        return [f for f in self.faults if f.matches(tags)]
