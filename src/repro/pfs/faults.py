"""Fault injection for anomaly and resilience experiments.

The paper's two usage examples hinge on anomalies: a degraded iteration
in the Fig. 5 IOR run (write throughput collapsing to less than half
the average) and a "broken node" depressing the ior-easy read result in
Fig. 6.  Faults are declarative: each one names a *scope* (whole file
system, specific targets, a storage server, or the metadata service),
a multiplicative slowdown ``factor``, and a ``when`` condition matched
against the tags of the running phase (benchmark name, iteration
number, access type, IO500 phase, ...).  The performance model consults
the injector on every cost computation, so a fault transparently slows
exactly the operations whose tags match.

Beyond soft slowdowns, a fault can also be *hard*: with
``fail_probability > 0`` the injector raises a typed error from
:meth:`FaultInjector.maybe_raise` with that probability, drawn from the
deterministic RNG streams in :mod:`repro.util.rng` — a crashed storage
server, a flaky metadata service, or a transiently failing benchmark
iteration.  The ``transient`` flag tells the resilience layer
(:mod:`repro.core.resilience`) whether retrying is worthwhile; every
injected error carries it as an attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.util.errors import (
    BenchmarkError,
    ConfigurationError,
    FileSystemError,
    ReproError,
)
from repro.util.rng import stream

__all__ = [
    "FaultScope",
    "Fault",
    "FaultInjector",
    "InjectedFaultError",
    "InjectedFileSystemError",
    "InjectedBenchmarkError",
    "ServerCrashError",
    "MetadataServiceError",
    "KNOWN_WHEN_TAGS",
    "register_when_tag",
]


class FaultScope:
    """What part of the storage system a fault affects."""

    FILESYSTEM = "filesystem"
    TARGETS = "targets"
    SERVER = "server"
    METADATA = "metadata"

    ALL = (FILESYSTEM, TARGETS, SERVER, METADATA)


# ----------------------------------------------------------------------
# injected hard-fault errors
# ----------------------------------------------------------------------
class InjectedFaultError(ReproError):
    """Base of every error raised by a hard fault.

    Carries the fault's name and its ``transient`` flag so retry
    predicates can decide whether another attempt may succeed.
    """

    def __init__(self, message: str, *, fault_name: str = "", transient: bool = True) -> None:
        super().__init__(message)
        self.fault_name = fault_name
        self.transient = transient


class InjectedFileSystemError(InjectedFaultError, FileSystemError):
    """A file-system operation failed because of an injected fault."""


class InjectedBenchmarkError(InjectedFaultError, BenchmarkError):
    """A benchmark iteration failed because of an injected fault."""


class ServerCrashError(InjectedFileSystemError):
    """A storage server crashed mid-operation (injected)."""


class MetadataServiceError(InjectedFileSystemError):
    """The metadata service dropped a request (injected)."""


#: ``when`` keys any phase in the repository actually emits.  A typo'd
#: key would otherwise silently match nothing; Fault construction
#: rejects unknown keys loudly instead.  Custom phases that emit extra
#: tags register them with :func:`register_when_tag` first.
KNOWN_WHEN_TAGS = frozenset(
    {"benchmark", "run", "iteration", "op", "mode", "suite", "phase"}
)

_when_tags: set[str] = set(KNOWN_WHEN_TAGS)


def register_when_tag(key: str) -> None:
    """Allow ``key`` in fault ``when`` conditions (custom phase tags)."""
    if not key or not isinstance(key, str):
        raise ConfigurationError(f"when-tag key must be a non-empty string, got {key!r}")
    _when_tags.add(key)


_ERROR_KINDS = ("", "filesystem", "benchmark", "server", "metadata")


@dataclass(frozen=True, slots=True)
class Fault:
    """One injected fault: scope + effect + activation condition.

    The effect is a slowdown (``factor < 1``), a failure
    (``fail_probability > 0``), or both.  ``transient`` marks whether a
    raised error may clear on retry; ``error_kind`` overrides the
    scope-derived error class (e.g. ``"benchmark"`` to raise
    :class:`InjectedBenchmarkError` from a filesystem-scoped fault).
    """

    name: str
    factor: float = 1.0
    scope: str = FaultScope.FILESYSTEM
    target_ids: tuple[int, ...] = ()
    server: str | None = None
    when: Mapping[str, object] = field(default_factory=dict)
    fail_probability: float = 0.0
    transient: bool = True
    error_kind: str = ""

    def __post_init__(self) -> None:
        if not 0 < self.factor <= 1.0:
            raise ConfigurationError(
                f"fault factor must be in (0, 1] (a slowdown), got {self.factor}"
            )
        if not 0.0 <= self.fail_probability <= 1.0:
            raise ConfigurationError(
                f"fail_probability must be in [0, 1], got {self.fail_probability}"
            )
        if self.factor == 1.0 and self.fail_probability == 0.0:
            raise ConfigurationError(
                f"fault {self.name!r} does nothing: give it a factor < 1 "
                "(slowdown) and/or a fail_probability > 0 (hard fault)"
            )
        if self.scope not in FaultScope.ALL:
            raise ConfigurationError(f"unknown fault scope {self.scope!r}")
        if self.scope == FaultScope.TARGETS and not self.target_ids:
            raise ConfigurationError("target-scoped faults need target_ids")
        if self.scope == FaultScope.SERVER and not self.server:
            raise ConfigurationError("server-scoped faults need a server name")
        if self.error_kind not in _ERROR_KINDS:
            raise ConfigurationError(
                f"unknown error_kind {self.error_kind!r}; known: {_ERROR_KINDS[1:]}"
            )
        for key in self.when:
            if key not in _when_tags:
                raise ConfigurationError(
                    f"fault {self.name!r}: 'when' references unknown tag key "
                    f"{key!r} — no phase emits it, so the condition would "
                    f"silently match nothing (known: {sorted(_when_tags)}; "
                    "custom tags: register_when_tag())"
                )

    def __str__(self) -> str:
        where = self.scope
        if self.scope == FaultScope.TARGETS:
            where = f"targets {','.join(map(str, self.target_ids))}"
        elif self.scope == FaultScope.SERVER:
            where = f"server {self.server}"
        effects = []
        if self.factor < 1.0:
            effects.append(f"slowdown x{self.factor:g}")
        if self.fail_probability > 0:
            flavor = "transient" if self.transient else "permanent"
            effects.append(f"fails p={self.fail_probability:g} ({flavor})")
        cond = (
            " when " + ", ".join(f"{k}={v!r}" for k, v in self.when.items())
            if self.when
            else ""
        )
        return f"fault {self.name!r} [{where}] {' + '.join(effects)}{cond}"

    def matches(self, tags: Mapping[str, object]) -> bool:
        """Whether this fault is active for a phase with the given tags.

        Every key in ``when`` must be present in ``tags`` with an equal
        value; an empty ``when`` means always active.
        """
        return all(tags.get(k) == v for k, v in self.when.items())

    def make_error(self, tags: Mapping[str, object]) -> InjectedFaultError:
        """Build the typed error this hard fault raises."""
        kind = self.error_kind
        if not kind:
            kind = {
                FaultScope.FILESYSTEM: "filesystem",
                FaultScope.TARGETS: "filesystem",
                FaultScope.SERVER: "server",
                FaultScope.METADATA: "metadata",
            }[self.scope]
        detail = f"{self} hit (tags: {dict(tags)!r})"
        meta = {"fault_name": self.name, "transient": self.transient}
        if kind == "benchmark":
            return InjectedBenchmarkError(detail, **meta)
        if kind == "server":
            return ServerCrashError(f"storage server {self.server or '?'} crashed: {detail}", **meta)
        if kind == "metadata":
            return MetadataServiceError(f"metadata service dropped request: {detail}", **meta)
        return InjectedFileSystemError(detail, **meta)


class FaultInjector:
    """Registry of faults consulted by the performance model and runners.

    Soft faults (``factor < 1``) derate the analytic cost model through
    the ``*_factor`` methods.  Hard faults (``fail_probability > 0``)
    raise from :meth:`maybe_raise`, which benchmark runners call at
    phase boundaries.  Failure draws come from a deterministic stream
    keyed by ``(root_seed, fault name, draw index)``: a fixed seed
    yields the identical failure pattern on every run, while successive
    draws (e.g. retries of the same iteration) are independent — which
    is what lets a *transient* fault clear on a later attempt.
    """

    def __init__(self, faults: list[Fault] | None = None, root_seed: int = 42) -> None:
        self.faults: list[Fault] = list(faults or [])
        self.root_seed = root_seed
        self._draws: dict[str, int] = {}

    def add(self, fault: Fault) -> None:
        """Register a fault."""
        self.faults.append(fault)

    def clear(self) -> None:
        """Remove all faults and draw history (restore a healthy system)."""
        self.faults.clear()
        self._draws.clear()

    def maybe_raise(self, tags: Mapping[str, object]) -> None:
        """Raise the first matching hard fault that fires for these tags.

        Each matching hard fault consumes one deterministic draw per
        call whether or not it fires, so the failure schedule of a run
        depends only on the seed and the call sequence.
        """
        for f in self.faults:
            if f.fail_probability <= 0 or not f.matches(tags):
                continue
            n = self._draws.get(f.name, 0)
            self._draws[f.name] = n + 1
            rng = stream(self.root_seed, "hard-fault", f.name, n)
            if rng.random() < f.fail_probability:
                raise f.make_error(tags)

    def filesystem_factor(self, tags: Mapping[str, object]) -> float:
        """Combined slowdown on the whole file system for these tags."""
        factor = 1.0
        for f in self.faults:
            if f.scope == FaultScope.FILESYSTEM and f.matches(tags):
                factor *= f.factor
        return factor

    def target_factor(self, target_id: int, server: str, tags: Mapping[str, object]) -> float:
        """Combined slowdown on one target (target- or server-scoped)."""
        factor = 1.0
        for f in self.faults:
            if not f.matches(tags):
                continue
            if f.scope == FaultScope.TARGETS and target_id in f.target_ids:
                factor *= f.factor
            elif f.scope == FaultScope.SERVER and f.server == server:
                factor *= f.factor
        return factor

    def metadata_factor(self, tags: Mapping[str, object]) -> float:
        """Combined slowdown on the metadata service for these tags."""
        factor = 1.0
        for f in self.faults:
            if f.scope == FaultScope.METADATA and f.matches(tags):
                factor *= f.factor
        return factor

    def active(self, tags: Mapping[str, object]) -> list[Fault]:
        """All faults matching the given tags (for reporting)."""
        return [f for f in self.faults if f.matches(tags)]
