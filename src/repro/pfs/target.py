"""Storage targets and storage server nodes.

A *storage target* is one backing device (what BeeGFS calls a target,
Lustre an OST); several targets live on each *storage server*.  Targets
carry the raw bandwidth/latency of the device and a mutable health
factor the fault injector manipulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ConfigurationError

__all__ = ["TargetSpec", "StorageTarget", "StorageServer"]


@dataclass(frozen=True, slots=True)
class TargetSpec:
    """Static device characteristics of one storage target."""

    write_bandwidth_bps: float = 643e6 * 1.048576  # 643 MiB/s expressed in bytes/s
    read_bandwidth_bps: float = 720e6 * 1.048576
    op_latency_s: float = 350e-6

    def __post_init__(self) -> None:
        if self.write_bandwidth_bps <= 0 or self.read_bandwidth_bps <= 0:
            raise ConfigurationError("target bandwidths must be positive")
        if self.op_latency_s < 0:
            raise ConfigurationError("target latency must be >= 0")

    def bandwidth_bps(self, access: str) -> float:
        """Device bandwidth for ``'read'`` or ``'write'`` access."""
        if access == "read":
            return self.read_bandwidth_bps
        if access == "write":
            return self.write_bandwidth_bps
        raise ConfigurationError(f"access must be 'read' or 'write', got {access!r}")


@dataclass(slots=True)
class StorageTarget:
    """A target instance: spec + id + server placement + health."""

    target_id: int
    spec: TargetSpec
    server: str
    health: float = 1.0

    def __post_init__(self) -> None:
        if self.target_id < 0:
            raise ConfigurationError(f"target id must be >= 0, got {self.target_id}")
        if not 0 < self.health <= 1.0:
            raise ConfigurationError(f"health must be in (0, 1], got {self.health}")

    def effective_bandwidth_bps(self, access: str) -> float:
        """Device bandwidth scaled by current health."""
        return self.spec.bandwidth_bps(access) * self.health

    def degrade(self, factor: float) -> None:
        """Lower the target's health (fault injection)."""
        if not 0 < factor < 1.0:
            raise ConfigurationError(f"degrade factor must be in (0, 1), got {factor}")
        self.health = factor

    def restore(self) -> None:
        """Restore full health."""
        self.health = 1.0


@dataclass(slots=True)
class StorageServer:
    """A storage server node hosting one or more targets."""

    name: str
    targets: list[StorageTarget] = field(default_factory=list)

    def degrade(self, factor: float) -> None:
        """Degrade every target on this server (a 'broken node')."""
        for t in self.targets:
            t.degrade(factor)

    def restore(self) -> None:
        """Restore every target on this server."""
        for t in self.targets:
            t.restore()
