"""Storage pools and RAID schemes.

A storage pool groups targets; files are created inside exactly one
pool and stripe over targets picked from it.  The pool also carries the
RAID scheme of the backing devices — user-visible file-system
information the knowledge extractor records (§V-C: "chunk size, number
of storage target, RAID scheme, storage pool").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pfs.target import StorageTarget
from repro.util.errors import ConfigurationError

__all__ = ["RAIDScheme", "StoragePool"]


class RAIDScheme:
    """RAID schemes of the backing block devices."""

    RAID0 = "RAID0"
    RAID5 = "RAID5"
    RAID6 = "RAID6"
    RAID10 = "RAID10"

    ALL = (RAID0, RAID5, RAID6, RAID10)

    #: Write-bandwidth efficiency of each scheme relative to RAID0
    #: (parity update cost); reads are unaffected at this granularity.
    WRITE_EFFICIENCY = {RAID0: 1.0, RAID5: 0.82, RAID6: 0.72, RAID10: 0.9}


@dataclass(slots=True)
class StoragePool:
    """A named group of targets with a RAID scheme and default striping."""

    name: str
    targets: list[StorageTarget] = field(default_factory=list)
    raid_scheme: str = RAIDScheme.RAID0
    default_num_targets: int = 4
    pool_id: int = 1

    def __post_init__(self) -> None:
        if not self.targets:
            raise ConfigurationError(f"pool {self.name!r} needs at least one target")
        if self.raid_scheme not in RAIDScheme.ALL:
            raise ConfigurationError(
                f"unknown RAID scheme {self.raid_scheme!r}; known: {RAIDScheme.ALL}"
            )
        if not 1 <= self.default_num_targets <= len(self.targets):
            raise ConfigurationError(
                f"default_num_targets {self.default_num_targets} out of range "
                f"1..{len(self.targets)} for pool {self.name!r}"
            )

    @property
    def target_ids(self) -> tuple[int, ...]:
        """Ids of all targets in the pool."""
        return tuple(t.target_id for t in self.targets)

    def target(self, target_id: int) -> StorageTarget:
        """Look up a target by id."""
        for t in self.targets:
            if t.target_id == target_id:
                return t
        raise ConfigurationError(f"target {target_id} not in pool {self.name!r}")

    def pick_targets(self, num: int, start: int) -> tuple[int, ...]:
        """Pick ``num`` target ids round-robin starting at slot ``start``.

        This mirrors how BeeGFS distributes new files over the pool so
        that concurrent file-per-process workloads cover all targets.
        """
        if not 1 <= num <= len(self.targets):
            raise ConfigurationError(
                f"cannot stripe over {num} targets; pool {self.name!r} has {len(self.targets)}"
            )
        n = len(self.targets)
        return tuple(self.targets[(start + k) % n].target_id for k in range(num))

    def aggregate_bandwidth_bps(self, access: str) -> float:
        """Health-weighted total device bandwidth, with RAID write cost."""
        total = sum(t.effective_bandwidth_bps(access) for t in self.targets)
        if access == "write":
            total *= RAIDScheme.WRITE_EFFICIENCY[self.raid_scheme]
        return total

    def min_target_health(self, target_ids: tuple[int, ...]) -> float:
        """Worst health among the given targets (stripe bottleneck)."""
        return min(self.target(t).health for t in target_ids)
