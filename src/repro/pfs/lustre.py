"""Lustre presentation adapter.

§VI names Lustre as the first additional parallel file system the
extractor should learn.  At the level the knowledge cycle reads —
user-visible striping metadata — Lustre differs from BeeGFS in
*presentation*, not in substance: ``lfs getstripe`` instead of
``beegfs-ctl --getentryinfo``.  :class:`LustreView` renders authentic
``lfs getstripe`` text for any file of the simulated file system, and
the Phase-II extractor gains a parser for it
(:mod:`repro.core.extraction.filesystem`).
"""

from __future__ import annotations

from repro.pfs.beegfs import BeeGFS
from repro.pfs.file import FileEntry

__all__ = ["LustreView"]


class LustreView:
    """Renders Lustre-style administrative output over a simulated FS.

    The underlying performance/namespace machinery is shared with the
    BeeGFS façade; only the metadata dialect changes.  Target ids map
    to Lustre OST indexes (0-based), the metadata server to an MDT.
    """

    fs_type = "lustre"

    def __init__(self, fs: BeeGFS) -> None:
        self.fs = fs
        self._ost_index = {
            t.target_id: i for i, t in enumerate(fs.pool.targets)
        }

    def getstripe(self, path: str) -> str:
        """Render ``lfs getstripe <path>`` output."""
        entry = self.fs.namespace.resolve(path)
        lines = [path]
        if isinstance(entry, FileEntry):
            layout = entry.layout
            first_ost = self._ost_index[layout.target_ids[0]]
            lines += [
                f"lmm_stripe_count:  {layout.num_targets}",
                f"lmm_stripe_size:   {layout.chunk_size}",
                "lmm_pattern:       raid0",
                "lmm_layout_gen:    0",
                f"lmm_stripe_offset: {first_ost}",
                "\tobdidx\t\t objid\t\t objid\t\t group",
            ]
            for tid in layout.target_ids:
                ost = self._ost_index[tid]
                objid = 0x100000 + ost * 0x10 + 1
                lines.append(f"\t     {ost}\t       {objid}\t     {hex(objid)}\t             0")
        else:
            lines += [
                "stripe_count:  1 stripe_size:   1048576 pattern:       raid0 stripe_offset: -1",
            ]
        return "\n".join(lines) + "\n"

    def mdts(self) -> str:
        """Render ``lfs mdts`` style output (one MDT)."""
        return f"MDTS:\n0: {self.fs.spec.name}-MDT0000_UUID ACTIVE\n"

    def osts(self) -> str:
        """Render ``lfs osts`` style output."""
        lines = ["OBDS:"]
        for tid, idx in sorted(self._ost_index.items(), key=lambda kv: kv[1]):
            lines.append(f"{idx}: {self.fs.spec.name}-OST{idx:04x}_UUID ACTIVE")
        return "\n".join(lines) + "\n"
