"""File striping layouts (BeeGFS-style RAID0 chunk striping).

A file is split into fixed-size chunks distributed round-robin over a
set of storage targets.  The layout determines how many targets a
single stream can drive in parallel and how a byte range maps onto
targets — both inputs to the performance model, and the metadata that
``beegfs-ctl --getentryinfo`` reports (chunk size, number of targets,
stripe pattern type).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError
from repro.util.units import KIB, format_size

__all__ = ["StripePattern", "StripeLayout"]


class StripePattern:
    """Stripe pattern type names as BeeGFS prints them."""

    RAID0 = "RAID0"
    BUDDYMIRROR = "Buddy Mirror"

    ALL = (RAID0, BUDDYMIRROR)


@dataclass(frozen=True, slots=True)
class StripeLayout:
    """Striping of one file: pattern, chunk size, and its target list."""

    chunk_size: int = 512 * KIB
    target_ids: tuple[int, ...] = (0, 1, 2, 3)
    pattern: str = StripePattern.RAID0

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ConfigurationError(f"chunk size must be positive, got {self.chunk_size}")
        if not self.target_ids:
            raise ConfigurationError("a stripe layout needs at least one target")
        if len(set(self.target_ids)) != len(self.target_ids):
            raise ConfigurationError(f"duplicate targets in stripe layout: {self.target_ids}")
        if self.pattern not in StripePattern.ALL:
            raise ConfigurationError(
                f"unknown stripe pattern {self.pattern!r}; known: {StripePattern.ALL}"
            )

    @property
    def num_targets(self) -> int:
        """Number of storage targets this file stripes over."""
        return len(self.target_ids)

    @property
    def stripe_width(self) -> int:
        """Bytes in one full stripe (chunk size x number of targets)."""
        return self.chunk_size * self.num_targets

    def chunk_target(self, offset: int) -> int:
        """Target id storing the chunk containing byte ``offset``."""
        if offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset}")
        return self.target_ids[(offset // self.chunk_size) % self.num_targets]

    def bytes_per_target(self, offset: int, length: int) -> dict[int, int]:
        """Bytes of ``[offset, offset+length)`` that land on each target.

        Computed analytically (no per-byte loop): whole stripes
        distribute evenly; the partial head/tail stripes are resolved
        chunk by chunk.
        """
        if offset < 0 or length < 0:
            raise ConfigurationError("offset/length must be >= 0")
        counts = {t: 0 for t in self.target_ids}
        if length == 0:
            return counts
        cs, nt = self.chunk_size, self.num_targets
        first_chunk = offset // cs
        last_chunk = (offset + length - 1) // cs
        # Count whole chunks per round-robin slot in O(num_targets),
        # then correct the partial head and tail chunks.
        for slot in range(nt):
            first_hit = first_chunk + ((slot - first_chunk) % nt)
            n_chunks = 0 if first_hit > last_chunk else (last_chunk - first_hit) // nt + 1
            counts[self.target_ids[slot]] = n_chunks * cs
        head = min(offset + length, (first_chunk + 1) * cs) - offset
        counts[self.target_ids[first_chunk % nt]] += head - cs
        if last_chunk > first_chunk:
            tail = (offset + length) - last_chunk * cs
            counts[self.target_ids[last_chunk % nt]] += tail - cs
        return counts

    def describe_chunk_size(self) -> str:
        """Chunk size rendered the way beegfs-ctl prints it (e.g. ``512K``)."""
        text = format_size(self.chunk_size)
        value, unit = text.split(" ", 1)
        short = {"KiB": "K", "MiB": "M", "GiB": "G", "TiB": "T", "bytes": ""}[unit]
        return f"{value}{short}"
