"""Metadata server model.

Creates, stats, opens and removals are served by metadata servers with
a finite operation rate.  The rate saturates with client concurrency
and collapses when many clients hammer a single shared directory —
the effect that separates mdtest-easy from mdtest-hard in IO500.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.util.errors import ConfigurationError

__all__ = ["MetadataSpec", "MetadataServer"]


@dataclass(frozen=True, slots=True)
class MetadataSpec:
    """Static capability of one metadata server."""

    base_rate_ops: float = 35_000.0  # creates/s with moderate concurrency
    stat_speedup: float = 2.5  # stats are cheaper than creates
    remove_factor: float = 0.8  # removals slightly cheaper than creates
    shared_dir_factor: float = 0.35  # many clients in one directory
    concurrency_half: float = 4.0  # procs at which rate reaches 50% of max

    def __post_init__(self) -> None:
        if self.base_rate_ops <= 0:
            raise ConfigurationError("metadata base rate must be positive")
        if not 0 < self.shared_dir_factor <= 1:
            raise ConfigurationError("shared_dir_factor must be in (0, 1]")
        if self.concurrency_half <= 0:
            raise ConfigurationError("concurrency_half must be positive")

    def aggregate_rate(self, op: str, active_procs: int, shared_dir: bool = False) -> float:
        """Ops/s the server sustains for ``op`` under the given load.

        The rate ramps up with client concurrency (a single client
        cannot keep the server busy) and saturates at ``base_rate_ops``
        scaled per operation type.
        """
        if active_procs <= 0:
            raise ConfigurationError(f"active_procs must be >= 1, got {active_procs}")
        ramp = active_procs / (active_procs + self.concurrency_half)
        rate = self.base_rate_ops * ramp
        if op == "stat":
            rate *= self.stat_speedup
        elif op == "remove":
            rate *= self.remove_factor
        elif op not in ("create", "open", "mkdir"):
            raise ConfigurationError(f"unknown metadata op {op!r}")
        if shared_dir and op != "stat":
            rate *= self.shared_dir_factor
        return rate


class MetadataServer:
    """A metadata server instance; also allocates BeeGFS-style entry IDs."""

    def __init__(self, name: str, spec: MetadataSpec | None = None, node_id: int = 1) -> None:
        self.name = name
        self.node_id = node_id
        self.spec = spec or MetadataSpec()
        self._entry_counter = itertools.count(1)
        self.health = 1.0

    def next_entry_id(self) -> str:
        """Allocate an EntryID shaped like BeeGFS ones (``N-HEX-M``)."""
        n = next(self._entry_counter)
        return f"{n % 16:X}-{0x63A2B400 + n:08X}-{self.node_id}"

    def op_cost_s(self, op: str, active_procs: int, shared_dir: bool = False) -> float:
        """Wall time one client spends on ``op`` under the given load.

        With ``p`` clients issuing ops concurrently against an
        aggregate rate ``R``, each client completes ops at ``R / p``
        per second, so one op costs ``p / R`` seconds.
        """
        rate = self.spec.aggregate_rate(op, active_procs, shared_dir) * self.health
        return active_procs / rate
