"""Analytic I/O performance model.

Every timing number in the simulator comes from here.  The model is a
roofline over the shared resources on the path from a compute process
to the storage devices, multiplied by pattern-dependent efficiency
factors and deterministic lognormal noise:

* **Device side** — the storage pool's health-weighted aggregate
  bandwidth, derated by a transfer-size efficiency (small requests
  cannot keep devices busy) and a client-contention efficiency
  (server-side scheduling overhead grows with concurrent streams),
  fair-shared across active processes.  A single stream is additionally
  capped by the bandwidth of the targets its file stripes over and by a
  per-client streaming limit.
* **Network side** — the per-node NIC fair-shared across the processes
  on that node, and the aggregate fabric section between compute and
  storage.
* **Pattern factors** — non-collective small writes into one shared
  file pay a lock/false-sharing penalty that scales with how far the
  transfer size falls below the stripe chunk; collective buffering
  (MPI-IO aggregators) lifts that penalty back to a fixed aggregation
  efficiency; fsync derates the write path slightly and adds a flush
  latency per sync.
* **Noise** — per-operation and per-phase multiplicative lognormal
  factors with write noise wider than read noise (matching the large
  write variance vs. flat reads of the paper's Fig. 6), all drawn from
  seed-derived streams so runs are exactly reproducible.

Calibration constants (target bandwidths, efficiency half-points) are
chosen so that the paper's Fig. 5 workload lands near its reported
~2850 MiB/s healthy write throughput on the FUCHS-CSC preset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.cluster.interconnect import Interconnect
from repro.pfs.faults import FaultInjector
from repro.pfs.layout import StripeLayout
from repro.pfs.metadata import MetadataServer
from repro.pfs.pool import RAIDScheme, StoragePool
from repro.util.errors import ConfigurationError
from repro.util.rng import lognormal_factor, stream

__all__ = ["PerfModelParams", "PhaseContext", "PerfModel"]


@dataclass(frozen=True, slots=True)
class PerfModelParams:
    """Tunable constants of the analytic model (see module docstring)."""

    size_half: int = 1024 * 1024  # transfer size at 50% device efficiency
    contention_alpha: float = 0.07  # stream-contention derating strength
    client_stream_bw_bps: float = 1.2e9  # single-stream client ceiling
    shared_small_floor: float = 0.12  # worst-case shared-file penalty
    collective_efficiency: float = 0.78  # aggregated shared-file efficiency
    collective_latency_s: float = 120e-6  # two-phase exchange per op
    fsync_bw_factor: float = 0.985  # write-path derating with fsync
    fsync_latency_s: float = 2e-3  # cost of one fsync call
    sigma_op_write: float = 0.02  # per-op noise (write)
    sigma_op_read: float = 0.015  # per-op noise (read)
    sigma_phase_write: float = 0.055  # per-phase noise (write)
    sigma_phase_read: float = 0.015  # per-phase noise (read)
    sigma_metadata: float = 0.03  # per-phase metadata noise
    random_penalty_write: float = 0.8  # random offsets defeat write-back
    random_penalty_read: float = 0.55  # random offsets defeat prefetch

    def __post_init__(self) -> None:
        if self.size_half <= 0:
            raise ConfigurationError("size_half must be positive")
        if not 0 < self.shared_small_floor <= 1:
            raise ConfigurationError("shared_small_floor must be in (0, 1]")
        if not 0 < self.collective_efficiency <= 1:
            raise ConfigurationError("collective_efficiency must be in (0, 1]")


@dataclass(frozen=True, slots=True)
class PhaseContext:
    """Everything the model needs to know about the running I/O phase."""

    active_procs: int
    procs_per_node: int
    node_factors: tuple[float, ...]
    access: str  # 'read' or 'write'
    collective: bool = False
    shared_file: bool = False
    fsync: bool = False
    random_access: bool = False
    tags: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.active_procs <= 0:
            raise ConfigurationError(f"active_procs must be >= 1, got {self.active_procs}")
        if self.procs_per_node <= 0:
            raise ConfigurationError(f"procs_per_node must be >= 1, got {self.procs_per_node}")
        if self.access not in ("read", "write"):
            raise ConfigurationError(f"access must be 'read' or 'write', got {self.access!r}")
        if not self.node_factors:
            raise ConfigurationError("node_factors must name at least one node")

    def noise_key(self, *extra: object) -> tuple[object, ...]:
        """Deterministic key identifying this phase for noise streams."""
        return (tuple(sorted((str(k), repr(v)) for k, v in self.tags.items())), self.access, *extra)


class PerfModel:
    """Cost oracle combining pool, metadata, fabric, faults and noise."""

    def __init__(
        self,
        pool: StoragePool,
        metadata_server: MetadataServer,
        interconnect: Interconnect,
        params: PerfModelParams | None = None,
        faults: FaultInjector | None = None,
        root_seed: int = 42,
    ) -> None:
        self.pool = pool
        self.mds = metadata_server
        self.interconnect = interconnect
        self.params = params or PerfModelParams()
        self.faults = faults or FaultInjector()
        self.root_seed = root_seed

    # ------------------------------------------------------------------
    # efficiency factors
    # ------------------------------------------------------------------
    def size_efficiency(self, transfer_size: int) -> float:
        """Device efficiency of one request of ``transfer_size`` bytes."""
        if transfer_size <= 0:
            raise ConfigurationError(f"transfer size must be positive, got {transfer_size}")
        return transfer_size / (transfer_size + self.params.size_half)

    def contention_efficiency(self, active_procs: int) -> float:
        """Server-side efficiency under ``active_procs`` concurrent streams."""
        streams_per_target = active_procs / len(self.pool.targets)
        return 1.0 / (1.0 + self.params.contention_alpha * math.log1p(streams_per_target))

    def shared_file_penalty(self, transfer_size: int, chunk_size: int, collective: bool) -> float:
        """Bandwidth factor for N-to-1 (single shared file) access.

        Non-collective small unaligned writes serialize on extent locks;
        collective buffering re-aggregates them into chunk-aligned
        requests at a fixed aggregation efficiency.  The better of the
        two applies when collectives are on (aggregation never hurts a
        pattern that was already aligned).
        """
        floor = self.params.shared_small_floor
        align = min(1.0, transfer_size / chunk_size)
        penalty = floor + (1.0 - floor) * align
        if collective:
            return max(penalty, self.params.collective_efficiency)
        return penalty

    # ------------------------------------------------------------------
    # bandwidth rooflines
    # ------------------------------------------------------------------
    def per_rank_bandwidth_bps(
        self, transfer_size: int, layout: StripeLayout, ctx: PhaseContext
    ) -> float:
        """Deterministic bandwidth one process achieves in this phase."""
        p = self.params
        size_eff = self.size_efficiency(transfer_size)
        fs_factor = self.faults.filesystem_factor(ctx.tags)

        # Device side: pool aggregate, fair-shared over active procs.
        pool_agg = 0.0
        for t in self.pool.targets:
            tf = self.faults.target_factor(t.target_id, t.server, ctx.tags)
            pool_agg += t.effective_bandwidth_bps(ctx.access) * tf
        if ctx.access == "write":
            pool_agg *= RAIDScheme.WRITE_EFFICIENCY[self.pool.raid_scheme]
        pool_agg *= size_eff * self.contention_efficiency(ctx.active_procs) * fs_factor
        per_rank_pool = pool_agg / ctx.active_procs

        # Stripe span: one stream only reaches its file's targets, and a
        # balanced RAID0 stripe finishes when its *slowest* target does.
        slowest = math.inf
        for tid in layout.target_ids:
            target = self.pool.target(tid)
            tf = self.faults.target_factor(tid, target.server, ctx.tags)
            slowest = min(slowest, target.effective_bandwidth_bps(ctx.access) * tf)
        span = layout.num_targets * slowest * size_eff * fs_factor

        # Network side: NIC fair share and fabric aggregate share.
        worst_node = min(ctx.node_factors)
        nic_share = (
            self.interconnect.spec.link_bandwidth_bps * worst_node / ctx.procs_per_node
        )
        fabric_share = self.interconnect.fabric_ceiling_bps() / ctx.active_procs

        bw = min(per_rank_pool, span, p.client_stream_bw_bps, nic_share, fabric_share)

        if ctx.shared_file:
            bw *= self.shared_file_penalty(transfer_size, layout.chunk_size, ctx.collective)
        if ctx.random_access:
            bw *= (
                p.random_penalty_write if ctx.access == "write" else p.random_penalty_read
            )
        if ctx.fsync and ctx.access == "write":
            bw *= p.fsync_bw_factor
        return bw

    def transfer_time_s(self, nbytes: int, layout: StripeLayout, ctx: PhaseContext) -> float:
        """Deterministic wall time of one transfer by one process."""
        bw = self.per_rank_bandwidth_bps(nbytes, layout, ctx)
        latency = self.pool.targets[0].spec.op_latency_s + self.interconnect.message_latency_s()
        if ctx.collective:
            latency += self.params.collective_latency_s
        return latency + nbytes / bw

    def transfer_times_s(
        self,
        nbytes: int,
        layout: StripeLayout,
        ctx: PhaseContext,
        n_ops: int,
        rank: int = 0,
    ) -> np.ndarray:
        """Vectorized per-op times for ``n_ops`` identical transfers.

        Applies per-op lognormal noise from a stream keyed by the phase
        tags and the rank, so reruns are bit-identical.
        """
        if n_ops <= 0:
            raise ConfigurationError(f"n_ops must be >= 1, got {n_ops}")
        base = self.transfer_time_s(nbytes, layout, ctx)
        sigma = (
            self.params.sigma_op_write if ctx.access == "write" else self.params.sigma_op_read
        )
        rng = stream(self.root_seed, "op", ctx.noise_key("rank", rank))
        return base * lognormal_factor(rng, sigma, n_ops)

    def phase_noise_factor(self, ctx: PhaseContext, kind: str = "data") -> float:
        """Whole-phase noise factor (system-state variation between runs)."""
        if kind == "metadata":
            sigma = self.params.sigma_metadata
        elif ctx.access == "write":
            sigma = self.params.sigma_phase_write
        else:
            sigma = self.params.sigma_phase_read
        rng = stream(self.root_seed, "phase", kind, ctx.noise_key())
        return float(lognormal_factor(rng, sigma))

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    def metadata_time_s(self, op: str, ctx: PhaseContext, shared_dir: bool = False) -> float:
        """Deterministic wall time of one metadata op by one process."""
        factor = self.faults.metadata_factor(ctx.tags)
        base = self.mds.op_cost_s(op, ctx.active_procs, shared_dir) / factor
        return base + self.interconnect.message_latency_s()

    def metadata_times_s(
        self,
        op: str,
        ctx: PhaseContext,
        n_ops: int,
        rank: int = 0,
        shared_dir: bool = False,
    ) -> np.ndarray:
        """Vectorized per-op metadata times with deterministic noise."""
        if n_ops <= 0:
            raise ConfigurationError(f"n_ops must be >= 1, got {n_ops}")
        base = self.metadata_time_s(op, ctx, shared_dir)
        rng = stream(self.root_seed, "md", op, ctx.noise_key("rank", rank))
        return base * lognormal_factor(rng, self.params.sigma_metadata, n_ops)

    def fsync_time_s(self) -> float:
        """Cost of one fsync call."""
        return self.params.fsync_latency_s
