"""BeeGFS-like parallel file system façade.

Composes the namespace, storage pool, metadata server and performance
model into the object the I/O stack talks to.  Besides the data-path
operations (create/open/read/write/fsync/unlink/...), it renders
``beegfs-ctl --getentryinfo``-style text — the exact format the
knowledge extractor parses for the file-system part of a knowledge
object (Entry type, EntryID, Metadata node, Stripe pattern details).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.interconnect import Interconnect
from repro.pfs.faults import FaultInjector
from repro.pfs.file import DirEntry, FileEntry, Namespace, normalize_path, split_path
from repro.pfs.layout import StripeLayout, StripePattern
from repro.pfs.metadata import MetadataServer, MetadataSpec
from repro.pfs.perfmodel import PerfModel, PerfModelParams, PhaseContext
from repro.pfs.pool import RAIDScheme, StoragePool
from repro.pfs.target import StorageServer, StorageTarget, TargetSpec
from repro.util.errors import ConfigurationError, FileSystemError
from repro.util.units import KIB, TIB

__all__ = ["BeeGFSSpec", "BeeGFS"]


@dataclass(frozen=True, slots=True)
class BeeGFSSpec:
    """Static description of one BeeGFS installation."""

    name: str = "beegfs"
    mount_point: str = "/scratch"
    num_storage_servers: int = 4
    targets_per_server: int = 2
    target: TargetSpec = field(default_factory=TargetSpec)
    metadata: MetadataSpec = field(default_factory=MetadataSpec)
    default_chunk_size: int = 512 * KIB
    default_num_targets: int = 4
    raid_scheme: str = RAIDScheme.RAID0
    pool_name: str = "Default"
    target_capacity_bytes: int = 20 * TIB

    def __post_init__(self) -> None:
        if self.num_storage_servers <= 0 or self.targets_per_server <= 0:
            raise ConfigurationError("BeeGFS needs >= 1 storage server and target")
        if self.default_num_targets > self.num_storage_servers * self.targets_per_server:
            raise ConfigurationError(
                "default_num_targets exceeds the total number of targets"
            )

    @property
    def num_targets(self) -> int:
        """Total storage targets in the installation."""
        return self.num_storage_servers * self.targets_per_server


class BeeGFS:
    """A running file system instance with a cost model attached."""

    def __init__(
        self,
        spec: BeeGFSSpec | None = None,
        interconnect: Interconnect | None = None,
        params: PerfModelParams | None = None,
        faults: FaultInjector | None = None,
        root_seed: int = 42,
    ) -> None:
        self.spec = spec or BeeGFSSpec()
        self.servers: list[StorageServer] = []
        targets: list[StorageTarget] = []
        tid = itertools.count(101)
        for s in range(self.spec.num_storage_servers):
            server = StorageServer(name=f"stor{s + 1:02d}")
            for _ in range(self.spec.targets_per_server):
                t = StorageTarget(target_id=next(tid), spec=self.spec.target, server=server.name)
                server.targets.append(t)
                targets.append(t)
            self.servers.append(server)
        self.pool = StoragePool(
            name=self.spec.pool_name,
            targets=targets,
            raid_scheme=self.spec.raid_scheme,
            default_num_targets=self.spec.default_num_targets,
        )
        self.mds = MetadataServer(name="meta01", spec=self.spec.metadata)
        self.namespace = Namespace(
            root_entry_id=self.mds.next_entry_id(), metadata_node=self.mds.name
        )
        self.faults = faults or FaultInjector(root_seed=root_seed)
        self.model = PerfModel(
            pool=self.pool,
            metadata_server=self.mds,
            interconnect=interconnect or Interconnect(),
            params=params,
            faults=self.faults,
            root_seed=root_seed,
        )
        self._file_slot = itertools.count(0)
        self.makedirs(self.spec.mount_point)

    # ------------------------------------------------------------------
    # namespace operations (each returns the entry and/or its time cost)
    # ------------------------------------------------------------------
    def default_layout(self) -> StripeLayout:
        """Stripe layout a newly created file receives."""
        start = next(self._file_slot)
        return StripeLayout(
            chunk_size=self.spec.default_chunk_size,
            target_ids=self.pool.pick_targets(self.spec.default_num_targets, start),
            pattern=StripePattern.RAID0,
        )

    def mkdir(self, path: str, ctx: PhaseContext | None = None) -> tuple[DirEntry, float]:
        """Create one directory; parent must exist."""
        entry = DirEntry(
            name=split_path(path)[1],
            entry_id=self.mds.next_entry_id(),
            metadata_node=self.mds.name,
        )
        self.namespace.add(path, entry)
        cost = self.model.metadata_time_s("mkdir", ctx) if ctx else 0.0
        return entry, cost

    def makedirs(self, path: str, ctx: PhaseContext | None = None) -> float:
        """Create a directory path recursively (``mkdir -p``)."""
        norm = normalize_path(path)
        cost = 0.0
        if norm == "/":
            return cost
        partial = ""
        for part in norm[1:].split("/"):
            partial += "/" + part
            if not self.namespace.exists(partial):
                _, c = self.mkdir(partial, ctx)
                cost += c
        return cost

    def create(
        self,
        path: str,
        ctx: PhaseContext | None = None,
        layout: StripeLayout | None = None,
        shared_dir: bool = False,
        exist_ok: bool = False,
    ) -> tuple[FileEntry, float]:
        """Create a regular file and return ``(entry, time cost)``."""
        entry = FileEntry(
            name=split_path(path)[1],
            entry_id=self.mds.next_entry_id(),
            metadata_node=self.mds.name,
            layout=layout or self.default_layout(),
            pool_name=self.pool.name,
        )
        self.namespace.add(path, entry, exist_ok=exist_ok)
        cost = self.model.metadata_time_s("create", ctx, shared_dir) if ctx else 0.0
        return entry, cost

    def open(self, path: str, ctx: PhaseContext | None = None) -> tuple[FileEntry, float]:
        """Open an existing file and return ``(entry, time cost)``."""
        entry = self.namespace.lookup_file(path)
        cost = self.model.metadata_time_s("open", ctx) if ctx else 0.0
        return entry, cost

    def stat(self, path: str, ctx: PhaseContext | None = None, shared_dir: bool = False) -> float:
        """Stat a path; raises if it does not exist."""
        self.namespace.resolve(path)
        return self.model.metadata_time_s("stat", ctx, shared_dir) if ctx else 0.0

    def unlink(self, path: str, ctx: PhaseContext | None = None, shared_dir: bool = False) -> float:
        """Remove a regular file."""
        self.namespace.remove_file(path)
        return self.model.metadata_time_s("remove", ctx, shared_dir) if ctx else 0.0

    def rmdir(self, path: str, ctx: PhaseContext | None = None) -> float:
        """Remove an empty directory."""
        self.namespace.remove_dir(path)
        return self.model.metadata_time_s("remove", ctx) if ctx else 0.0

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def write(self, entry: FileEntry, offset: int, nbytes: int, ctx: PhaseContext) -> float:
        """Write ``nbytes`` at ``offset``; extends the file; returns seconds."""
        if ctx.access != "write":
            raise FileSystemError("write issued under a read-phase context")
        entry.extend_to(offset + nbytes)
        return self.model.transfer_time_s(nbytes, entry.layout, ctx)

    def read(self, entry: FileEntry, offset: int, nbytes: int, ctx: PhaseContext) -> float:
        """Read ``nbytes`` at ``offset``; must be within EOF; returns seconds."""
        if ctx.access != "read":
            raise FileSystemError("read issued under a write-phase context")
        if offset + nbytes > entry.size:
            raise FileSystemError(
                f"read past EOF on {entry.name!r}: offset {offset} + {nbytes} > size {entry.size}"
            )
        return self.model.transfer_time_s(nbytes, entry.layout, ctx)

    def io_many(
        self,
        entry: FileEntry,
        nbytes: int,
        n_ops: int,
        ctx: PhaseContext,
        rank: int = 0,
        offset: int = 0,
    ) -> np.ndarray:
        """Vectorized cost of ``n_ops`` identical sequential transfers
        starting at ``offset``.

        Used by the benchmark runners; the per-op noise stream is keyed
        by phase tags and rank so results are reproducible.  Writes
        extend the file only past its current end (rewrites in place
        keep the size), reads must stay within EOF.
        """
        if ctx.access == "write":
            entry.extend_to(offset + n_ops * nbytes)
        elif offset + n_ops * nbytes > entry.size:
            raise FileSystemError(
                f"batched read of {n_ops * nbytes} bytes at offset {offset} "
                f"exceeds file size {entry.size}"
            )
        return self.model.transfer_times_s(nbytes, entry.layout, ctx, n_ops, rank)

    def fsync(self, entry: FileEntry) -> float:
        """Flush a file's dirty data; returns seconds."""
        return self.model.fsync_time_s()

    # ------------------------------------------------------------------
    # administration / introspection
    # ------------------------------------------------------------------
    def server(self, name: str) -> StorageServer:
        """Look up a storage server by name."""
        for s in self.servers:
            if s.name == name:
                return s
        raise ConfigurationError(f"unknown storage server {name!r}")

    def degrade_server(self, name: str, factor: float) -> None:
        """Degrade every target on one storage server (broken node)."""
        self.server(name).degrade(factor)

    def restore_all(self) -> None:
        """Restore all servers/targets and drop injected faults."""
        for s in self.servers:
            s.restore()
        self.faults.clear()

    def getentryinfo(self, path: str) -> str:
        """Render ``beegfs-ctl --getentryinfo`` output for a path."""
        entry = self.namespace.resolve(path)
        lines = [
            f"Entry type: {entry.entry_type}",
            f"EntryID: {entry.entry_id}",
            f"Metadata node: {entry.metadata_node} [ID: {self.mds.node_id}]",
            "Stripe pattern details:",
        ]
        if isinstance(entry, FileEntry):
            layout = entry.layout
            lines += [
                f"+ Type: {layout.pattern}",
                f"+ Chunksize: {layout.describe_chunk_size()}",
                f"+ Number of storage targets: desired: {layout.num_targets}; "
                f"actual: {layout.num_targets}",
                "+ Storage targets:",
            ]
            for tid in layout.target_ids:
                lines.append(f"  + {tid} @ {self.pool.target(tid).server}")
            lines.append(f"+ Storage Pool: {self.pool.pool_id} ({self.pool.name})")
        else:
            lines += [
                f"+ Type: {StripePattern.RAID0}",
                f"+ Chunksize: {StripeLayout(chunk_size=self.spec.default_chunk_size, target_ids=(0,)).describe_chunk_size()}",
                f"+ Number of storage targets: desired: {self.spec.default_num_targets}",
                f"+ Storage Pool: {self.pool.pool_id} ({self.pool.name})",
            ]
        return "\n".join(lines) + "\n"

    def df(self) -> dict[str, object]:
        """Capacity summary (``beegfs-df``-style)."""
        ntargets = len(self.pool.targets)
        total = ntargets * self.spec.target_capacity_bytes
        used = sum(e.size for _, e in self.namespace.walk_files("/"))
        return {
            "filesystem": self.spec.name,
            "mount_point": self.spec.mount_point,
            "num_targets": ntargets,
            "capacity_bytes": total,
            "used_bytes": used,
            "raid_scheme": self.pool.raid_scheme,
            "storage_pool": self.pool.name,
        }
