"""File-system namespace: directories, files, and path resolution.

The namespace tracks structure and sizes (not data contents — the
simulator models time, not bytes).  Every entry carries the metadata
the extractor later reads back through ``beegfs-ctl``: entry id, owning
metadata server, stripe layout and storage pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pfs.layout import StripeLayout
from repro.util.errors import (
    ConfigurationError,
    DirectoryNotEmptyError,
    FileExistsInPFSError,
    FileNotFoundInPFSError,
    NotADirectoryInPFSError,
)

__all__ = ["FileEntry", "DirEntry", "Namespace", "split_path", "normalize_path"]


def normalize_path(path: str) -> str:
    """Normalise to an absolute, ``/``-separated path without dots."""
    if not path or not path.startswith("/"):
        raise ConfigurationError(f"paths must be absolute, got {path!r}")
    parts: list[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue
        parts.append(part)
    return "/" + "/".join(parts)


def split_path(path: str) -> tuple[str, str]:
    """Split a normalised path into ``(parent, name)``."""
    norm = normalize_path(path)
    if norm == "/":
        raise ConfigurationError("cannot split the root path")
    parent, _, name = norm.rpartition("/")
    return (parent or "/", name)


@dataclass(slots=True)
class FileEntry:
    """A regular file: size, striping, and ownership metadata."""

    name: str
    entry_id: str
    metadata_node: str
    layout: StripeLayout
    pool_name: str
    size: int = 0
    ctime: float = 0.0
    mtime: float = 0.0

    entry_type: str = field(default="file", init=False)

    def extend_to(self, offset_end: int) -> None:
        """Grow the file to cover writes ending at ``offset_end``."""
        if offset_end < 0:
            raise ConfigurationError("file size cannot be negative")
        self.size = max(self.size, offset_end)


@dataclass(slots=True)
class DirEntry:
    """A directory holding child entries by name."""

    name: str
    entry_id: str
    metadata_node: str
    children: dict[str, "FileEntry | DirEntry"] = field(default_factory=dict)
    ctime: float = 0.0

    entry_type: str = field(default="directory", init=False)


class Namespace:
    """The directory tree of one file system instance."""

    def __init__(self, root_entry_id: str = "root", metadata_node: str = "meta01") -> None:
        self.root = DirEntry(name="/", entry_id=root_entry_id, metadata_node=metadata_node)

    def resolve(self, path: str) -> FileEntry | DirEntry:
        """Return the entry at ``path`` or raise a not-found error."""
        norm = normalize_path(path)
        entry: FileEntry | DirEntry = self.root
        if norm == "/":
            return entry
        for part in norm[1:].split("/"):
            if not isinstance(entry, DirEntry):
                raise NotADirectoryInPFSError(f"{part!r} crossed through a file in {path!r}")
            try:
                entry = entry.children[part]
            except KeyError:
                raise FileNotFoundInPFSError(path) from None
        return entry

    def exists(self, path: str) -> bool:
        """Whether an entry exists at ``path``."""
        try:
            self.resolve(path)
            return True
        except (FileNotFoundInPFSError, NotADirectoryInPFSError):
            return False

    def lookup_dir(self, path: str) -> DirEntry:
        """Resolve ``path`` and require it to be a directory."""
        entry = self.resolve(path)
        if not isinstance(entry, DirEntry):
            raise NotADirectoryInPFSError(path)
        return entry

    def lookup_file(self, path: str) -> FileEntry:
        """Resolve ``path`` and require it to be a regular file."""
        entry = self.resolve(path)
        if not isinstance(entry, FileEntry):
            raise FileNotFoundInPFSError(f"{path} is a directory, not a file")
        return entry

    def add(self, path: str, entry: FileEntry | DirEntry, exist_ok: bool = False) -> None:
        """Insert ``entry`` at ``path`` under an existing parent directory."""
        parent_path, name = split_path(path)
        parent = self.lookup_dir(parent_path)
        if name in parent.children and not exist_ok:
            raise FileExistsInPFSError(path)
        entry.name = name
        parent.children[name] = entry

    def remove_file(self, path: str) -> FileEntry:
        """Unlink a regular file and return its entry."""
        parent_path, name = split_path(path)
        parent = self.lookup_dir(parent_path)
        entry = parent.children.get(name)
        if entry is None:
            raise FileNotFoundInPFSError(path)
        if not isinstance(entry, FileEntry):
            raise FileNotFoundInPFSError(f"{path} is a directory; use rmdir")
        del parent.children[name]
        return entry

    def remove_dir(self, path: str) -> DirEntry:
        """Remove an empty directory and return its entry."""
        parent_path, name = split_path(path)
        parent = self.lookup_dir(parent_path)
        entry = parent.children.get(name)
        if entry is None:
            raise FileNotFoundInPFSError(path)
        if not isinstance(entry, DirEntry):
            raise NotADirectoryInPFSError(path)
        if entry.children:
            raise DirectoryNotEmptyError(path)
        del parent.children[name]
        return entry

    def listdir(self, path: str) -> list[str]:
        """Sorted child names of a directory."""
        return sorted(self.lookup_dir(path).children)

    def walk_files(self, path: str = "/") -> list[tuple[str, FileEntry]]:
        """All (path, file) pairs under ``path``, depth-first sorted."""
        result: list[tuple[str, FileEntry]] = []

        def _walk(prefix: str, d: DirEntry) -> None:
            for name in sorted(d.children):
                child = d.children[name]
                child_path = f"{prefix.rstrip('/')}/{name}"
                if isinstance(child, DirEntry):
                    _walk(child_path, child)
                else:
                    result.append((child_path, child))

        _walk(normalize_path(path), self.lookup_dir(path))
        return result

    def count_entries(self, path: str = "/") -> tuple[int, int]:
        """Return ``(num_files, num_dirs)`` under ``path`` (excl. itself)."""
        nfiles = ndirs = 0

        def _walk(d: DirEntry) -> None:
            nonlocal nfiles, ndirs
            for child in d.children.values():
                if isinstance(child, DirEntry):
                    ndirs += 1
                    _walk(child)
                else:
                    nfiles += 1

        _walk(self.lookup_dir(path))
        return nfiles, ndirs
