"""IBM Spectrum Scale (GPFS) presentation adapter.

The second file system named in §VI's outlook.  GPFS exposes
per-file attributes through ``mmlsattr -L`` and file-system block
configuration through ``mmlsfs``; :class:`GPFSView` renders both
dialects over the shared simulated file system so the extractor can be
exercised against Spectrum-Scale-shaped output.
"""

from __future__ import annotations

from repro.pfs.beegfs import BeeGFS
from repro.pfs.file import FileEntry

__all__ = ["GPFSView"]


class GPFSView:
    """Renders GPFS-style administrative output over a simulated FS."""

    fs_type = "gpfs"

    def __init__(self, fs: BeeGFS, device: str = "gpfs0") -> None:
        self.fs = fs
        self.device = device

    def mmlsattr(self, path: str) -> str:
        """Render ``mmlsattr -L <path>`` output."""
        entry = self.fs.namespace.resolve(path)
        pool = self.fs.pool.name.lower()
        lines = [
            f"file name:            {path}",
            "metadata replication: 1 max 2",
            "data replication:     1 max 2",
            "immutable:            no",
            "appendOnly:           no",
            "flags:",
            f"storage pool name:    {pool}",
            f"fileset name:         root",
            f"snapshot name:",
        ]
        if isinstance(entry, FileEntry):
            lines.insert(1, f"creation time:        {entry.ctime}")
        return "\n".join(lines) + "\n"

    def mmlsfs(self) -> str:
        """Render ``mmlsfs <device>`` output (the block-size subset)."""
        block = self.fs.spec.default_chunk_size
        ntargets = len(self.fs.pool.targets)
        return "\n".join(
            [
                f"flag                value                    description",
                f"------------------- ------------------------ -----------",
                f" -B                 {block}                  Block size",
                f" -n                 {ntargets}                        Estimated number of nodes",
                f" -T                 {self.fs.spec.mount_point}                 Default mount point",
            ]
        ) + "\n"
