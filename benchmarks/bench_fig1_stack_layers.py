"""Fig. 1 — the parallel I/O architecture (layered software stack).

The figure is architectural; the measurable claims behind it (§I) are:
high-level libraries sit atop MPI-IO which sits atop POSIX, "each of
these layers offer corresponding configuration or optimization
options", and "the observed I/O performance at the application-level
can be much lower than the theoretical peak bandwidth".

Reproduced shapes: (a) each layer adds overhead — POSIX >= MPI-IO >=
HDF5 throughput for the same pattern; (b) the MPI-IO layer's collective
optimization rescues small shared-file writes; (c) application-level
throughput is far below the fabric's theoretical peak.
"""

from conftest import report

from repro.benchmarks_io.ior import IORConfig, run_ior
from repro.iostack.stack import Testbed
from repro.mpi.hints import MPIIOHints
from repro.util.units import MIB


def _run_stack_sweep():
    results = {}
    testbed = Testbed.fuchs_csc(seed=11)
    # (a) same fpp pattern through each layer.  All runs share one
    # run_id: the noise streams are keyed by (run, iteration, op), so a
    # common id gives common random numbers and the comparison between
    # layers is exactly paired (variance reduction, not cheating — the
    # same trick IOR users apply by interleaving repetitions).
    for api in ("POSIX", "MPIIO", "HDF5"):
        cfg = IORConfig(
            api=api, block_size=8 * MIB, transfer_size=1 * MIB, segment_count=4,
            iterations=3, test_file=f"/scratch/f1/{api.lower()}",
            file_per_proc=True, keep_file=True,
        )
        res = run_ior(cfg, testbed, num_nodes=2, tasks_per_node=20, run_id=1)
        results[api] = res.bandwidth_summary("write").mean

    # (b) small strided shared-file writes, independent vs collective.
    for label, collective, hint in (
        ("shared-independent", False, MPIIOHints(romio_cb_write="disable")),
        ("shared-collective", True, MPIIOHints(romio_cb_write="enable")),
    ):
        cfg = IORConfig(
            api="MPIIO", block_size=47008, transfer_size=47008, segment_count=64,
            iterations=3, test_file=f"/scratch/f1/{label}", file_per_proc=False,
            keep_file=True, collective=collective, hints=hint,
        )
        res = run_ior(cfg, testbed, num_nodes=2, tasks_per_node=20, run_id=1)
        results[label] = res.bandwidth_summary("write").mean

    results["fabric_peak_mib"] = testbed.cluster.interconnect.fabric_ceiling_bps() / MIB
    return results


def test_fig1_stack_layers(benchmark):
    r = benchmark.pedantic(_run_stack_sweep, rounds=1, iterations=1)

    report(
        "Fig. 1: application-level write throughput through the I/O stack (MiB/s)",
        ["configuration", "measured (MiB/s)"],
        [
            ["POSIX, file-per-process", round(r["POSIX"], 1)],
            ["MPI-IO, file-per-process", round(r["MPIIO"], 1)],
            ["HDF5, file-per-process", round(r["HDF5"], 1)],
            ["MPI-IO shared file, independent 47008B", round(r["shared-independent"], 1)],
            ["MPI-IO shared file, collective 47008B", round(r["shared-collective"], 1)],
            ["theoretical fabric peak", round(r["fabric_peak_mib"], 1)],
        ],
    )

    # (a) layering overhead ordering.
    assert r["POSIX"] > r["MPIIO"] > r["HDF5"]
    # (b) collective buffering is the layer optimization that matters
    # for small shared-file writes.
    assert r["shared-collective"] > 2 * r["shared-independent"]
    # (c) application-level << theoretical peak (27 GB/s fabric).
    assert r["POSIX"] < 0.25 * r["fabric_peak_mib"]
