"""Fig. 2 — the five-phase I/O knowledge cycle.

The figure defines the iterative workflow: generation → extraction →
persistence → analysis → usage, re-launched cyclically.  Reproduced
shapes: every phase produces its artifact; a second revolution driven
by the first revolution's usage output (a regenerated configuration)
succeeds; and the knowledge base grows monotonically across
revolutions.
"""

import tempfile

from conftest import report

from repro.core.cycle import KnowledgeCycle
from repro.core.persistence import KnowledgeDatabase, KnowledgeQueries
from repro.core.pipeline import TimingObserver
from repro.core.usage import generate_jube_config
from repro.iostack.stack import Testbed

XML = """
<jube>
  <benchmark name="cycle" outpath="ignored">
    <parameterset name="p">
      <parameter name="transfersize">1m,2m</parameter>
      <parameter name="command">ior -a mpiio -b 4m -t $transfersize -s 4 -F -e -i 3 -o /scratch/f2/test -k</parameter>
      <parameter name="nodes">2</parameter>
      <parameter name="taskspernode">10</parameter>
    </parameterset>
    <step name="run" work="ior"><use>p</use></step>
  </benchmark>
</jube>
"""


def _run_two_revolutions():
    testbed = Testbed.fuchs_csc(seed=202)
    timer = TimingObserver()
    with tempfile.TemporaryDirectory() as workspace:
        with KnowledgeDatabase(":memory:") as db:
            cycle = KnowledgeCycle(testbed, db, workspace=workspace, observers=[timer])
            first = cycle.run_cycle(XML)
            counts_after_first = KnowledgeQueries(db).database_report()

            # Usage output of revolution 1 drives revolution 2.
            regenerated_xml = generate_jube_config(
                first.knowledge[0], sweep={"transfersize": ["4m"]},
                nodes=2, tasks_per_node=10,
            )
            second = cycle.run_cycle(regenerated_xml)
            counts_after_second = KnowledgeQueries(db).database_report()
    return first, second, counts_after_first, counts_after_second, timer


def test_fig2_knowledge_cycle(benchmark):
    first, second, c1, c2, timer = benchmark.pedantic(
        _run_two_revolutions, rounds=1, iterations=1
    )

    report(
        "Fig. 2: knowledge-base growth across cycle revolutions (table row counts)",
        ["table", "after revolution 1", "after revolution 2"],
        [[t, c1[t], c2[t]] for t in ("performances", "summaries", "results", "filesystems", "systems")],
    )
    report(
        "Fig. 2: per-phase wall time over two revolutions (pipeline observer)",
        ["phase", "total time [ms]"],
        [[name, round(secs * 1000, 2)] for name, secs in timer.durations.items()],
    )
    # The observer saw every phase of both revolutions.
    assert len(timer.timings) == 10
    assert set(timer.durations) == {
        "generation", "extraction", "persistence", "analysis", "usage",
    }

    # Phase I+II: generation and extraction produced knowledge objects.
    assert len(first.knowledge) == 2
    assert len(second.knowledge) == 1
    # Phase III: persistence created all dependent rows.
    assert c1["performances"] == 2
    assert c1["summaries"] == 4  # 2 objects x write+read
    assert c1["results"] == 12  # x 3 iterations
    assert c1["filesystems"] == 2 and c1["systems"] == 2
    # Phase IV: the analysis report rendered both views.
    assert "Summary:" in first.analysis_report
    assert "Comparison:" in first.analysis_report
    # Phase V: usage modules all ran.
    assert set(first.usage_results) == {"anomaly-detection", "recommendation"}
    # Iteration: the cycle is re-launchable and knowledge accumulates.
    assert c2["performances"] == 3
    assert all(c2[t] >= c1[t] for t in c1)
    # The regenerated revolution really used the modified pattern.
    assert second.knowledge[0].parameters["xfersize_bytes"] == 4 * 1024**2
