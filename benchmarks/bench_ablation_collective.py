"""Ablation — collective buffering across transfer sizes.

DESIGN.md calls out the shared-file penalty / collective-buffering
mitigation as the central qualitative mechanism of the performance
model (it produces the ior-easy vs ior-hard split of Fig. 6 and the
MPI-IO optimization of Fig. 1).  This ablation sweeps the transfer size
for N-to-1 writes with collective buffering on and off and checks the
expected *crossover*: collectives dominate for sub-chunk records and
converge to parity once records reach the stripe chunk.
"""

from conftest import report

from repro.benchmarks_io.ior import IORConfig, run_ior
from repro.iostack.stack import Testbed
from repro.mpi.hints import MPIIOHints
from repro.util.units import KIB, MIB

SIZES = (47008, 128 * KIB, 512 * KIB, 2 * MIB)


def _sweep():
    testbed = Testbed.fuchs_csc(seed=701)
    results = {}
    for size in SIZES:
        n_ops = max(8, (4 * MIB) // size)
        for mode, collective, hints in (
            ("independent", False, MPIIOHints(romio_cb_write="disable")),
            ("collective", True, MPIIOHints(romio_cb_write="enable")),
        ):
            cfg = IORConfig(
                api="MPIIO", block_size=size, transfer_size=size,
                segment_count=n_ops, iterations=2,
                test_file=f"/scratch/abl1/{size}_{mode}", file_per_proc=False,
                keep_file=True, collective=collective, hints=hints, read_file=False,
            )
            # Common run_id: paired noise isolates the deterministic effect.
            res = run_ior(cfg, testbed, num_nodes=2, tasks_per_node=20, run_id=size)
            results[(size, mode)] = res.bandwidth_summary("write").mean
    return results


def test_ablation_collective_buffering(benchmark):
    r = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for size in SIZES:
        indep, coll = r[(size, "independent")], r[(size, "collective")]
        rows.append([size, round(indep, 1), round(coll, 1), round(coll / indep, 2)])
    report(
        "Ablation: shared-file writes, independent vs collective (MiB/s)",
        ["transfer (bytes)", "independent", "collective", "collective gain"],
        rows,
    )

    # Crossover shape: big win at 47008 B, shrinking gain, parity once
    # records reach the chunk size (the last two sizes only jitter
    # around 1.0 by the collective call's per-op latency).
    gains = [r[(s, "collective")] / r[(s, "independent")] for s in SIZES]
    assert gains[0] > 3.0  # ior-hard-sized records
    assert gains[0] > gains[1] > gains[2]  # monotone shrink until parity
    assert abs(gains[-2] - 1.0) < 0.05
    assert abs(gains[-1] - 1.0) < 0.05  # chunk-aligned records: parity
