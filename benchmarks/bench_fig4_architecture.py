"""Fig. 4 — the modular high-level architecture.

The figure's claims: knowledge persists to either a *local* or a
*global/remote* database interchangeably ("the separation of databases
gives us the flexibility to allow our tools to be applied in both
public and private or combined environments"), and use-case modules
plug into the usage phase "with minimal effort".

Reproduced shapes: (a) the identical knowledge object round-trips
bit-equal through a local-path database and a sqlite:// URL database;
(b) the user chooses what to share — a subset pushed to the global
database stays a subset; (c) a new use-case module registers, runs in
the cycle's usage phase, and unregisters without touching anything
else.
"""

import tempfile
from pathlib import Path

from conftest import report

from repro.benchmarks_io.ior import parse_command, render_ior_output, run_ior
from repro.core.extraction import parse_ior_output
from repro.core.persistence import KnowledgeDatabase, KnowledgeRepository
from repro.core.registry import UseCaseModule, default_module_registry
from repro.iostack.stack import Testbed


def _make_knowledge(n=3):
    testbed = Testbed.fuchs_csc(seed=404)
    out = []
    for i in range(n):
        cfg = parse_command(
            f"ior -a mpiio -b 4m -t {2 ** i}m -s 4 -F -i 2 -o /scratch/f4/t{i} -k"
        )
        res = run_ior(cfg, testbed, num_nodes=2, tasks_per_node=10, run_id=i)
        out.append(parse_ior_output(render_ior_output(res)))
    return out


def _round_trip_both_paths(objects, tmp):
    local_target = Path(tmp) / "local.db"
    remote_url = f"sqlite:///{tmp}/global.db"
    results = {}
    for label, target, keep in (("local", local_target, len(objects)), ("global", remote_url, 1)):
        with KnowledgeDatabase(target) as db:
            repo = KnowledgeRepository(db)
            shared = objects[:keep]  # the user shares only a subset globally
            ids = [repo.save(k) for k in shared]
            loaded = [repo.load(i) for i in ids]
            results[label] = loaded
    return results


def test_fig4_modular_architecture(benchmark):
    def _run():
        objects = _make_knowledge()
        with tempfile.TemporaryDirectory() as tmp:
            stores = _round_trip_both_paths(objects, tmp)
        return objects, stores

    objects, stores = benchmark.pedantic(_run, rounds=1, iterations=1)

    report(
        "Fig. 4: local vs global persistence paths",
        ["store", "objects stored", "round-trip bw_mean of object 1 (MiB/s)"],
        [
            ["local path", len(stores["local"]), round(stores["local"][0].summary("write").bw_mean, 2)],
            ["sqlite:// URL", len(stores["global"]), round(stores["global"][0].summary("write").bw_mean, 2)],
        ],
    )

    # (a) both persistence paths are lossless and equivalent.
    for loaded in (stores["local"][0], stores["global"][0]):
        assert loaded.command == objects[0].command
        assert loaded.summary("write").bandwidth_series() == (
            objects[0].summary("write").bandwidth_series()
        )
    # (b) sharing is selective: the global store holds only the shared subset.
    assert len(stores["local"]) == 3
    assert len(stores["global"]) == 1

    # (c) a new use-case module plugs in with no changes elsewhere.
    registry = default_module_registry()
    baseline_modules = registry.names()
    registry.register(
        UseCaseModule(
            name="throughput-census",
            description="count knowledge objects above 1 GiB/s",
            run=lambda ks: sum(
                1 for k in ks if getattr(k, "summaries", None) and k.summary("write").bw_mean > 1024
            ),
        )
    )
    results = registry.run_all(objects)
    assert set(results) == set(baseline_modules) | {"throughput-census"}
    assert isinstance(results["throughput-census"], int)
    registry.unregister("throughput-census")
    assert registry.names() == baseline_modules
