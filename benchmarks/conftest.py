"""Shared helpers for the figure-reproduction benchmark harness.

Every bench module regenerates one figure (or demonstrated use case) of
the paper, asserts its *shape* claim, and prints the paper-vs-measured
series via :func:`report`.
"""

from __future__ import annotations

from typing import Sequence

from repro.util.tables import render_table


def report(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print one figure-reproduction table to the bench output."""
    print(f"\n=== {title} ===")
    print(render_table(headers, rows))
