"""Fig. 3 — I/O performance impact factors.

The figure enumerates the factors that move I/O performance (access
pattern, transfer size, striping, scale, API, synchronization,
contention).  Reproduced shape: a one-factor-at-a-time sweep on the
simulated system moves throughput in the expected direction for every
factor — which is exactly the knowledge a user gains from the paper's
workflow.
"""

from conftest import report

from repro.benchmarks_io.ior import IORConfig, run_ior
from repro.iostack.stack import Testbed
from repro.pfs import StripeLayout
from repro.pfs.perfmodel import PhaseContext
from repro.util.units import KIB, MIB


def _bw(testbed, run_id, **cfg_kw):
    defaults = dict(
        api="POSIX", block_size=8 * MIB, transfer_size=1 * MIB, segment_count=4,
        iterations=2, test_file=f"/scratch/f3/t{run_id}", file_per_proc=True,
        keep_file=True,
    )
    defaults.update(cfg_kw)
    nodes = defaults.pop("nodes", 2)
    tpn = defaults.pop("tasks_per_node", 20)
    res = run_ior(IORConfig(**defaults), testbed, num_nodes=nodes, tasks_per_node=tpn,
                  run_id=run_id)
    return res.bandwidth_summary("write").mean


def _run_sweeps():
    testbed = Testbed.fuchs_csc(seed=303)
    out = {}
    # Factor 1: transfer size.
    out["xfer_64k"] = _bw(testbed, 1, transfer_size=64 * KIB, block_size=8 * MIB)
    out["xfer_4m"] = _bw(testbed, 2, transfer_size=4 * MIB, block_size=8 * MIB)
    # Factor 2: scale (one task per node, inside the scaling region).
    out["nodes_1"] = _bw(testbed, 3, nodes=1, tasks_per_node=1)
    out["nodes_4"] = _bw(testbed, 4, nodes=4, tasks_per_node=1)
    # Factor 3: contention (tasks per node on one node set).
    out["procs_40"] = _bw(testbed, 5, nodes=2, tasks_per_node=20)
    out["procs_4"] = _bw(testbed, 6, nodes=2, tasks_per_node=2)
    # Factor 4: access mode (shared vs fpp at small transfers).
    out["fpp_small"] = _bw(testbed, 7, transfer_size=47008, block_size=47008,
                           segment_count=32)
    out["shared_small"] = _bw(testbed, 8, api="MPIIO", file_per_proc=False,
                              transfer_size=47008, block_size=47008, segment_count=32)
    # Factor 5: API layering (common run_id => paired noise draws, so
    # the comparison isolates the deterministic layer overhead).
    out["api_posix"] = _bw(testbed, 9)
    out["api_hdf5"] = _bw(testbed, 9, api="HDF5", test_file="/scratch/f3/t9h")
    # Factor 6: synchronization (fsync), same paired-noise treatment.
    out["nofsync"] = _bw(testbed, 11)
    out["fsync"] = _bw(testbed, 11, fsync=True, test_file="/scratch/f3/t11f")
    # Factor 7: striping width (single stream over 1 vs 4 targets).
    fs = testbed.fs
    ctx = PhaseContext(active_procs=1, procs_per_node=1, node_factors=(1.0,), access="write")
    narrow = StripeLayout(chunk_size=512 * KIB, target_ids=(101,))
    wide = StripeLayout(chunk_size=512 * KIB, target_ids=(101, 102, 103, 104))
    out["stripe_1"] = fs.model.per_rank_bandwidth_bps(8 * MIB, narrow, ctx) / MIB
    out["stripe_4"] = fs.model.per_rank_bandwidth_bps(8 * MIB, wide, ctx) / MIB
    return out


def test_fig3_impact_factors(benchmark):
    r = benchmark.pedantic(_run_sweeps, rounds=1, iterations=1)

    rows = [
        ["transfer size", "64 KiB -> 4 MiB", round(r["xfer_64k"], 1), round(r["xfer_4m"], 1), "up"],
        ["scale (nodes)", "1 -> 4 (1 task/node)", round(r["nodes_1"], 1), round(r["nodes_4"], 1), "up"],
        ["contention", "4 -> 40 procs (per-proc bw)", round(r["procs_4"] / 4, 1), round(r["procs_40"] / 40, 1), "down"],
        ["access mode", "fpp -> shared (47 KB ops)", round(r["fpp_small"], 1), round(r["shared_small"], 1), "down"],
        ["API layer", "POSIX -> HDF5", round(r["api_posix"], 1), round(r["api_hdf5"], 1), "down"],
        ["fsync", "off -> on", round(r["nofsync"], 1), round(r["fsync"], 1), "down"],
        ["striping", "1 -> 4 targets (1 stream)", round(r["stripe_1"], 1), round(r["stripe_4"], 1), "up"],
    ]
    report(
        "Fig. 3: one-factor-at-a-time impact on write throughput (MiB/s)",
        ["factor", "sweep", "from", "to", "expected direction"],
        rows,
    )

    assert r["xfer_4m"] > 1.3 * r["xfer_64k"]
    assert r["nodes_4"] > 1.5 * r["nodes_1"]
    assert r["procs_40"] / 40 < r["procs_4"] / 4  # per-process share shrinks
    assert r["procs_40"] > r["procs_4"]  # but aggregate still grows
    assert r["shared_small"] < 0.6 * r["fpp_small"]
    assert r["api_hdf5"] < r["api_posix"]
    assert r["fsync"] < r["nofsync"]
    assert r["stripe_4"] > 1.5 * r["stripe_1"]
