"""Ablation — stripe width and RAID scheme.

DESIGN.md's performance model stripes files chunk-round-robin over a
target subset and derates writes by the RAID scheme's parity cost.
This ablation verifies both knobs end to end through the benchmark
path: single-stream throughput grows with stripe width up to the
per-client ceiling, wide striping stops paying off under full
concurrency (the pool is already saturated), and RAID5/6 write
penalties order correctly while leaving reads untouched.
"""

from conftest import report

from repro.benchmarks_io.ior import IORConfig, run_ior
from repro.iostack.stack import Testbed
from repro.pfs import BeeGFSSpec, RAIDScheme
from repro.pfs.perfmodel import PhaseContext
from repro.pfs.layout import StripeLayout
from repro.util.units import KIB, MIB


def _stripe_sweep():
    testbed = Testbed.fuchs_csc(seed=702)
    fs = testbed.fs
    widths = (1, 2, 4, 8)
    single, loaded = {}, {}
    for width in widths:
        layout = StripeLayout(
            chunk_size=512 * KIB, target_ids=fs.pool.pick_targets(width, 0)
        )
        ctx1 = PhaseContext(
            active_procs=1, procs_per_node=1, node_factors=(1.0,), access="write"
        )
        ctx80 = PhaseContext(
            active_procs=80, procs_per_node=20, node_factors=(1.0,) * 4, access="write"
        )
        single[width] = fs.model.per_rank_bandwidth_bps(8 * MIB, layout, ctx1) / MIB
        loaded[width] = 80 * fs.model.per_rank_bandwidth_bps(8 * MIB, layout, ctx80) / MIB
    return single, loaded


def _raid_sweep():
    out = {}
    for scheme in (RAIDScheme.RAID0, RAIDScheme.RAID10, RAIDScheme.RAID5, RAIDScheme.RAID6):
        testbed = Testbed(
            "fuchs-csc", fs_spec=BeeGFSSpec(raid_scheme=scheme), seed=703
        )
        cfg = IORConfig(
            api="POSIX", block_size=8 * MIB, transfer_size=2 * MIB, segment_count=4,
            iterations=2, test_file="/scratch/abl2/t", file_per_proc=True, keep_file=True,
        )
        res = run_ior(cfg, testbed, num_nodes=2, tasks_per_node=20, run_id=1)
        out[scheme] = (
            res.bandwidth_summary("write").mean,
            res.bandwidth_summary("read").mean,
        )
    return out


def test_ablation_striping_and_raid(benchmark):
    def _run():
        return _stripe_sweep(), _raid_sweep()

    (single, loaded), raid = benchmark.pedantic(_run, rounds=1, iterations=1)

    report(
        "Ablation: stripe width (write MiB/s)",
        ["stripe targets", "1 stream", "80 streams aggregate"],
        [[w, round(single[w], 1), round(loaded[w], 1)] for w in sorted(single)],
    )
    report(
        "Ablation: RAID scheme (MiB/s)",
        ["scheme", "write", "read"],
        [[s, round(w, 1), round(r, 1)] for s, (w, r) in raid.items()],
    )

    # Single stream: wider stripes help monotonically until the client
    # ceiling; 4 targets must beat 1 by >1.5x.
    assert single[2] > single[1]
    assert single[4] > 1.5 * single[1]
    assert single[8] >= single[4] * 0.99
    # Full concurrency: stripe width no longer matters (pool-bound).
    assert abs(loaded[8] - loaded[1]) / loaded[1] < 0.05
    # RAID: parity cost orders writes RAID0 > RAID10 > RAID5 > RAID6 ...
    writes = [raid[s][0] for s in (RAIDScheme.RAID0, RAIDScheme.RAID10,
                                   RAIDScheme.RAID5, RAIDScheme.RAID6)]
    assert writes == sorted(writes, reverse=True)
    # ... while reads are unaffected by the scheme (same noise draws).
    reads = [raid[s][1] for s in raid]
    assert max(reads) - min(reads) < 1e-6 * max(reads)
