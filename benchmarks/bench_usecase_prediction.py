"""§IV / §VI — performance prediction and expectation bands.

"Using our generic workflow, representative and reproducible data sets
can be created for predictive modeling and then used to predict I/O
performance" ... "the knowledge objects can be used as training data
for linear regression analysis to make I/O performance predictions"
... "upper and lower performance boundaries can be determined and thus
provide the user with a realistic expectation."

Reproduced shapes: the regression trained on a JUBE sweep predicts a
held-out configuration within a modest relative error; the prediction
interval brackets the measurement; the recommender picks the sweep's
genuinely best configuration.
"""

import tempfile

from conftest import report

from repro.benchmarks_io.ior import parse_command, render_ior_output, run_ior
from repro.core.cycle import KnowledgeCycle
from repro.core.extraction import parse_ior_output
from repro.core.persistence import KnowledgeDatabase
from repro.core.usage import FeatureVector, PerformancePredictor, Recommender
from repro.iostack.stack import Testbed
from repro.util.units import MIB

SWEEP_XML = """
<jube>
  <benchmark name="training" outpath="ignored">
    <parameterset name="p">
      <parameter name="transfersize">256k,1m,4m,8m</parameter>
      <parameter name="nodes">1,2,4</parameter>
      <parameter name="taskspernode">20</parameter>
      <parameter name="command">ior -a posix -b 8m -t $transfersize -s 4 -F -i 2 -o /scratch/up/test -k</parameter>
    </parameterset>
    <step name="run" work="ior"><use>p</use></step>
  </benchmark>
</jube>
"""


def _train_and_validate():
    testbed = Testbed.fuchs_csc(seed=606)
    with tempfile.TemporaryDirectory() as workspace:
        with KnowledgeDatabase(":memory:") as db:
            cycle = KnowledgeCycle(testbed, db, workspace=workspace)
            base = cycle.run_cycle(SWEEP_XML).knowledge

    model = PerformancePredictor(operation="write").fit(base)

    # Held-out configuration (transfer size the sweep never ran).
    holdout_res = run_ior(
        parse_command("ior -a posix -b 8m -t 2m -s 4 -F -i 2 -o /scratch/up/hold -k"),
        testbed, num_nodes=2, tasks_per_node=20, run_id=999,
    )
    holdout = parse_ior_output(render_ior_output(holdout_res))
    features = FeatureVector(transfer_size=2 * MIB, num_tasks=40, num_nodes=2, api="POSIX")
    predicted = model.predict(features)
    lo, hi = model.predict_interval(features)
    actual = holdout.summary("write").bw_mean
    recommendation = Recommender(base).recommend(operation="write", num_tasks=80)
    best_actual = max(
        (k for k in base if k.num_tasks == 80),
        key=lambda k: k.summary("write").bw_mean,
    )
    return model, predicted, (lo, hi), actual, recommendation, best_actual


def test_usecase_prediction(benchmark):
    model, predicted, (lo, hi), actual, recommendation, best_actual = benchmark.pedantic(
        _train_and_validate, rounds=1, iterations=1
    )

    rel_error = abs(predicted - actual) / actual
    report(
        "§IV: regression prediction vs held-out measurement (write MiB/s)",
        ["quantity", "value"],
        [
            ["training samples", model.n_samples_],
            ["predicted", round(predicted, 1)],
            ["expectation band low", round(lo, 1)],
            ["expectation band high", round(hi, 1)],
            ["measured (held out)", round(actual, 1)],
            ["relative error", f"{rel_error * 100:.1f}%"],
        ],
    )

    assert model.n_samples_ == 12
    # Prediction quality: within 30% on a config the model never saw.
    assert rel_error < 0.30
    # The expectation band brackets the measurement (realistic expectation).
    assert lo <= actual <= hi
    assert lo < predicted < hi
    # The recommender returns the sweep's actual best configuration.
    assert recommendation.knowledge_id == best_actual.knowledge_id
    assert recommendation.expected_bw_mean == best_actual.summary("write").bw_mean
