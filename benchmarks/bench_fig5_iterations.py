"""Fig. 5 — performance analysis through multiple iterations.

Paper (§V-E2): running ``ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6
-o ... -k`` on 4 nodes x 20 cores of FUCHS-CSC, "the average throughput
for write for iteration 1, 3, 4, 5, 6 is 2850 MiB, the throughput for
iteration 2 is 1251 MiB, which is less than half the average
throughput.  Similarly, this phenomenon is evident when looking at the
number of operations."

Reproduced shape: five healthy write iterations cluster near a common
mean in the ~2850 MiB/s range; the second iteration collapses below
~55% of that mean; the operation counts dip with it; reads stay flat;
and the anomaly detector flags exactly iteration 2.
"""

from conftest import report

from repro.benchmarks_io.ior import parse_command, render_ior_output, run_ior
from repro.core.extraction import parse_ior_output
from repro.core.usage import IterationAnomalyDetector
from repro.iostack.stack import Testbed
from repro.pfs import Fault

PAPER_COMMAND = "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k"
PAPER_HEALTHY_MEAN = 2850.0
PAPER_ANOMALY = 1251.0


def _run_fig5():
    testbed = Testbed.fuchs_csc(seed=2022)
    testbed.fs.faults.add(
        Fault(name="degraded-iter2", factor=0.44,
              when={"benchmark": "ior", "iteration": 1, "op": "write"})
    )
    result = run_ior(parse_command(PAPER_COMMAND), testbed, num_nodes=4, tasks_per_node=20)
    return parse_ior_output(render_ior_output(result))


def test_fig5_iteration_anomaly(benchmark):
    knowledge = benchmark.pedantic(_run_fig5, rounds=1, iterations=1)

    writes = knowledge.summary("write").bandwidth_series()
    write_ops = knowledge.summary("write").iops_series()
    reads = knowledge.summary("read").bandwidth_series()
    healthy = [bw for i, bw in enumerate(writes) if i != 1]
    healthy_mean = sum(healthy) / len(healthy)

    rows = []
    for i in range(6):
        paper_bw = PAPER_ANOMALY if i == 1 else PAPER_HEALTHY_MEAN
        rows.append([i + 1, paper_bw, round(writes[i], 1), round(write_ops[i], 1),
                     round(reads[i], 1)])
    report(
        "Fig. 5: write/read throughput and ops over 6 iterations",
        ["iteration", "paper write (MiB/s)", "measured write", "measured write ops/s",
         "measured read"],
        rows,
    )

    # Shape 1: the anomalous iteration is < 55% of the healthy mean
    # (the paper's 1251 vs 2850 is 44%).
    assert writes[1] < 0.55 * healthy_mean
    # Shape 2: healthy iterations cluster near the paper's magnitude.
    assert 2300 < healthy_mean < 3400
    assert all(abs(bw - healthy_mean) / healthy_mean < 0.15 for bw in healthy)
    # Shape 3: "this phenomenon is evident when looking at the number of
    # operations" — ops dip with throughput.
    healthy_ops = [v for i, v in enumerate(write_ops) if i != 1]
    assert write_ops[1] < 0.55 * (sum(healthy_ops) / len(healthy_ops))
    # Shape 4: reads are unaffected by the write-phase fault.
    assert min(reads) > 0.8 * max(reads)
    # Shape 5: the automated detector reports exactly iteration 2 (1-based).
    anomalies = IterationAnomalyDetector().detect(knowledge)
    assert [a.iteration for a in anomalies if a.operation == "write"] == [2]
    a = next(a for a in anomalies if a.operation == "write")
    assert a.severity > 1.8
    assert "iops" in a.corroborated_by
