"""§V-E1 — usage example I: new knowledge generation.

"First, the previously applied command is selected and then loaded from
the corresponding configuration in the view and can be modified as
required.  Afterward, the new command can be created by clicking
'create configuration'.  With the just created configuration, a new
benchmark run can be started ... and thus new knowledge can be
generated.  Due to the generic workflow, this process can be repeated
as often as required."

Reproduced shapes: the stored command round-trips exactly; a modified
configuration regenerates, runs, and yields a new knowledge object with
the modified pattern; repeating the loop keeps growing the base.
"""

import tempfile

from conftest import report

from repro.core.cycle import KnowledgeCycle
from repro.core.persistence import KnowledgeDatabase
from repro.core.usage import config_from_knowledge, create_configuration, generate_jube_config
from repro.iostack.stack import Testbed
from repro.util.units import MIB

PAPER_COMMAND = "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k"

INITIAL_XML = f"""
<jube>
  <benchmark name="initial" outpath="ignored">
    <parameterset name="p">
      <parameter name="command">{PAPER_COMMAND}</parameter>
      <parameter name="nodes">4</parameter>
      <parameter name="taskspernode">20</parameter>
    </parameterset>
    <step name="run" work="ior"><use>p</use></step>
  </benchmark>
</jube>
"""


def _run_regeneration_loop():
    testbed = Testbed.fuchs_csc(seed=505)
    counts = []
    with tempfile.TemporaryDirectory() as workspace:
        with KnowledgeDatabase(":memory:") as db:
            cycle = KnowledgeCycle(testbed, db, workspace=workspace)
            first = cycle.run_cycle(INITIAL_XML)
            counts.append(db.table_count("performances"))
            knowledge = first.knowledge[0]

            regenerated = create_configuration(knowledge, transfer_size=1 * MIB, iterations=3)
            xml = generate_jube_config(knowledge, sweep={"transfersize": ["1m", "4m"]},
                                       nodes=2, tasks_per_node=10)
            second = cycle.run_cycle(xml)
            counts.append(db.table_count("performances"))
            third = cycle.run_cycle(xml)
            counts.append(db.table_count("performances"))
    return knowledge, regenerated, second, counts


def test_usecase_regeneration(benchmark):
    knowledge, regenerated, second, counts = benchmark.pedantic(
        _run_regeneration_loop, rounds=1, iterations=1
    )

    report(
        "§V-E1: knowledge regeneration loop",
        ["revolution", "knowledge objects in base"],
        [[i + 1, c] for i, c in enumerate(counts)],
    )

    # The stored command is the paper's command, verbatim round trip.
    assert knowledge.command == PAPER_COMMAND
    assert config_from_knowledge(knowledge).to_command() == PAPER_COMMAND
    # 'create configuration' applied the modification and kept the rest.
    assert "-t 1m" in regenerated and "-i 3" in regenerated and "-s 40" in regenerated
    # The regenerated sweep ran and produced the modified patterns.
    sizes = sorted(k.parameters["xfersize_bytes"] for k in second.knowledge)
    assert sizes == [1 * MIB, 4 * MIB]
    # "repeated as often as required": monotone growth, one object for the
    # initial run plus two per sweep revolution.
    assert counts == [1, 3, 5]
