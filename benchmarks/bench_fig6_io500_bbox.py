"""Fig. 6 — anomaly detection through IO500 boundary test cases.

Paper (§V-E2): IO500 with 40 cores on FUCHS-CSC; a one-dimensional
bounding box over ior-easy and ior-hard.  "While the variance for
ior-easy write and ior-hard write is quite large, the throughput for
ior-easy read and ior-hard read remains the same.  A possible cause for
the bad ior-easy read result could be a broken node."

Reproduced shapes: (a) box ordering — ior-easy beats ior-hard for both
operations; (b) write variance is much larger than read variance across
repeated runs; (c) a run with a broken storage node lands below the box
on its read results and is flagged.
"""

import numpy as np
from conftest import report

from repro.benchmarks_io.io500 import IO500Config, render_io500_output, run_io500
from repro.core.extraction import parse_io500_output
from repro.core.usage import build_bounding_box
from repro.iostack.stack import Testbed
from repro.pfs import Fault

N_REFERENCE_RUNS = 5


def _reference_runs():
    testbed = Testbed.fuchs_csc(seed=650)
    runs = []
    for i in range(N_REFERENCE_RUNS):
        result = run_io500(IO500Config(workdir=f"/scratch/io500/ref{i}"), testbed,
                           num_nodes=2, tasks_per_node=20, run_id=i)
        runs.append(parse_io500_output(render_io500_output(result)))
    # One more run on a system with a broken storage node slowing reads.
    testbed.fs.faults.add(
        Fault(name="broken-node", factor=0.35, scope="server", server="stor01",
              when={"op": "read"})
    )
    broken_result = run_io500(IO500Config(workdir="/scratch/io500/broken"), testbed,
                              num_nodes=2, tasks_per_node=20, run_id=99)
    return runs, parse_io500_output(render_io500_output(broken_result))


def test_fig6_bounding_box(benchmark):
    runs, broken = benchmark.pedantic(_reference_runs, rounds=1, iterations=1)

    cases = ("ior-easy-write", "ior-easy-read", "ior-hard-write", "ior-hard-read")
    series = {name: np.array([r.value(name) for r in runs]) for name in cases}

    rows = [
        [name, round(float(series[name].min()), 3), round(float(series[name].max()), 3),
         round(float(series[name].std() / series[name].mean()), 4),
         round(broken.value(name), 3)]
        for name in cases
    ]
    report(
        "Fig. 6: IO500 boundary test cases over "
        f"{N_REFERENCE_RUNS} healthy runs + 1 broken-node run (GiB/s)",
        ["test case", "min", "max", "rel. variance (CV)", "broken-node run"],
        rows,
    )

    # Shape (a): easy > hard on both operations, every run.
    assert (series["ior-easy-write"] > series["ior-hard-write"]).all()
    assert (series["ior-easy-read"] > series["ior-hard-read"]).all()

    # Shape (b): "the variance for ... write is quite large, the
    # throughput for ... read remains the same" — compare coefficients
    # of variation.
    cv = {name: float(series[name].std() / series[name].mean()) for name in cases}
    assert cv["ior-easy-write"] > 2 * cv["ior-easy-read"]
    assert cv["ior-hard-write"] > 2 * cv["ior-hard-read"]

    # Shape (c): the broken-node run falls below the box on the easy
    # read and is flagged; its writes stay within expectation.
    box = build_bounding_box(runs)
    anomalies = box.anomalies(broken)
    assert "ior-easy-read" in anomalies
    assert "ior-easy-write" not in anomalies
    assert "ior-hard-write" not in anomalies
