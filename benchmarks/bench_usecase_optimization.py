"""§IV — the I/O optimization use case, closed loop.

"Given the complexity of the parallel I/O stack and the lack of
optimization knowledge, automated tools can help the user to exploit
I/O resources more efficiently ... the users can be suggested with
suitable configurations via a recommendation module" and §VI plans the
"I/O pattern extractor and recommendation module".

Reproduced loop: profile a badly-configured application (small strided
writes into one shared file) with Darshan → extract its I/O pattern →
the optimizer diagnoses the pattern and emits MPI-IO hints → re-running
with the hints yields a large, assert-checked speedup.
"""

from conftest import report

from repro.benchmarks_io.ior import IORConfig, run_ior
from repro.core.usage import IOOptimizer, extract_pattern, validate_suggestion
from repro.darshan import DarshanProfiler, DarshanReport
from repro.iostack.stack import Testbed


def _optimize_loop():
    testbed = Testbed.fuchs_csc(seed=801)
    bad_config = IORConfig(
        api="MPIIO", block_size=47008, transfer_size=47008, segment_count=48,
        iterations=2, test_file="/scratch/opt/app", file_per_proc=False,
        keep_file=True, read_file=False,
    )
    # Step 1: profile the badly-configured run.
    profiler = DarshanProfiler(enable_dxt=True)
    res = run_ior(bad_config, testbed, num_nodes=2, tasks_per_node=20,
                  run_id=5, tracer=profiler)
    log = profiler.finalize("app", res.num_tasks, res.start_offset_s, res.end_offset_s)
    # Step 2: extract the pattern.
    pattern = extract_pattern(DarshanReport(log))
    # Step 3: diagnose and suggest.
    optimizer = IOOptimizer(
        fs_chunk_size=testbed.fs.spec.default_chunk_size,
        num_targets=len(testbed.fs.pool.targets),
    )
    suggestions = optimizer.suggest(pattern)
    hints = optimizer.suggested_hints(pattern)
    # Step 4: validate on the system (paired noise draws).
    before, after = validate_suggestion(
        testbed, bad_config, hints, num_nodes=2, tasks_per_node=20, run_id=7
    )
    return pattern, suggestions, hints, before, after


def test_usecase_optimization(benchmark):
    pattern, suggestions, hints, before, after = benchmark.pedantic(
        _optimize_loop, rounds=1, iterations=1
    )

    report(
        "§IV optimization loop: profile -> pattern -> hints -> validate",
        ["step", "result"],
        [
            ["pattern: shared file", pattern.shared_file],
            ["pattern: record size (bytes)", pattern.representative_write_size],
            ["suggestions", len(suggestions)],
            ["suggested romio_cb_write", hints.romio_cb_write],
            ["write MiB/s before", round(before, 1)],
            ["write MiB/s after", round(after, 1)],
            ["speedup", round(after / before, 2)],
        ],
    )

    # The pattern extractor recognised the anti-pattern.
    assert pattern.shared_file
    assert pattern.representative_write_size < 512 * 1024
    # The optimizer diagnosed collective buffering as the fix.
    assert hints.romio_cb_write == "enable"
    assert any(s.parameter == "romio_cb_write" for s in suggestions)
    # And the fix works: >2x measured speedup on the same system.
    assert after > 2.0 * before
