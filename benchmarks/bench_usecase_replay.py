"""§IV — workload generation use case: trace-driven what-if simulation.

"the knowledge obtained from our generic workflow can be used to ...
generate ... synthetic workload for simulation and thus drive the
simulation or initialize new evaluation processes."

Reproduced loop: record a run with DXT, replay the exact trace against
three what-if targets.  Shapes: the same system replays at ~1x; doubling
the storage targets speeds the workload up; a degraded storage server
slows it down; and the synthetic IOR approximation of the same pattern
reproduces the original throughput within a factor band.
"""

from conftest import report

from repro.benchmarks_io.ior import IORConfig, run_ior
from repro.core.usage import extract_pattern, ior_config_from_pattern
from repro.darshan import DarshanProfiler, DarshanReport, replay_trace
from repro.iostack.stack import Testbed
from repro.pfs import BeeGFSSpec
from repro.util.units import MIB


def _record_and_replay():
    origin = Testbed.fuchs_csc(seed=901)
    profiler = DarshanProfiler(enable_dxt=True)
    config = IORConfig(
        api="MPIIO", block_size=8 * MIB, transfer_size=1 * MIB, segment_count=2,
        iterations=1, test_file="/scratch/wg/app", file_per_proc=True, keep_file=True,
    )
    original = run_ior(config, origin, num_nodes=1, tasks_per_node=8, tracer=profiler)
    trace = DarshanReport(
        profiler.finalize("app", original.num_tasks, original.start_offset_s,
                          original.end_offset_s)
    )

    speedups = {}
    same = Testbed.fuchs_csc(seed=902)
    speedups["same"] = replay_trace(trace, same.start_job("r", 1, 8)).speedup
    bigger = Testbed(
        "fuchs-csc", fs_spec=BeeGFSSpec(num_storage_servers=8, targets_per_server=2),
        seed=902,
    )
    speedups["2x targets"] = replay_trace(trace, bigger.start_job("r", 1, 8)).speedup
    degraded = Testbed.fuchs_csc(seed=902)
    degraded.fs.degrade_server("stor01", 0.2)
    speedups["degraded server"] = replay_trace(
        trace, degraded.start_job("r", 1, 8)
    ).speedup

    # Synthetic approximation of the same workload (pattern -> IOR).
    pattern = extract_pattern(trace)
    synth_cfg = ior_config_from_pattern(pattern, test_file="/scratch/wg/syn")
    synth_tb = Testbed.fuchs_csc(seed=903)
    synthetic = run_ior(synth_cfg, synth_tb, num_nodes=1, tasks_per_node=pattern.nprocs)
    return original, speedups, synthetic


def test_usecase_workload_generation(benchmark):
    original, speedups, synthetic = benchmark.pedantic(
        _record_and_replay, rounds=1, iterations=1
    )

    orig_bw = original.bandwidth_summary("write").mean
    synth_bw = synthetic.bandwidth_summary("write").mean
    report(
        "§IV workload generation: DXT replay what-ifs + synthetic IOR",
        ["scenario", "value"],
        [
            ["replay on same system (speedup)", round(speedups["same"], 2)],
            ["replay on 2x storage targets", round(speedups["2x targets"], 2)],
            ["replay on degraded server", round(speedups["degraded server"], 2)],
            ["original write MiB/s", round(orig_bw, 1)],
            ["synthetic replay write MiB/s", round(synth_bw, 1)],
        ],
    )

    assert 0.7 < speedups["same"] < 1.4  # same hardware, ~parity
    assert speedups["2x targets"] > 1.3  # more devices help
    assert speedups["degraded server"] < 0.95  # broken node hurts
    assert speedups["2x targets"] > speedups["same"] > speedups["degraded server"]
    # The synthetic IOR reproduces the original throughput's magnitude.
    assert 0.5 < synth_bw / orig_bw < 2.0
