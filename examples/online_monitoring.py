#!/usr/bin/env python
"""Online-mode analysis (§III: the workflow "can be used in both online
and offline fashion").

Attaches the streaming monitor *and* the Darshan profiler to the same
run through a tee tracer.  A storage fault strikes mid-run; the online
monitor raises an alert while the run executes — no waiting for the
offline extraction — and the Darshan log is still produced for the
usual offline cycle afterwards.

Run:  python examples/online_monitoring.py
"""

from repro.benchmarks_io.ior import IORConfig, run_ior
from repro.core.usage import OnlineMonitor
from repro.darshan import DarshanProfiler, DarshanReport
from repro.iostack.stack import Testbed
from repro.iostack.tracing import TeeTracer
from repro.pfs import Fault
from repro.util.units import MIB


def main() -> None:
    testbed = Testbed.fuchs_csc(seed=77)
    # The fault strikes during the second iteration's write phase.
    testbed.fs.faults.add(
        Fault(name="mid-run-degradation", factor=0.3,
              when={"benchmark": "ior", "iteration": 1, "op": "write"})
    )

    monitor = OnlineMonitor(interval_s=0.5, drop_threshold=0.6)
    profiler = DarshanProfiler()
    config = IORConfig(
        api="MPIIO", block_size=4 * MIB, transfer_size=2 * MIB, segment_count=20,
        iterations=3, test_file="/scratch/live/test", file_per_proc=True,
        keep_file=True, read_file=False,
    )
    print("Running 3 write iterations with live monitoring "
          "(fault injected into iteration 2)...\n")
    result = run_ior(config, testbed, num_nodes=2, tasks_per_node=10,
                     tracer=TeeTracer(monitor, profiler))

    print("Live throughput (0.5 s intervals):")
    series = monitor.throughput_series()
    peak = max(v for _, v in series)
    for t, v in series:
        bar = "#" * int(v / peak * 50)
        print(f"  {t:6.2f}s {v:8.0f} MiB/s |{bar}")

    alerts = monitor.finish()
    print(f"\nOnline alerts raised during the run: {len(alerts)}")
    for alert in alerts:
        print(f"  ! t={alert.time_s:.2f}s  {alert.message}")

    # The offline path still works from the same instrumented run.
    report = DarshanReport(
        profiler.finalize("ior", result.num_tasks, result.start_offset_s,
                          result.end_offset_s)
    )
    print(f"\nOffline Darshan record intact: "
          f"{report.counters('POSIX')['POSIX_WRITES']:.0f} writes, "
          f"{report.total_bytes('POSIX')[1] / MIB:.0f} MiB written.")


if __name__ == "__main__":
    main()
