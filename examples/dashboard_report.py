#!/usr/bin/env python
"""Generate a self-contained HTML dashboard for a knowledge base.

Runs a small campaign (an IOR sweep with an injected anomaly plus two
IO500 runs), stores everything through the knowledge cycle, and renders
the whole base into one HTML file with inline SVG charts — the
"complex dashboards" end of §III's analysis phase.

Run:  python examples/dashboard_report.py [output.html]
"""

import sys
import tempfile
from pathlib import Path

from repro import KnowledgeCycle, KnowledgeDatabase, Testbed
from repro.benchmarks_io.io500 import IO500Config, render_io500_output, run_io500
from repro.core.explorer import write_dashboard
from repro.core.extraction import parse_io500_output
from repro.pfs import Fault

SWEEP_XML = """
<jube>
  <benchmark name="campaign" outpath="bench_run">
    <parameterset name="pattern">
      <parameter name="transfersize">1m,2m,4m</parameter>
      <parameter name="command">ior -a mpiio -b 8m -t $transfersize -s 8 -F -e -i 5 -o /scratch/dash/test -k</parameter>
      <parameter name="nodes">2</parameter>
      <parameter name="taskspernode">20</parameter>
    </parameterset>
    <step name="run" work="ior">
      <use>pattern</use>
    </step>
  </benchmark>
</jube>
"""


def main() -> None:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("dashboard.html")
    testbed = Testbed.fuchs_csc(seed=365)
    # Make the dashboard interesting: degrade one iteration of run 0.
    testbed.fs.faults.add(
        Fault(name="demo-anomaly", factor=0.4,
              when={"benchmark": "ior", "iteration": 2, "op": "write", "run": 0})
    )

    with tempfile.TemporaryDirectory() as workspace:
        with KnowledgeDatabase(":memory:") as db:
            print("Running the IOR campaign (3 configurations x 5 iterations)...")
            cycle = KnowledgeCycle(testbed, db, workspace=workspace)
            result = cycle.run_cycle(SWEEP_XML)

            print("Running two IO500 reference runs...")
            io500_runs = []
            for i in range(2):
                io5 = run_io500(IO500Config(workdir=f"/scratch/dash500/{i}"),
                                testbed, num_nodes=2, tasks_per_node=20, run_id=i)
                parsed = parse_io500_output(render_io500_output(io5))
                parsed.iofh_id = i + 1
                io500_runs.append(parsed)

            print("Rendering the dashboard...")
            write_dashboard(
                result.knowledge, out_path, io500_runs=io500_runs,
                title="FUCHS-CSC I/O knowledge — demo campaign",
            )
    size_kib = out_path.stat().st_size / 1024
    print(f"\nDashboard written to {out_path} ({size_kib:.0f} KiB, self-contained).")
    print("Open it in any browser — charts are inline SVG, no external assets.")


if __name__ == "__main__":
    main()
