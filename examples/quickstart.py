#!/usr/bin/env python
"""Quickstart: one full revolution of the I/O knowledge cycle.

Generates knowledge with a JUBE-driven IOR sweep on the simulated
FUCHS-CSC testbed, extracts it, stores it in SQLite, analyzes it with
the knowledge explorer, and runs the built-in usage modules.  A
TimingObserver attached to the phase pipeline reports how long each
phase of the revolution took.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import KnowledgeCycle, KnowledgeDatabase, Testbed, TimingObserver

JUBE_XML = """
<jube>
  <benchmark name="quickstart" outpath="bench_run">
    <parameterset name="pattern">
      <parameter name="transfersize">1m,2m,4m</parameter>
      <parameter name="command">ior -a mpiio -b 8m -t $transfersize -s 8 -F -e -i 3 -o /scratch/quickstart/test -k</parameter>
      <parameter name="nodes">2</parameter>
      <parameter name="taskspernode">20</parameter>
    </parameterset>
    <step name="run" work="ior">
      <use>pattern</use>
    </step>
  </benchmark>
</jube>
"""


def main() -> None:
    testbed = Testbed.fuchs_csc(seed=42)
    with tempfile.TemporaryDirectory() as workspace:
        db_path = Path(workspace) / "knowledge.db"
        with KnowledgeDatabase(db_path) as db:
            timer = TimingObserver()
            cycle = KnowledgeCycle(testbed, db, workspace=workspace, observers=[timer])

            print("=== Phases I-V: running one revolution of the cycle ===\n")
            result = cycle.run_cycle(JUBE_XML)

            print(result.analysis_report)

            print("=== Usage phase results ===")
            for name, value in result.usage_results.items():
                if isinstance(value, list):
                    print(f"[{name}] {len(value)} finding(s)")
                    for finding in value:
                        print(f"  - {finding}")
                elif value is not None and hasattr(value, "description"):
                    print(f"[{name}] {value.description}")
                else:
                    print(f"[{name}] {value}")

            print("\n=== Per-phase wall times ===")
            for t in timer.timings:
                print(f"  {t.phase:<12} {t.duration_s * 1000:8.1f} ms  "
                      f"({t.artifacts} artifact(s))")

            print(f"\nKnowledge base now holds {db.table_count('performances')} "
                  f"knowledge objects ({db.table_count('results')} iteration results).")


if __name__ == "__main__":
    main()
