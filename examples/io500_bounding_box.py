#!/usr/bin/env python
"""The paper's Fig. 6: anomaly detection through IO500 boundary test cases.

Runs the IO500 suite several times with 40 cores on the simulated
FUCHS-CSC system to establish the bounding box (Liem et al.), then runs
it once more with a broken storage node degrading reads.  The
ior-easy read result falls below the box and is flagged, while the
writes show their characteristically larger variance.

Run:  python examples/io500_bounding_box.py
"""

from repro.benchmarks_io.io500 import IO500Config, render_io500_output, run_io500
from repro.core.explorer import IO500Viewer, render_ascii
from repro.core.extraction import parse_io500_output
from repro.core.usage import build_bounding_box
from repro.iostack.stack import Testbed
from repro.pfs import Fault

N_REFERENCE_RUNS = 4


def main() -> None:
    testbed = Testbed.fuchs_csc(seed=650)

    print(f"Establishing the bounding box from {N_REFERENCE_RUNS} healthy IO500 runs "
          "(40 cores on FUCHS-CSC)...\n")
    reference = []
    for i in range(N_REFERENCE_RUNS):
        result = run_io500(
            IO500Config(workdir=f"/scratch/io500/ref{i}"),
            testbed, num_nodes=2, tasks_per_node=20, run_id=i,
        )
        reference.append(parse_io500_output(render_io500_output(result)))
        reference[-1].iofh_id = i + 1

    box = build_bounding_box(reference)
    for name, band in sorted(box.bands.items()):
        print(f"  {name:<16} expected [{band.low:.3f} .. {band.high:.3f}] GiB/s")

    # The Fig. 6 visualization: boundary test cases as boxplots.
    print()
    print(render_ascii(IO500Viewer().boundary_boxplot(reference), width=68))

    print("\nNow a run with a broken storage node (reads degraded)...\n")
    testbed.fs.faults.add(
        Fault(
            name="broken-node-reads",
            factor=0.35,
            scope="server",
            server="stor01",
            when={"op": "read"},
        )
    )
    result = run_io500(
        IO500Config(workdir="/scratch/io500/broken"),
        testbed, num_nodes=2, tasks_per_node=20, run_id=99,
    )
    suspect = parse_io500_output(render_io500_output(result))

    verdicts = box.check_run(suspect)
    print(f"{'test case':<18} {'value':>8}   verdict")
    for name in sorted(verdicts):
        print(f"{name:<18} {suspect.value(name):>8.3f}   {verdicts[name]}")

    anomalies = box.anomalies(suspect)
    print(
        f"\nFlagged below expectation: {anomalies or 'none'}"
        "\n(The paper's Fig. 6 observes exactly this: a bad ior-easy read, "
        "'a possible cause could be a broken node'.)"
    )


if __name__ == "__main__":
    main()
