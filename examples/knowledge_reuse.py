#!/usr/bin/env python
"""Usage example I of the paper (§V-E1): new knowledge generation.

Demonstrates the knowledge-reuse loop: run the paper's IOR command,
store the knowledge, then use the explorer's "create configuration"
feature to regenerate a modified command and a JUBE sweep from it, and
drive a second generation cycle with the regenerated configuration —
"due to the generic workflow, this process can be repeated as often as
required".

Run:  python examples/knowledge_reuse.py
"""

import tempfile

from repro import KnowledgeCycle, KnowledgeDatabase, Testbed
from repro.core.explorer import ComparisonView, render_ascii
from repro.core.usage import create_configuration, generate_jube_config
from repro.util.units import MIB

INITIAL_XML = """
<jube>
  <benchmark name="initial" outpath="bench_run">
    <parameterset name="pattern">
      <parameter name="command">ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k</parameter>
      <parameter name="nodes">4</parameter>
      <parameter name="taskspernode">20</parameter>
    </parameterset>
    <step name="run" work="ior">
      <use>pattern</use>
    </step>
  </benchmark>
</jube>
"""


def main() -> None:
    testbed = Testbed.fuchs_csc(seed=7)
    with tempfile.TemporaryDirectory() as workspace:
        with KnowledgeDatabase(":memory:") as db:
            cycle = KnowledgeCycle(testbed, db, workspace=workspace)

            print("Cycle 1: the paper's §V-E1 command on 4 nodes / 80 cores...")
            first = cycle.run_cycle(INITIAL_XML)
            knowledge = first.knowledge[0]
            print(f"  stored knowledge #{knowledge.knowledge_id}: {knowledge.command}")

            # "First, the previously applied command is selected ... and
            # can be modified as required.  Afterward, the new command can
            # be created by clicking 'create configuration'."
            new_command = create_configuration(
                knowledge, transfer_size=4 * MIB, iterations=3
            )
            print(f"\n'create configuration' produced:\n  {new_command}")

            # And the JUBE-config generation extension (§V-E1).
            sweep_xml = generate_jube_config(
                knowledge,
                sweep={"transfersize": ["1m", "2m", "4m"]},
                benchmark_name="regenerated-sweep",
            )
            print("\nCycle 2: running the regenerated JUBE sweep...")
            second = cycle.run_cycle(sweep_xml)
            print(f"  produced {len(second.knowledge)} new knowledge objects")

            everything = [*first.knowledge, *second.knowledge]
            view = ComparisonView(everything)
            print("\nComparison across both cycles (x axis: transfer size):")
            print(view.table())
            print()
            print(render_ascii(view.chart(x_axis="xfersize", y_metric="bw_mean"), width=60))

            print(
                f"\nKnowledge base grew from {len(first.knowledge)} to "
                f"{db.table_count('performances')} objects across two revolutions."
            )


if __name__ == "__main__":
    main()
