#!/usr/bin/env python
"""Darshan as an additional knowledge source (§V-A/§V-B) + DXT analysis.

Runs IOR under the Darshan-like profiler with extended tracing, writes
a .darshan log, reads it back through the PyDarshan-like API, extracts
a knowledge object from it, and runs the DXT cross-rank analysis the
DXT-Explorer discussion of §II motivates.

Run:  python examples/darshan_profiling.py
"""

import tempfile
from pathlib import Path

from repro.benchmarks_io.ior import parse_command, run_ior
from repro.core.extraction import knowledge_from_report
from repro.darshan import DarshanProfiler, DarshanReport, analyze_dxt, default_log_name, write_log
from repro.iostack.stack import Testbed
from repro.util.units import MIB


def main() -> None:
    testbed = Testbed.fuchs_csc(seed=61)
    profiler = DarshanProfiler(enable_dxt=True)

    command = "ior -a mpiio -b 8m -t 1m -s 4 -F -e -i 2 -o /scratch/prof/test -k"
    print(f"Running instrumented: {command}\n")
    config = parse_command(command)
    result = run_ior(config, testbed, num_nodes=2, tasks_per_node=10, tracer=profiler)

    log = profiler.finalize(
        exe="ior", nprocs=result.num_tasks,
        start_offset_s=result.start_offset_s, end_offset_s=result.end_offset_s,
        jobid=result.num_tasks,
    )
    with tempfile.TemporaryDirectory() as d:
        path = write_log(log, Path(d) / default_log_name("zhu", "ior", 20))
        print(f"Darshan log written: {path.name} ({path.stat().st_size} bytes)\n")

        report = DarshanReport(path)
        print(f"Instrumented modules: {report.modules}")
        bytes_read, bytes_written = report.total_bytes("POSIX")
        print(f"POSIX totals: {bytes_written / MIB:.0f} MiB written, "
              f"{bytes_read / MIB:.0f} MiB read")
        print(f"Bandwidth estimates: {report.agg_bandwidth_mib('POSIX')}")
        print(f"Write size histogram: "
              f"{ {k: v for k, v in report.size_histogram('POSIX', 'WRITE').items() if v} }")

        knowledge = knowledge_from_report(report)
        print(f"\nKnowledge object from the log: benchmark={knowledge.benchmark!r}, "
              f"dominant write size bin = {knowledge.parameters['dominant_write_size']}")

        analysis = analyze_dxt(report)
        print(f"\nDXT analysis over {len(analysis.ranks)} ranks:")
        print(f"  makespan   : {analysis.makespan:.3f} s")
        print(f"  imbalance  : {analysis.imbalance():.3f} (max/mean busy time)")
        print(f"  stragglers : {analysis.stragglers() or 'none'}")
        timeline = report.timeline("POSIX", nbins=12)
        peak = timeline.max() or 1.0
        print("  activity   : " + "".join("▁▂▃▄▅▆▇█"[min(7, int(v / peak * 8))] for v in timeline))


if __name__ == "__main__":
    main()
