#!/usr/bin/env python
"""The §IV I/O optimization use case, closed loop.

An application writes tiny 47 KB records from 40 ranks into one shared
file — the classic anti-pattern.  The workflow profiles it with the
Darshan substrate, extracts its I/O pattern, lets the optimization
module diagnose the problem and emit MPI-IO hints, and validates the
suggestion by re-running the workload with the hints applied.

Run:  python examples/io_optimization.py
"""

from repro.benchmarks_io.ior import IORConfig, run_ior
from repro.core.usage import IOOptimizer, extract_pattern, validate_suggestion
from repro.darshan import DarshanProfiler, DarshanReport
from repro.iostack.stack import Testbed


def main() -> None:
    testbed = Testbed.fuchs_csc(seed=88)
    app_config = IORConfig(
        api="MPIIO", block_size=47008, transfer_size=47008, segment_count=48,
        iterations=2, test_file="/scratch/app/output", file_per_proc=False,
        keep_file=True, read_file=False,
    )

    print("Step 1 — profile the application run with Darshan...")
    profiler = DarshanProfiler(enable_dxt=True)
    result = run_ior(app_config, testbed, num_nodes=2, tasks_per_node=20, tracer=profiler)
    baseline = result.bandwidth_summary("write").mean
    print(f"  observed write throughput: {baseline:.1f} MiB/s\n")

    print("Step 2 — extract the I/O pattern from the log...")
    report = DarshanReport(
        profiler.finalize("app", result.num_tasks, result.start_offset_s, result.end_offset_s)
    )
    pattern = extract_pattern(report)
    print(f"  {pattern.nprocs} ranks, shared file: {pattern.shared_file}, "
          f"record size: {pattern.representative_write_size} bytes, "
          f"{pattern.sequential_fraction:.0%} sequential\n")

    print("Step 3 — the optimization module's diagnosis:")
    optimizer = IOOptimizer(
        fs_chunk_size=testbed.fs.spec.default_chunk_size,
        num_targets=len(testbed.fs.pool.targets),
    )
    for suggestion in optimizer.suggest(pattern):
        print(f"  {suggestion}")
    hints = optimizer.suggested_hints(pattern)
    print(f"\n  => MPI-IO hints: {hints.as_dict()}\n")

    print("Step 4 — validate the suggestion on the system...")
    before, after = validate_suggestion(
        testbed, app_config, hints, num_nodes=2, tasks_per_node=20, run_id=1
    )
    print(f"  before: {before:8.1f} MiB/s")
    print(f"  after : {after:8.1f} MiB/s   ({after / before:.1f}x speedup)")


if __name__ == "__main__":
    main()
