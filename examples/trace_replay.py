#!/usr/bin/env python
"""What-if studies by DXT trace replay (§IV workload generation).

Records an application's I/O with DXT tracing, then replays the exact
trace — every operation, size and offset — against three what-if
targets: the same system, a system with twice the storage targets, and
a system with a degraded storage server.  No application needed for the
re-evaluation: the trace *is* the workload.

Run:  python examples/trace_replay.py
"""

from repro.benchmarks_io.ior import IORConfig, run_ior
from repro.darshan import DarshanProfiler, DarshanReport, replay_trace
from repro.iostack.stack import Testbed
from repro.pfs import BeeGFSSpec
from repro.util.units import MIB


def main() -> None:
    print("Recording the original run (8 ranks, 2x16 MiB each) with DXT...")
    origin = Testbed.fuchs_csc(seed=14)
    profiler = DarshanProfiler(enable_dxt=True)
    config = IORConfig(
        api="MPIIO", block_size=8 * MIB, transfer_size=1 * MIB, segment_count=2,
        iterations=1, test_file="/scratch/app/ckpt", file_per_proc=True, keep_file=True,
    )
    result = run_ior(config, origin, num_nodes=1, tasks_per_node=8, tracer=profiler)
    report = DarshanReport(
        profiler.finalize("app", result.num_tasks, result.start_offset_s, result.end_offset_s)
    )
    print(f"  trace: {sum(report.total_bytes('POSIX')) / MIB:.0f} MiB across "
          f"{report.nprocs} ranks\n")

    scenarios = {
        "same system": Testbed.fuchs_csc(seed=15),
        "2x storage targets": Testbed(
            "fuchs-csc",
            fs_spec=BeeGFSSpec(num_storage_servers=8, targets_per_server=2),
            seed=15,
        ),
        "degraded storage server": Testbed.fuchs_csc(seed=15),
    }
    scenarios["degraded storage server"].fs.degrade_server("stor01", 0.2)

    print(f"{'scenario':<26} {'replay makespan':>16} {'vs original':>12}")
    for name, testbed in scenarios.items():
        ctx = testbed.start_job("replay", 1, 8)
        replay = replay_trace(report, ctx, base_dir="/scratch/replay")
        print(f"{name:<26} {replay.replayed_makespan_s:>14.3f} s "
              f"{replay.speedup:>11.2f}x")
        testbed.finish_job(ctx)

    print("\n(>1x = the what-if system would run this workload faster.)")


if __name__ == "__main__":
    main()
