#!/usr/bin/env python
"""I/O performance prediction from the knowledge base (§IV, §VI).

Builds a knowledge base from a JUBE parameter sweep (transfer size x
task count), trains the linear-regression predictor on it, and checks
its predictions against held-out runs — "the knowledge objects can be
used as training data for linear regression analysis to make I/O
performance predictions".  Also shows the recommendation module picking
the best stored configuration.

Run:  python examples/performance_prediction.py
"""

import tempfile

from repro import KnowledgeCycle, KnowledgeDatabase, Testbed
from repro.benchmarks_io.ior import parse_command, render_ior_output, run_ior
from repro.core.extraction import parse_ior_output
from repro.core.usage import FeatureVector, PerformancePredictor, Recommender
from repro.util.units import MIB

SWEEP_XML = """
<jube>
  <benchmark name="training-sweep" outpath="bench_run">
    <parameterset name="pattern">
      <parameter name="transfersize">256k,1m,2m,4m,8m</parameter>
      <parameter name="nodes">1,2,4</parameter>
      <parameter name="taskspernode">20</parameter>
      <parameter name="command">ior -a posix -b 8m -t $transfersize -s 4 -F -i 2 -o /scratch/pred/test -k</parameter>
    </parameterset>
    <step name="run" work="ior">
      <use>pattern</use>
    </step>
  </benchmark>
</jube>
"""


def main() -> None:
    testbed = Testbed.fuchs_csc(seed=31)
    with tempfile.TemporaryDirectory() as workspace:
        with KnowledgeDatabase(":memory:") as db:
            cycle = KnowledgeCycle(testbed, db, workspace=workspace)
            print("Generating the training knowledge base (5 transfer sizes x 3 node counts)...")
            result = cycle.run_cycle(SWEEP_XML)
            base = result.knowledge
            print(f"  {len(base)} knowledge objects stored\n")

            model = PerformancePredictor(operation="write").fit(base)
            print(f"Fitted log-log OLS on {model.n_samples_} samples "
                  f"(training residual {model.training_residual_:.3f} in log space)\n")

            # Held-out check: a configuration the sweep never ran.
            held_out_cmd = "ior -a posix -b 9m -t 3m -s 4 -F -i 2 -o /scratch/pred/holdout -k"
            holdout = parse_ior_output(render_ior_output(run_ior(
                parse_command(held_out_cmd), testbed, num_nodes=3, tasks_per_node=20,
                run_id=777,
            )))
            features = FeatureVector(
                transfer_size=3 * MIB, num_tasks=60, num_nodes=3, api="POSIX"
            )
            predicted = model.predict(features)
            lo, hi = model.predict_interval(features)
            actual = holdout.summary("write").bw_mean
            print("Held-out configuration: -t 3m on 3 nodes x 20 tasks")
            print(f"  predicted : {predicted:8.1f} MiB/s  (expectation band [{lo:.1f} .. {hi:.1f}])")
            print(f"  measured  : {actual:8.1f} MiB/s")
            print(f"  rel. error: {abs(predicted - actual) / actual * 100:.1f}%\n")

            rec = Recommender(base).recommend(operation="write", num_tasks=80)
            print(f"Recommendation for an 80-task job:\n  {rec.description}")


if __name__ == "__main__":
    main()
