#!/usr/bin/env python
"""Usage example II of the paper (§V-E2, Fig. 5): anomaly detection.

Reproduces the paper's scenario end to end: the §V-E1 IOR command runs
for six iterations on 4 nodes x 20 cores of the simulated FUCHS-CSC
cluster; a storage-side fault degrades the second iteration.  The
knowledge explorer's iteration chart makes the dip obvious, and the
anomaly detector flags iteration 2, corroborated by the operation
counts and wr/rd times exactly as the paper argues.

Run:  python examples/anomaly_detection.py
"""

from repro.benchmarks_io.ior import parse_command, render_ior_output, run_ior
from repro.core.explorer import KnowledgeViewer, render_ascii
from repro.core.extraction import parse_ior_output
from repro.core.usage import IterationAnomalyDetector
from repro.iostack.stack import Testbed
from repro.pfs import Fault

PAPER_COMMAND = "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k"


def main() -> None:
    testbed = Testbed.fuchs_csc(seed=2022)
    # A transient storage degradation during the second iteration's
    # write phase (0-based iteration index 1) — the anomaly of Fig. 5.
    testbed.fs.faults.add(
        Fault(
            name="degraded-storage",
            factor=0.44,
            when={"benchmark": "ior", "iteration": 1, "op": "write"},
        )
    )

    print(f"Running on 4 nodes x 20 cores: {PAPER_COMMAND}\n")
    config = parse_command(PAPER_COMMAND)
    result = run_ior(config, testbed, num_nodes=4, tasks_per_node=20)

    # Phase II: extract knowledge through the real output-text path.
    knowledge = parse_ior_output(render_ior_output(result))

    # Phase IV: the Fig. 5 chart — throughput and ops per iteration.
    viewer = KnowledgeViewer()
    print(render_ascii(viewer.iteration_chart(knowledge, "bandwidth_mib")))
    print()
    print(render_ascii(viewer.iteration_chart(knowledge, "iops")))
    print()

    # Phase V: automated anomaly detection.
    anomalies = IterationAnomalyDetector().detect(knowledge)
    if not anomalies:
        print("No anomalies detected.")
        return
    print("Anomalies detected:")
    for anomaly in anomalies:
        print(f"  - {anomaly.description}")

    writes = knowledge.summary("write").bandwidth_series()
    healthy = [bw for i, bw in enumerate(writes) if i != 1]
    print(
        f"\nPaper reports: healthy mean ~2850 MiB/s, anomalous iteration ~1251 MiB/s."
        f"\nThis run:      healthy mean {sum(healthy) / len(healthy):.0f} MiB/s, "
        f"anomalous iteration {writes[1]:.0f} MiB/s."
    )


if __name__ == "__main__":
    main()
